#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Integration tests for Figures 1–3: waterfall contents and the
//! TTL-probe co-location result.

use harness::experiments::{figure1, figure2, multibox, ttl_probe};

#[test]
fn figure1_waterfalls_show_the_papers_packet_sequences() {
    let text = figure1(7);
    // Strategy 1's signature: the server's SYN+ACK became RST + SYN,
    // and the client answered with a simultaneous-open SYN+ACK.
    assert!(text.contains("Strategy 1"), "{text}");
    assert!(text.contains("◀── RST"), "{text}");
    assert!(
        text.contains("◀── SYN\n") || text.contains("◀── SYN "),
        "{text}"
    );
    assert!(text.contains("SYN/ACK ──▶"), "{text}");
    // Strategy 6's FIN with a random load.
    assert!(text.contains("FIN (w/ load"), "{text}");
    // Strategy 8 (window reduction): the query leaves in pieces — at
    // least two client data segments in its waterfall.
    let s8 = text.split("Strategy 8").nth(1).expect("strategy 8 section");
    let segments = s8.matches("ACK/PSH").count();
    assert!(
        segments >= 3,
        "expected a segmented query, got {segments} in\n{s8}"
    );
}

#[test]
fn figure2_kazakhstan_waterfalls() {
    let text = figure2(7);
    assert!(text.contains("Strategy 9"), "{text}");
    // Triple load: three payload-carrying SYN+ACKs from the server.
    let s9 = text.split("Strategy 10").next().unwrap();
    assert!(
        s9.matches("SYN/ACK (w/ load").count() >= 3,
        "triple load missing:\n{s9}"
    );
    // Double GET: the benign GET prefix rides the SYN+ACK.
    assert!(text.contains("(GET load)"), "{text}");
    // All four strategies evade.
    assert_eq!(text.matches("— evaded").count(), 4, "{text}");
}

#[test]
fn ttl_probes_localize_all_boxes_at_the_same_hop() {
    let report = ttl_probe(3);
    assert!(report.all_collocated(), "{}", report.render());
    for (proto, hops) in &report.hops {
        assert_eq!(*hops, Some(report.true_hops), "{proto}");
    }
}

#[test]
fn multibox_spread_is_the_figure3_evidence() {
    let report = multibox(40, 0xF16);
    let render = report.render();
    for row in &report.rows {
        let multi = harness::experiments::multibox::MultiboxStrategyRow::spread(&row.multi_box);
        let single = harness::experiments::multibox::MultiboxStrategyRow::spread(&row.single_box);
        if row.strategy_id == 5 || row.strategy_id == 8 {
            assert!(
                multi > single + 0.15,
                "strategy {}: multi {multi} vs single {single}\n{render}",
                row.strategy_id
            );
        }
    }
}
