#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! The downstream-user walkthrough: exercise the whole public API the
//! way the README advertises it — parse, explain, simulate, measure,
//! render, capture, deploy.

use appproto::AppProtocol;
use censor::Country;
use geneva::{explain, library, parse_strategy};
use harness::{deploy, render_waterfall, run_trial, success_rate, TrialConfig};
use netsim::pcap::{parse_pcap, to_pcap, CaptureAt};

#[test]
fn the_readme_walkthrough_works_end_to_end() {
    // 1. Parse a strategy from DSL text.
    let strategy = parse_strategy(library::STRATEGY_1.text).unwrap();

    // 2. Explain it.
    let prose = explain(&strategy);
    assert!(prose.contains("SYN+ACK"), "{prose}");

    // 3. Run one trial and render its waterfall.
    let cfg = TrialConfig::new(Country::China, AppProtocol::Http, strategy.clone(), 3);
    let result = run_trial(&cfg);
    let waterfall = render_waterfall("walkthrough", &result.trace);
    assert!(waterfall.contains("SYN"), "{waterfall}");

    // 4. Measure a success rate.
    let rate = success_rate(&cfg, 60, 42);
    assert!(rate.rate() > 0.3, "{rate}");

    // 5. Capture to pcap and parse it back.
    let capture = to_pcap(&result.trace, CaptureAt::Middlebox);
    let (linktype, records) = parse_pcap(&capture).unwrap();
    assert_eq!(linktype, 101);
    assert!(!records.is_empty());
    for (_, bytes) in &records {
        packet::Packet::parse(bytes).expect("every captured record is a packet");
    }

    // 6. Deployment selection from a client address.
    let table = deploy::demo_geo_table();
    let pick = deploy::pick_for_client([10, 7, 1, 2], AppProtocol::Http, &table).unwrap();
    assert!(pick.id >= 1);

    // 7. And the facade crate re-exports it all.
    let _ = come_as_you_are::geneva::library::STRATEGY_8;
    let _ = come_as_you_are::censor::Country::China;
}

#[test]
fn every_strategy_explains_parses_and_survives_a_trial() {
    for named in library::server_side() {
        let strategy = parse_strategy(named.text).unwrap();
        assert!(!explain(&strategy).is_empty());
        // One trial each against the censor it targets; must terminate
        // with a classified outcome (no hangs, no panics).
        let country = if named.id >= 9 {
            Country::Kazakhstan
        } else {
            Country::China
        };
        let cfg = TrialConfig::new(country, AppProtocol::Http, strategy, 11);
        let _ = run_trial(&cfg).outcome;
    }
}
