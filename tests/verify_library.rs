#![allow(clippy::unwrap_used)] // test code
//! Whole-library snapshot for `cay verify`: every built-in strategy
//! (the paper's 11 plus the §5 variant species) lints without a false
//! refutation, compiles through the proof gate, and renders into all
//! three report formats without structural breakage. The per-censor
//! verdict matrix is additionally pinned against a committed golden
//! snapshot so any model-checker drift shows up as a reviewable diff.
//!
//! The paper deployed each of these strategies against real censors
//! with real success rates — a strategy that works in the world and
//! fails our static analysis is, by definition, an analysis bug.

use strata::censor_model::{check_all, Verdict};
use strata::{ProgramFacts, ReportEntry, Severity};

fn library_entries() -> Vec<ReportEntry> {
    geneva::library::server_side()
        .iter()
        .chain(geneva::library::variants().iter())
        .map(|named| {
            let strategy = named.strategy();
            let analysis = strata::analyze(&strategy);
            let program = match dplane::Program::compile(&strategy) {
                Ok(p) => {
                    let proof = p.proof.expect("checked compile carries its proof");
                    ProgramFacts {
                        verified: true,
                        error: None,
                        max_stack: proof.max_stack,
                        max_emit: proof.max_emit,
                    }
                }
                Err(e) => ProgramFacts {
                    verified: false,
                    error: Some(e.to_string()),
                    max_stack: 0,
                    max_emit: 0,
                },
            };
            ReportEntry {
                label: format!("library/{}", named.name),
                source: named.text.to_string(),
                canonical: analysis.canonical.to_string(),
                key: analysis.key,
                statically_futile: analysis.statically_futile,
                diagnostics: analysis.diagnostics,
                verdicts: check_all(&strata::summarize(&strategy)),
                program: Some(program),
            }
        })
        .collect()
}

#[test]
fn zero_false_refutations_and_all_programs_verify() {
    let entries = library_entries();
    assert!(
        entries.len() >= 13,
        "library shrank? {} entries",
        entries.len()
    );
    for e in &entries {
        assert!(
            !e.statically_futile,
            "{}: falsely proven futile\n{:?}",
            e.label, e.diagnostics
        );
        assert!(
            !e.diagnostics.iter().any(|d| d.severity == Severity::Error),
            "{}: error-severity finding on a working strategy\n{:?}",
            e.label,
            e.diagnostics
        );
        let program = e.program.as_ref().expect("every entry compiled");
        assert!(
            program.verified,
            "{}: proof gate refused a working strategy: {:?}",
            e.label, program.error
        );
        assert!(
            program.max_emit <= strata::AMPLIFICATION_LIMIT,
            "{}: library strategy exceeds the amplification lint threshold ({})",
            e.label,
            program.max_emit
        );
        assert!(
            !e.failing(),
            "{}: report marks a working strategy failing",
            e.label
        );
    }
}

#[test]
fn all_three_report_formats_render_the_library() {
    let entries = library_entries();

    let text = strata::report::render_text(&entries);
    assert!(
        text.contains(&format!("{} strategies, 0 failing", entries.len())),
        "{text}"
    );

    let json = strata::report::render_json(&entries);
    assert!(json.contains("\"failing\":0"), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());

    let sarif = strata::report::render_sarif(&entries);
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"name\":\"cay-verify\""));
    // A run with no error-level results: every result present must be
    // a warning (compat advisories) or a note (per-censor verdicts),
    // never an error.
    assert!(!sarif.contains("\"level\":\"error\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\":\"censor-verdict\""), "{sarif}");
}

/// The committed golden matrix: `cay verify --library --censor all`
/// must keep producing exactly this table. Regenerate by pasting the
/// assertion's `-- actual --` output (or the CLI's) after a deliberate
/// model change; the diff is the review artifact.
#[test]
fn verdict_matrix_matches_the_committed_snapshot() {
    let entries = library_entries();
    let matrix = strata::render_verdict_matrix(&entries);
    let golden = include_str!("golden/verify_censor_matrix.txt");
    assert_eq!(
        matrix, golden,
        "\n-- actual --\n{matrix}\n-- committed --\n{golden}"
    );
}

/// Acceptance bar for the model checker itself: across the whole
/// library, a `ProvablyInert` verdict means the strategy evades zero
/// trials against that censor, and `ProvablyDesynced` means it evades
/// every trial (the censor provably wrote the flow off, so no
/// censorship event can fire). The GFW never receives a claim — its
/// per-flow behavior is stochastic — so every claim here is against a
/// deterministic censor and must hold exactly.
#[test]
fn verdicts_never_contradict_simulation() {
    use appproto::AppProtocol;
    use censor::Country;
    use harness::{run_trial, TrialConfig};
    use strata::CensorId;

    let trials = 6u64;
    let mut claims = 0u32;
    for named in geneva::library::server_side()
        .iter()
        .chain(geneva::library::variants().iter())
    {
        let strategy = named.strategy();
        for (id, verdict) in check_all(&strata::summarize(&strategy)) {
            if verdict == Verdict::Unknown {
                continue;
            }
            claims += 1;
            let country = match id {
                CensorId::Gfw => Country::China,
                CensorId::Airtel => Country::India,
                CensorId::Iran => Country::Iran,
                CensorId::Kazakhstan => Country::Kazakhstan,
            };
            assert_ne!(id, CensorId::Gfw, "no deterministic claim vs the GFW");
            let successes = (0..trials)
                .filter(|&seed| {
                    let cfg = TrialConfig::new(country, AppProtocol::Http, strategy.clone(), seed);
                    run_trial(&cfg).evaded()
                })
                .count() as u64;
            match verdict {
                Verdict::ProvablyInert => assert_eq!(
                    successes, 0,
                    "{} proven inert vs {id} but evaded {successes}/{trials}",
                    named.name
                ),
                Verdict::ProvablyDesynced => assert_eq!(
                    successes, trials,
                    "{} proven desynced vs {id} but evaded only {successes}/{trials}",
                    named.name
                ),
                Verdict::Unknown => unreachable!(),
            }
        }
    }
    assert!(claims > 0, "the checker proved nothing about the library");
}
