#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! §5's variant species behave like their parent strategies.

use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use harness::{success_rate, TrialConfig};

fn rate_of(strategy: geneva::Strategy, proto: AppProtocol) -> f64 {
    let cfg = TrialConfig::new(Country::China, proto, strategy, 0);
    success_rate(&cfg, 100, 0xA11CE).rate()
}

#[test]
fn reversed_strategy_3_still_beats_ftp() {
    let original = library::STRATEGY_3.strategy();
    let reversed = library::variants()
        .into_iter()
        .find(|v| v.name.contains("reversed"))
        .unwrap()
        .strategy();
    let a = rate_of(original, AppProtocol::Ftp);
    let b = rate_of(reversed, AppProtocol::Ftp);
    // The paper reports the reversed species as "successful" without a
    // rate; in our model it loses the SYN-after-corrupt-ack boost
    // (the SYN precedes the corrupt ack) but still clears the ~2 %
    // baseline by an order of magnitude.
    assert!(a > 0.4, "original {a}");
    assert!(b > 0.15, "reversed {b}");
}

#[test]
fn ack_variant_of_strategy_6_works_equally_well() {
    // Paper: "this strategy works equally well if an ACK flag is sent
    // instead of FIN".
    let original = library::STRATEGY_6.strategy();
    let ack_variant = library::variants()
        .into_iter()
        .find(|v| v.name.contains("ACK variant"))
        .unwrap()
        .strategy();
    let a = rate_of(original, AppProtocol::Http);
    let b = rate_of(ack_variant, AppProtocol::Http);
    assert!((0.3..0.8).contains(&a), "original {a}");
    assert!((a - b).abs() < 0.2, "equally well: {a} vs {b}");
}

#[test]
fn quadruple_load_still_beats_kazakhstan() {
    // Paper: "Increasing the number of duplicates does not reduce the
    // effectiveness of the strategy."
    let quad = library::variants()
        .into_iter()
        .find(|v| v.name.contains("Quadruple"))
        .unwrap()
        .strategy();
    let cfg = TrialConfig::new(Country::Kazakhstan, AppProtocol::Http, quad, 0);
    assert!(success_rate(&cfg, 30, 3).rate() > 0.95);
}
