#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Integration test: the genetic algorithm rediscovers working
//! server-side strategies against the censor models, which is the
//! paper's §4.1 methodology end-to-end.

use appproto::AppProtocol;
use censor::Country;
use evolve::{evolve, GaConfig};

#[test]
fn ga_defeats_kazakhstan() {
    // Kazakhstan admits several one/two-node 100% strategies (null
    // flags, window reduction) — a compact GA finds one reliably.
    let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 0xEE);
    config.population = 48;
    config.generations = 14;
    config.trials_per_eval = 4;
    let result = evolve(&config);
    assert!(
        result.best_eval.rate() >= 0.75,
        "best {} rate {:.2}",
        result.best.strategy,
        result.best_eval.rate()
    );
}

#[test]
fn ga_beats_gfw_smtp() {
    // SMTP is the easiest GFW target (window reduction = 100%,
    // RST-based resync = ~70%).
    let mut config = GaConfig::new(Country::China, AppProtocol::Smtp, 0xAB);
    config.population = 48;
    config.generations = 14;
    config.trials_per_eval = 5;
    let result = evolve(&config);
    assert!(
        result.best_eval.rate() >= 0.6,
        "best {} rate {:.2}",
        result.best.strategy,
        result.best_eval.rate()
    );
}

#[test]
fn fitness_history_is_monotone_in_the_best() {
    let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 0xCD);
    config.population = 24;
    config.generations = 8;
    config.trials_per_eval = 3;
    let result = evolve(&config);
    // The running max of per-generation bests never decreases.
    let mut best_so_far = f64::MIN;
    for &f in &result.history {
        best_so_far = best_so_far.max(f);
    }
    assert!(result.best_eval.fitness >= best_so_far - 1e-9);
}
