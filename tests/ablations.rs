#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! The DESIGN.md ablations as assertions (the benches measure cost;
//! these check the *claims*).

use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use harness::{success_rate, CensorVariant, TrialConfig};

#[test]
fn old_resync_model_cannot_explain_the_papers_strategies() {
    // Under prior work's single-rule model (only a corrupt-ack SYN+ACK
    // triggers the resync state), the RST- and payload-based
    // strategies (1, 6, 7) collapse toward the baseline for HTTP —
    // i.e., the paper's revised model is NECESSARY for Table 2.
    for id in [1u32, 6, 7] {
        let mut cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::by_id(id).unwrap(),
            0,
        );
        let revised = success_rate(&cfg, 80, 0xAB1A).rate();
        cfg.censor_variant = CensorVariant::GfwOldResyncModel;
        let old = success_rate(&cfg, 80, 0xAB1A).rate();
        assert!(
            revised > 0.35,
            "S{id} under the revised model should be ~50%, got {revised}"
        );
        assert!(
            old < revised - 0.2,
            "S{id}: old model {old} should collapse vs revised {revised}"
        );
    }
}

#[test]
fn old_model_predicts_no_server_side_evasion_at_all() {
    // Under Wang et al.'s model the corrupt-ack resync lands on the
    // next server SYN+ACK or client data packet — which always carries
    // the CORRECT numbers when the server is the evader. The old model
    // therefore predicts every server-side strategy fails… which is
    // exactly the §3 worldview the paper had to overturn.
    for id in [1u32, 4, 6, 7] {
        let mut cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::by_id(id).unwrap(),
            0,
        );
        cfg.censor_variant = CensorVariant::GfwOldResyncModel;
        let old = success_rate(&cfg, 80, 0x0D1).rate();
        assert!(
            old < 0.25,
            "S{id} should fail under the old model, got {old}"
        );
    }
}

#[test]
fn insertion_fix_ablation() {
    use endpoint::OsProfile;
    use harness::run_trial;
    // Strategy 9 plain vs fixed, Windows client, no censor.
    let plain = library::STRATEGY_9.strategy();
    let fixed = library::client_compat_fix(9).unwrap().strategy();
    let works = |strategy: geneva::Strategy| {
        (0..5)
            .filter(|seed| {
                let cfg = harness::TrialConfig::private_network(
                    AppProtocol::Http,
                    strategy.clone(),
                    OsProfile::windows(),
                    *seed,
                );
                run_trial(&cfg).evaded()
            })
            .count()
    };
    assert_eq!(works(plain), 0, "plain S9 breaks Windows every time");
    assert_eq!(works(fixed), 5, "fixed S9 works every time");
}
