#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Integration test: the reproduced Table 2 has the paper's *shape* —
//! who wins, by roughly what factor, where the crossovers fall.
//!
//! We do not assert absolute equality with the paper's percentages
//! (their substrate was the live Internet; ours is a calibrated
//! model), but every qualitative claim the paper makes about Table 2
//! is asserted here with generous bands.

use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use harness::{success_rate, TrialConfig};

const TRIALS: u32 = 120;
const SEED: u64 = 0x7AB1E2;

fn rate(country: Country, proto: AppProtocol, id: u32) -> f64 {
    let cfg = TrialConfig::new(country, proto, library::by_id(id).expect("id"), 0);
    success_rate(&cfg, TRIALS, SEED ^ u64::from(id) << 16).rate()
}

#[test]
fn no_evasion_is_censored_everywhere() {
    // Paper row "No evasion": DNS 2%, FTP 3%, HTTP 3%, HTTPS 3%, SMTP 26%.
    assert!(rate(Country::China, AppProtocol::DnsTcp, 0) < 0.10);
    assert!(rate(Country::China, AppProtocol::Http, 0) < 0.10);
    assert!(rate(Country::China, AppProtocol::Https, 0) < 0.10);
    let smtp = rate(Country::China, AppProtocol::Smtp, 0);
    assert!(
        (0.1..0.45).contains(&smtp),
        "SMTP baseline miss ≈26%, got {smtp}"
    );
    assert_eq!(rate(Country::India, AppProtocol::Http, 0), 0.0);
    assert_eq!(rate(Country::Iran, AppProtocol::Http, 0), 0.0);
    assert_eq!(rate(Country::Kazakhstan, AppProtocol::Http, 0), 0.0);
}

#[test]
fn dns_retries_amplify_success() {
    // Strategy 1: ~50% per try ⇒ ~87%+ with 3 tries (paper: DNS 89%
    // vs HTTP 54% for the same strategy).
    let dns = rate(Country::China, AppProtocol::DnsTcp, 1);
    let http = rate(Country::China, AppProtocol::Http, 1);
    assert!(dns > 0.75, "DNS S1 {dns}");
    assert!((0.35..0.75).contains(&http), "HTTP S1 {http}");
    assert!(dns > http + 0.15, "retry amplification: {dns} vs {http}");
}

#[test]
fn corrupt_ack_family_is_ftp_specific() {
    // Strategies 3/4/5 ride the FTP stack's corrupt-ack bug; they are
    // near-baseline for HTTP and HTTPS (paper: 4-5%).
    for id in [3u32, 4, 5] {
        assert!(
            rate(Country::China, AppProtocol::Http, id) < 0.15,
            "S{id} HTTP"
        );
        assert!(
            rate(Country::China, AppProtocol::Https, id) < 0.15,
            "S{id} HTTPS"
        );
    }
    // Strategy 5 is the FTP champion (97%), far above Strategy 4 (33%).
    let s5 = rate(Country::China, AppProtocol::Ftp, 5);
    let s4 = rate(Country::China, AppProtocol::Ftp, 4);
    assert!(s5 > 0.85, "S5 FTP {s5}");
    assert!((0.15..0.55).contains(&s4), "S4 FTP {s4}");
    assert!(s5 > s4 + 0.35, "S5 ≫ S4");
    // And simultaneous open boosts corrupt-ack (S3 65% vs S4 33%).
    let s3 = rate(Country::China, AppProtocol::Ftp, 3);
    assert!(s3 > s4 + 0.1, "S3 {s3} > S4 {s4}");
}

#[test]
fn https_is_immune_to_rst_resync() {
    // Paper: RST does not trigger the HTTPS resync (S1 14%, S7 4%)
    // while the payload rule works (S2 55%).
    let s1 = rate(Country::China, AppProtocol::Https, 1);
    let s7 = rate(Country::China, AppProtocol::Https, 7);
    let s2 = rate(Country::China, AppProtocol::Https, 2);
    assert!(s1 < 0.30, "S1 HTTPS {s1}");
    assert!(s7 < 0.15, "S7 HTTPS {s7}");
    assert!((0.35..0.75).contains(&s2), "S2 HTTPS {s2}");
    assert!(s2 > s1 + 0.2 && s2 > s7 + 0.3);
}

#[test]
fn window_reduction_splits_the_censors() {
    // Strategy 8: 100% against SMTP/India/Iran/Kazakhstan, ~47% FTP,
    // useless against reassembling boxes (DNS/HTTP/HTTPS in China).
    assert!(rate(Country::China, AppProtocol::Smtp, 8) > 0.9);
    assert!(rate(Country::India, AppProtocol::Http, 8) > 0.95);
    assert!(rate(Country::Iran, AppProtocol::Http, 8) > 0.95);
    assert!(rate(Country::Iran, AppProtocol::Https, 8) > 0.95);
    assert!(rate(Country::Kazakhstan, AppProtocol::Http, 8) > 0.95);
    let ftp = rate(Country::China, AppProtocol::Ftp, 8);
    assert!((0.3..0.7).contains(&ftp), "S8 FTP {ftp} (paper 47%)");
    assert!(rate(Country::China, AppProtocol::Http, 8) < 0.15);
    assert!(rate(Country::China, AppProtocol::DnsTcp, 8) < 0.15);
    assert!(rate(Country::China, AppProtocol::Https, 8) < 0.15);
}

#[test]
fn kazakhstan_exclusives_work_only_there() {
    for id in [9u32, 10, 11] {
        assert!(
            rate(Country::Kazakhstan, AppProtocol::Http, id) > 0.95,
            "S{id} Kazakhstan"
        );
    }
    // Against the GFW's HTTP box these do nothing special (they're not
    // in the paper's China rows).
    for id in [9u32, 10, 11] {
        assert!(
            rate(Country::China, AppProtocol::Http, id) < 0.9,
            "S{id} is not a China strategy"
        );
    }
}

#[test]
fn resync_strategies_sit_near_half_for_china_http() {
    // Strategies 1/2/6/7 all hinge on the ~50% resync-entry
    // probability (paper: 52-54% for HTTP).
    for id in [1u32, 2, 6, 7] {
        let r = rate(Country::China, AppProtocol::Http, id);
        assert!((0.35..0.75).contains(&r), "S{id} HTTP {r}");
    }
}
