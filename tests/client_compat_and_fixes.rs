#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Integration test for §7: strategy × OS compatibility and the
//! insertion-packet fix.

use harness::experiments::client_compat;

#[test]
fn payload_on_synack_breaks_windows_and_macos_only() {
    let report = client_compat(77);
    assert_eq!(
        report.broken_strategies(),
        vec![5, 9, 10],
        "{}",
        report.render()
    );
    // Exactly the 9 Windows/macOS profiles fail, for each of the three.
    for id in [5u32, 9, 10] {
        assert_eq!(report.failing_oses(id).len(), 9, "strategy {id}");
    }
}

#[test]
fn corrupted_checksum_fix_restores_all_oses() {
    let report = client_compat(77);
    assert!(report.all_fixed(), "{}", report.render());
}
