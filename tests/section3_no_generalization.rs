#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Integration test for the paper's §3 negative result: client-side
//! strategies do not generalize to the server side.
//!
//! The mechanism (not a table entry!) in our model: a server-side
//! insertion packet arms the GFW's resynchronization state, but the
//! resync then lands on an ordinary, correct-sequence client packet —
//! leaving the censor synchronized. Only strategies that *change the
//! client's behavior* (simultaneous open, induced RSTs, window-driven
//! segmentation) put a wrong value under the landing.

use harness::experiments::section3;

#[test]
fn client_side_strategies_work_their_server_analogs_do_not() {
    let report = section3(60, 0xDEAD);

    // Control arm: the classic client-side insertion strategies all
    // beat the GFW handily.
    let mut client_winners = 0;
    for entry in &report.client_side {
        if entry.name.contains("Teardown") || entry.name.contains("Desync") {
            assert!(
                entry.rate.rate() > 0.75,
                "client-side '{}' only {}",
                entry.name,
                entry.rate
            );
            client_winners += 1;
        }
    }
    assert!(client_winners >= 4, "need several client-side controls");

    // The negative result: every server-side analog is statistically
    // indistinguishable from no evasion.
    assert!(!report.server_side_analogs.is_empty());
    for entry in &report.server_side_analogs {
        assert!(
            entry.rate.rate() <= report.baseline.rate() + 0.12,
            "server-side analog '{}' unexpectedly works: {} (baseline {})",
            entry.name,
            entry.rate,
            report.baseline
        );
    }
}
