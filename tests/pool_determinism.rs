//! The pool's contract, end to end: worker count is invisible in every
//! result, and no paper experiment ever hits the simulator's event cap.

#![allow(clippy::unwrap_used)]

use appproto::AppProtocol;
use censor::Country;
use come_as_you_are::{evolve, geneva, harness};
use harness::experiments;
use harness::{cell_tag, success_rate_in, Pool, TrialConfig};

#[test]
fn success_rate_is_bit_identical_for_any_worker_count() {
    let cfg = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        geneva::library::STRATEGY_1.strategy(),
        0,
    );
    let tag = cell_tag("pool-determinism/strategy1");
    let serial = success_rate_in(&Pool::with_jobs(1), &cfg, 60, 0xD15C, tag);
    for workers in [2, 8] {
        let parallel = success_rate_in(&Pool::with_jobs(workers), &cfg, 60, 0xD15C, tag);
        assert_eq!(serial, parallel, "workers={workers}");
    }
    // Sanity: the estimate itself is meaningful, not vacuously equal.
    assert!(serial.trials == 60 && serial.successes > 0);
}

#[test]
fn evolution_trajectory_is_identical_serial_vs_parallel() {
    let mut config = evolve::GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 77);
    config.population = 14;
    config.generations = 3;
    config.trials_per_eval = 3;
    config.patience = 10;
    config.jobs = Some(1);
    let serial = evolve::evolve(&config);
    config.jobs = Some(8);
    let parallel = evolve::evolve(&config);
    assert_eq!(serial.best.strategy, parallel.best.strategy);
    assert_eq!(serial.history, parallel.history);
    assert_eq!(serial.trials_spent, parallel.trials_spent);
    assert_eq!(serial.cache_hits, parallel.cache_hits);
    assert_eq!(serial.cache_misses, parallel.cache_misses);
}

#[test]
fn paper_experiments_never_truncate() {
    let table = experiments::table2(3, 0xBADC_0FFE);
    assert_eq!(table.truncated_trials(), 0, "table 2 cells must finish");
    let report = experiments::followups(3, 0x5555);
    assert_eq!(
        report.truncated_trials(),
        0,
        "follow-up measurements must finish"
    );
}
