#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Whole-pipeline determinism: same seed, same everything. This is
//! what makes every reported number in EXPERIMENTS.md reproducible
//! bit-for-bit.

use appproto::AppProtocol;
use censor::Country;
use geneva::library;
use harness::{run_trial, success_rate, TrialConfig};

#[test]
fn single_trials_replay_exactly() {
    for id in [0u32, 1, 5, 8] {
        for seed in [1u64, 42, 31337] {
            let cfg = TrialConfig::new(
                Country::China,
                AppProtocol::Ftp,
                library::by_id(id).unwrap(),
                seed,
            );
            let a = run_trial(&cfg);
            let b = run_trial(&cfg);
            assert_eq!(a.outcome, b.outcome, "id {id} seed {seed}");
            assert_eq!(a.trace.events.len(), b.trace.events.len());
            for (x, y) in a.trace.events.iter().zip(&b.trace.events) {
                assert_eq!(x.time(), y.time());
                assert_eq!(x.packet(), y.packet());
            }
        }
    }
}

#[test]
fn rate_estimates_replay_exactly() {
    let cfg = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        library::STRATEGY_1.strategy(),
        0,
    );
    let a = success_rate(&cfg, 50, 7);
    let b = success_rate(&cfg, 50, 7);
    assert_eq!(a, b);
    // And a different base seed gives a (very likely) different count,
    // proving the seed is actually plumbed through.
    let c = success_rate(&cfg, 50, 8);
    assert!(a.successes.abs_diff(c.successes) <= 25);
}

#[test]
fn different_seeds_explore_different_outcomes() {
    // Strategy 1 succeeds ~50% of the time: across 40 seeds we must
    // observe both outcomes (this would fail if the seed were ignored).
    let mut successes = 0;
    let mut failures = 0;
    for seed in 0..40 {
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            library::STRATEGY_1.strategy(),
            seed,
        );
        if run_trial(&cfg).evaded() {
            successes += 1;
        } else {
            failures += 1;
        }
    }
    assert!(successes >= 5, "{successes}/{}", successes + failures);
    assert!(failures >= 5, "{failures}/{}", successes + failures);
}
