#![allow(clippy::unwrap_used)] // test code
//! Golden-bytes pcap capture of a dplane-rewritten flow.
//!
//! The netsim crate pins the raw libpcap framing; this test pins the
//! *contents* for a flow rewritten by the compiled data plane: one
//! SYN-ACK and one data segment from the server, rewritten by Strategy
//! 8 (TCP Window Reduction: the SYN-ACK's window drops to 10 and its
//! wscale option is stripped) with a fixed seed, framed at the
//! server's vantage. Any drift in the compiler, the flow table's seed
//! derivation, packet serialization, or the pcap writer shows up here
//! as a byte diff.

use dplane::{Dplane, DplaneConfig, FixedClassifier, FlowConfig, SeedMode};
use netsim::pcap::{parse_pcap, to_pcap, CaptureAt};
use netsim::{Side, Trace, TraceEvent};
use packet::{Packet, TcpFlags};
use std::sync::Arc;

const SERVER: [u8; 4] = [93, 184, 216, 34];
const CLIENT: [u8; 4] = [10, 7, 0, 2];

fn flow_packets() -> Vec<(u64, Packet)> {
    let mut syn = Packet::tcp(CLIENT, 40000, SERVER, 80, TcpFlags::SYN, 100, 0, vec![]);
    syn.finalize();
    let mut syn_ack = Packet::tcp(
        SERVER,
        80,
        CLIENT,
        40000,
        TcpFlags::SYN_ACK,
        9000,
        101,
        vec![],
    );
    syn_ack.finalize();
    let mut data = Packet::tcp(
        SERVER,
        80,
        CLIENT,
        40000,
        TcpFlags::PSH_ACK,
        9001,
        101,
        b"HTTP/1.1 200 OK\r\n\r\nok".to_vec(),
    );
    data.finalize();
    vec![(10, syn), (20, syn_ack), (30, data)]
}

fn rewritten_capture() -> Vec<u8> {
    let strategy = geneva::library::STRATEGY_8.strategy();
    let cfg = DplaneConfig {
        flow: FlowConfig::default(),
        seed: SeedMode::Fixed(0x5EED),
        unchecked: false,
    };
    let mut dp = Dplane::new(cfg, FixedClassifier(Some(Arc::new(strategy))));
    let mut trace = Trace::default();
    let mut out = Vec::new();
    for (t, pkt) in flow_packets() {
        out.clear();
        if pkt.ip.src == SERVER {
            dp.process_outbound(&pkt, t, &mut out);
            for rewritten in &out {
                trace.push(TraceEvent::Sent {
                    t,
                    side: Side::Server,
                    pkt: rewritten.clone(),
                });
            }
        } else {
            // Client packets reach the server through the inbound
            // ruleset; Strategy 8 has no inbound parts, so they pass.
            dp.process_inbound(&pkt, t, &mut out);
        }
    }
    to_pcap(&trace, CaptureAt::Server)
}

#[test]
fn dplane_rewritten_flow_golden_bytes() {
    let capture = rewritten_capture();
    // Determinism first: two runs, one byte stream.
    assert_eq!(capture, rewritten_capture());
    let hex: String = capture.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, GOLDEN_HEX, "dplane-rewritten capture drifted");
    // And the capture must still parse as valid pcap with every record
    // a parseable IPv4 packet.
    let (linktype, records) = parse_pcap(&capture).unwrap();
    assert_eq!(linktype, 101);
    assert!(!records.is_empty());
    for (_, bytes) in &records {
        Packet::parse(bytes).unwrap();
    }
}

/// Generated once from `rewritten_capture()` and pinned; regenerate
/// deliberately (print the `hex` above) if the strategy library or
/// packet model changes on purpose.
const GOLDEN_HEX: &str = "d4c3b2a1020004000000000000000000ffff0000650000000000000014000000280000002800000045000028000040004006faec5db8d8220a07000200509c4000002328000000655012000aafc70000000000001e0000003d0000003d0000004500003d000040004006fad75db8d8220a07000200509c4000002329000000655018faf07f820000485454502f312e3120323030204f4b0d0a0d0a6f6b";
