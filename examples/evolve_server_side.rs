//! Evolve server-side strategies from scratch, the paper's §4.1
//! methodology: a genetic algorithm triggered on SYN+ACK packets,
//! trained against a censor.
//!
//! ```sh
//! cargo run --release --example evolve_server_side -- [--jobs N] [china|india|iran|kazakhstan] [protocol]
//! ```

use appproto::AppProtocol;
use censor::Country;
use evolve::{evolve, GaConfig};
use harness::Throughput;

fn main() {
    let args = come_as_you_are::cli::args_with_jobs();
    let country = match args.first().map(String::as_str) {
        Some("india") => Country::India,
        Some("iran") => Country::Iran,
        Some("kazakhstan") => Country::Kazakhstan,
        _ => Country::China,
    };
    let protocol = match args.get(1).map(String::as_str) {
        Some("dns") => AppProtocol::DnsTcp,
        Some("ftp") => AppProtocol::Ftp,
        Some("https") => AppProtocol::Https,
        Some("smtp") => AppProtocol::Smtp,
        _ => AppProtocol::Http,
    };

    let mut config = GaConfig::new(country, protocol, 2020);
    config.population = 120;
    config.generations = 30;
    config.trials_per_eval = 10;

    println!(
        "evolving server-side strategies against {country} / {protocol} \
         (population {}, ≤{} generations, {} trials/eval)…\n",
        config.population, config.generations, config.trials_per_eval
    );

    let (result, throughput) = Throughput::measure("evolve", || evolve(&config));
    eprintln!("{}", throughput.to_json());
    // Prune vestigial nodes, like Geneva does before reporting.
    let mut cache = evolve::FitnessCache::new(country, protocol, 20, 777);
    let minimized = evolve::minimize(&result.best, &mut cache, 0.05);

    println!("generations run : {}", result.history.len());
    println!("distinct genomes: {}", result.distinct_evaluated);
    println!("trials simulated: {}", result.trials_spent);
    println!(
        "fitness history : {}",
        result
            .history
            .iter()
            .map(|f| format!("{f:.0}"))
            .collect::<Vec<_>>()
            .join(" → ")
    );
    println!(
        "\nbest strategy (found at generation {}):",
        result.best_generation
    );
    println!("  {}", result.best.strategy);
    println!("minimized:");
    println!("  {}", minimized.strategy);
    print!("  {}", geneva::explain(&minimized.strategy));
    println!(
        "  evasion rate {:.0}% over {} trials (fitness {:.1})",
        result.best_eval.rate() * 100.0,
        result.best_eval.trials,
        result.best_eval.fitness
    );
    println!("\npaper strategies for comparison:");
    for named in geneva::library::server_side() {
        println!(
            "  {:>2}. {:<28} {}",
            named.id,
            named.name,
            named.text.trim()
        );
    }
}
