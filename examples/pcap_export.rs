//! Export a strategy's packet exchange as a libpcap capture — open it
//! in Wireshark and read the handshake the way the paper's authors
//! read tcpdump.
//!
//! ```sh
//! cargo run --example pcap_export -- [strategy-id] [out.pcap]
//! ```

use appproto::AppProtocol;
use censor::Country;
use harness::{run_trial, TrialConfig};
use netsim::pcap::{parse_pcap, to_pcap, CaptureAt};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);
    let path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| format!("strategy{id}.pcap"));
    let strategy = geneva::library::by_id(id).unwrap_or_else(|| {
        eprintln!("strategy id must be 0–11; got {id}, using Strategy 1");
        geneva::library::STRATEGY_1.strategy()
    });

    let result = (0..32)
        .map(|seed| {
            run_trial(&TrialConfig::new(
                Country::China,
                AppProtocol::Http,
                strategy.clone(),
                seed,
            ))
        })
        .max_by_key(|r| u8::from(r.evaded()))
        .expect("some run");

    for at in [CaptureAt::Client, CaptureAt::Middlebox, CaptureAt::Server] {
        let bytes = to_pcap(&result.trace, at);
        let n = parse_pcap(&bytes).map(|(_, r)| r.len()).unwrap_or(0);
        let suffix = match at {
            CaptureAt::Client => "client",
            CaptureAt::Middlebox => "censor",
            CaptureAt::Server => "server",
        };
        let file = format!("{path}.{suffix}");
        std::fs::write(&file, &bytes).expect("write pcap");
        println!("{file}: {n} packets ({} bytes)", bytes.len());
    }
    println!("outcome: {:?}", result.outcome);
}
