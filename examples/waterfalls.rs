//! Regenerate Figures 1 and 2: packet waterfalls for all strategies.
//!
//! ```sh
//! cargo run --release --example waterfalls
//! ```

fn main() {
    println!("==== Figure 1: server-side evasion strategies in China ====\n");
    println!("{}", harness::experiments::figure1(7));
    println!("==== Figure 2: strategies against Kazakhstan's HTTP censor ====\n");
    println!("{}", harness::experiments::figure2(7));
}
