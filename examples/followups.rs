//! Regenerate the §5 follow-up (mechanism-confirmation) experiments
//! and the §3 generalization experiment.
//!
//! ```sh
//! cargo run --release --example followups -- [trials]
//! ```

use harness::experiments::{followups, overhead, residual, section3, table1};

fn main() {
    let trials: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    println!("{}", table1());
    println!("{}", section3(trials, 0x3333).render());
    println!("{}", followups(trials, 0x5555).render());
    println!("{}", residual(17).render());
    println!("{}", overhead(6).render());
}
