//! Regenerate the §5 follow-up (mechanism-confirmation) experiments
//! and the §3 generalization experiment.
//!
//! ```sh
//! cargo run --release --example followups -- [--jobs N] [trials]
//! ```

use harness::experiments::{followups, overhead, residual, section3, table1};
use harness::Throughput;

fn main() {
    let args = come_as_you_are::cli::args_with_jobs();
    let trials: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);

    println!("{}", table1());
    let ((), throughput) = Throughput::measure("followups", || {
        println!("{}", section3(trials, 0x3333).render());
        println!("{}", followups(trials, 0x5555).render());
    });
    println!("{}", residual(17).render());
    println!("{}", overhead(6).render());
    eprintln!("{}", throughput.to_json());
}
