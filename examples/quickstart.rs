//! Quickstart: run one server-side evasion strategy against China's
//! GFW and watch the packets.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the paper's core loop in five steps:
//!  1. parse a Geneva strategy from its DSL text;
//!  2. stand up an unmodified client and a stock server in the
//!     simulator, with the GFW model on the path;
//!  3. bolt the strategy onto the server's wire interface;
//!  4. run the exchange;
//!  5. inspect the outcome and the packet waterfall.

use appproto::AppProtocol;
use censor::Country;
use geneva::{library, parse_strategy};
use harness::{render_waterfall, run_trial, success_rate, TrialConfig};

fn main() {
    // 1. A strategy in Geneva's DSL — the paper's Strategy 1
    //    ("Simultaneous Open, Injected RST").
    let strategy = parse_strategy(library::STRATEGY_1.text).expect("library text parses");
    println!("strategy: {strategy}\n");

    // 2–4. One trial: unmodified client in China requests a censored
    //      keyword over HTTP from our strategic server.
    let no_evasion = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        geneva::Strategy::identity(),
        7,
    );
    let censored = run_trial(&no_evasion);
    println!(
        "without evasion: {:?}\n{}",
        censored.outcome,
        render_waterfall("no evasion (China, HTTP)", &censored.trace)
    );

    let mut evaded = None;
    for seed in 0..20 {
        let cfg = TrialConfig::new(Country::China, AppProtocol::Http, strategy.clone(), seed);
        let result = run_trial(&cfg);
        if result.evaded() {
            evaded = Some(result);
            break;
        }
    }
    if let Some(result) = evaded {
        println!(
            "with Strategy 1: {:?}\n{}",
            result.outcome,
            render_waterfall("Strategy 1 (China, HTTP)", &result.trace)
        );
    }

    // 5. And the success rate over many seeded trials (the paper's
    //    Table-2 numbers are exactly this, per country × protocol).
    let cfg = TrialConfig::new(Country::China, AppProtocol::Http, strategy, 0);
    let rate = success_rate(&cfg, 200, 42);
    println!("Strategy 1 vs GFW/HTTP over 200 trials: {rate} (paper: 54%)");
}
