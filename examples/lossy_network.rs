//! Robustness extension: strategies on lossy paths, plus the §2.1
//! DNS-over-UDP race.
//!
//! ```sh
//! cargo run --release --example lossy_network -- [trials]
//! ```

use harness::experiments::{dns_race, robustness};

fn main() {
    let trials: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("{}", robustness(trials, 0xB0B).render());
    println!("{}", dns_race(5).render());
}
