//! Regenerate the Figure-3 / §6 evidence for China's multi-box
//! architecture: per-protocol divergence of TCP-level strategies, a
//! single-box ablation, and TTL-probe co-location.
//!
//! ```sh
//! cargo run --release --example multibox -- [trials]
//! ```

use harness::experiments::{multibox, ttl_probe};

fn main() {
    let trials: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let report = multibox(trials, 0x600D);
    println!("{}", report.render());
    println!(
        "reading: under the real (multi-box) GFW the same TCP-level strategy\n\
         behaves wildly differently per protocol; one shared stack would\n\
         flatten those differences — which the ablation shows.\n"
    );
    let probes = ttl_probe(5);
    println!("{}", probes.render());
}
