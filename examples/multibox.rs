//! Regenerate the Figure-3 / §6 evidence for China's multi-box
//! architecture: per-protocol divergence of TCP-level strategies, a
//! single-box ablation, and TTL-probe co-location.
//!
//! ```sh
//! cargo run --release --example multibox -- [--jobs N] [trials]
//! ```

use harness::experiments::{multibox, ttl_probe};
use harness::Throughput;

fn main() {
    let args = come_as_you_are::cli::args_with_jobs();
    let trials: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(150);
    let (report, throughput) = Throughput::measure("multibox", || multibox(trials, 0x600D));
    eprintln!("{}", throughput.to_json());
    println!("{}", report.render());
    println!(
        "reading: under the real (multi-box) GFW the same TCP-level strategy\n\
         behaves wildly differently per protocol; one shared stack would\n\
         flatten those differences — which the ablation shows.\n"
    );
    let probes = ttl_probe(5);
    println!("{}", probes.render());
}
