//! Regenerate Table 2 — success rates of every server-side strategy
//! per country and protocol.
//!
//! ```sh
//! cargo run --release --example table2 -- [--jobs N] [trials]
//! ```
//!
//! The paper's numbers came from live censors; ours come from the
//! behavioral censor models. Compare shapes, not decimals.

use harness::experiments::table2;
use harness::Throughput;

fn main() {
    let args = come_as_you_are::cli::args_with_jobs();
    let trials: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(200);
    let (table, throughput) = Throughput::measure("table2", || table2(trials, 0xBADC_0FFE));
    eprintln!("{}", throughput.to_json());
    println!("{}", table.render());
    println!("Paper values (Table 2) for comparison:");
    println!("China   S1: 89/52/54/14/70   S2: 83/36/54/55/59   S3: 26/65/4/4/23");
    println!("        S4: 7/33/5/5/22      S5: 15/97/4/3/25     S6: 82/55/52/54/55");
    println!("        S7: 83/85/54/4/66    S8: 3/47/2/3/100     (DNS/FTP/HTTP/HTTPS/SMTP)");
    println!("India   S8: 100 (HTTP)   Iran S8: 100/100 (HTTP/HTTPS)");
    println!("Kazakhstan S8/S9/S10/S11: 100 (HTTP)");
}
