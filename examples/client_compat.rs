//! Regenerate the §7 client-compatibility matrix: every strategy
//! against 17 client operating systems on a censor-free network.
//!
//! ```sh
//! cargo run --release --example client_compat
//! ```

use harness::experiments::{client_compat, network_compat};

fn main() {
    let report = client_compat(2024);
    println!("{}", report.render());
    println!(
        "strategies breaking any OS: {:?} (paper: 5, 9, 10 — Windows & macOS only)",
        report.broken_strategies()
    );
    for id in report.broken_strategies() {
        println!(
            "  strategy {id} fails on: {}",
            report.failing_oses(id).join(", ")
        );
    }
    println!();
    let networks = network_compat(4242);
    println!("{}", networks.render());
    println!("(paper: wifi all pass; T-Mobile breaks 1 & 3; AT&T breaks 1, 2 & 3)");
}
