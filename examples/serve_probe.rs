//! Drive a live `cay serve` end to end — the smoke probe.
//!
//! Two modes:
//!
//! * `cargo run --example serve_probe` — self-hosted: starts the
//!   service in-process on ephemeral loopback ports, then probes it.
//! * `cargo run --example serve_probe <udp-addr> <control-addr>` —
//!   external: probes an already-running `cay serve` (the CI smoke job
//!   starts the real binary and points this at it). In this mode the
//!   probe also plays the *origin server*: start the service with
//!   `--upstream` pointing at the port printed by the probe… or simply
//!   let the probe learn it — the probe answers whatever the bridge
//!   forwards to it only in self-hosted mode; externally it drives the
//!   client side and an echo origin on `<udp-addr>`'s upstream.
//!
//! Exit code 0 means: frames round-tripped through the UDP bridge, the
//! control plane answered `/ready`, `/status`, `/metrics` (both
//! formats), a hot reload applied, a bad reload was refused without
//! side effects, and shutdown drained cleanly.

use come_as_you_are::dplane::{DplaneConfig, SeedMode};
use come_as_you_are::harness::deploy::{demo_geo_entries, RolloutTable};
use come_as_you_are::packet::{Packet, TcpFlags};
use come_as_you_are::svc;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::process::exit;
use std::time::Duration;

const SERVER: [u8; 4] = [93, 184, 216, 34];

fn check(cond: bool, what: &str) {
    if cond {
        eprintln!("ok   {what}");
    } else {
        eprintln!("FAIL {what}");
        exit(1);
    }
}

fn http(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect control plane");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: p\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: p\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn frame(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16, flags: TcpFlags) -> Packet {
    let mut p = Packet::tcp(src, sport, dst, dport, flags, 1, 0, vec![]);
    p.finalize();
    p
}

fn drain(sock: &UdpSocket, settle: Duration) -> usize {
    let mut buf = [0u8; 65536];
    let mut n = 0;
    sock.set_read_timeout(Some(settle)).expect("set timeout");
    while sock.recv_from(&mut buf).is_ok() {
        n += 1;
    }
    n
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");

    // The origin echo: receives forwarded client frames, answers with
    // a server-sourced SYN/ACK. In external mode `cay serve` must have
    // been started with `--upstream` at this probe's UDP_UPSTREAM.
    let origin = UdpSocket::bind(
        std::env::var("UDP_UPSTREAM")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(loopback),
    )
    .expect("bind origin");

    // Self-hosted unless addresses were supplied.
    let service;
    let (udp_addr, control_addr) = match (args.first(), args.get(1)) {
        (Some(u), Some(c)) => {
            service = None;
            (
                u.parse().expect("bad udp addr"),
                c.parse().expect("bad control addr"),
            )
        }
        _ => {
            let geo = demo_geo_entries();
            let s = svc::Service::start(svc::ServeConfig {
                bridge: svc::BridgeConfig {
                    udp: loopback,
                    tcp: None,
                    upstream: origin.local_addr().expect("origin addr"),
                    backend: svc::BackendChoice::Auto,
                },
                control: loopback,
                core: svc::CoreConfig {
                    dplane: DplaneConfig {
                        seed: SeedMode::PerFlow(0x0D1A),
                        ..DplaneConfig::default()
                    },
                    server_addr: SERVER,
                    protocol: come_as_you_are::appproto::AppProtocol::Http,
                    rollout: RolloutTable::from_geo(
                        &geo,
                        come_as_you_are::appproto::AppProtocol::Http,
                    ),
                    geo,
                },
            })
            .expect("start service");
            let addrs = (s.udp_addr, s.control_addr);
            service = Some(s);
            addrs
        }
    };
    eprintln!("probing udp={udp_addr} control={control_addr}");

    // 1. Readiness.
    let (status, body) = get(control_addr, "/ready");
    check(status == 200 && body.contains("\"ready\":true"), "/ready");

    // 2. Drive a China-prefix client flow through the UDP bridge.
    let client_sock = UdpSocket::bind(loopback).expect("bind client");
    let client = [10, 7, 0, 2];
    client_sock
        .send_to(
            &frame(client, 40001, SERVER, 80, TcpFlags::SYN).serialize_raw(),
            udp_addr,
        )
        .expect("send SYN");
    let fwd = drain(&origin, Duration::from_millis(400));
    check(fwd >= 1, "SYN forwarded to the origin");
    origin
        .send_to(
            &frame(SERVER, 80, client, 40001, TcpFlags::SYN_ACK).serialize_raw(),
            udp_addr,
        )
        .expect("send SYN/ACK");
    let back = drain(&client_sock, Duration::from_millis(400));
    check(
        back >= 2,
        "rewritten SYN/ACK reached the client (strategy emitted extras)",
    );

    // 3. Counters moved.
    let (status, body) = get(control_addr, "/status");
    check(
        status == 200 && body.contains("\"service\":\"cay-serve\""),
        "/status",
    );
    let (status, body) = get(control_addr, "/metrics");
    check(
        status == 200 && body.contains("\"uptime_ms\":") && !body.contains("\"packets\":0,"),
        "/metrics shows traffic",
    );
    let (status, body) = get(control_addr, "/metrics?format=prometheus");
    check(
        status == 200 && body.contains("cay_packets_total"),
        "/metrics prometheus exposition",
    );

    // 4. Hot reload: refused (proof gate), then applied.
    let mut bomb = "duplicate".to_string();
    for _ in 0..130 {
        bomb = format!("duplicate({bomb},)");
    }
    let (status, body) = post(
        control_addr,
        "/config",
        &format!("10.7.0.0/16 50 [TCP:flags:SA]-{bomb}-| \\/"),
    );
    check(
        status == 422 && body.contains("\"applied\":false"),
        "unverifiable reload refused",
    );
    let (status, body) = post(
        control_addr,
        "/config",
        "10.7.0.0/16 60 [TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:R},)-| \\/\n\
         10.7.0.0/16 40 [TCP:flags:SA]-duplicate(tamper{TCP:ack:corrupt},)-| \\/\n",
    );
    check(
        status == 200 && body.contains("\"applied\":true"),
        "A/B reload applied",
    );

    // 5. Graceful shutdown.
    let (status, body) = post(control_addr, "/shutdown", "");
    check(
        status == 200 && body.contains("\"draining\":true"),
        "/shutdown acknowledged",
    );
    if let Some(s) = service {
        let report = s.join();
        check(
            report.totals().packets >= 2 && report.uptime_ms.is_some(),
            "drained with a final service-path snapshot",
        );
    }
    eprintln!("serve_probe: all checks passed");
}
