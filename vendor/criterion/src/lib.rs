//! Offline stand-in for the `criterion` crate.
//!
//! Supports the surface `crates/bench` uses — `Criterion::default()`
//! with `sample_size`/`warm_up_time`/`measurement_time`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros (both the
//! `name/config/targets` and plain-list forms).
//!
//! Instead of criterion's bootstrap statistics and HTML reports, each
//! benchmark runs a warm-up, then `sample_size` timed samples, and
//! prints `min / mean / max` per-iteration times. Good enough to spot
//! order-of-magnitude regressions in CI logs; use real criterion on a
//! networked machine for publication-grade numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Benchmark driver: holds the timing configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// How long to run the routine before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget split across the samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.to_string(), f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// End the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, mut f: F) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // learning the routine's rough cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < config.warm_up_time {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break; // routine is so cheap the clock is the bottleneck
        }
    }
    let per_iter = warm_start.elapsed() / u32::try_from(warm_iters.max(1)).unwrap_or(u32::MAX);

    // Size each sample so all samples together fit the measurement
    // budget, with at least one iteration per sample.
    let budget_per_sample =
        config.measurement_time / u32::try_from(config.sample_size).unwrap_or(1);
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let sample = b.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX);
        min = min.min(sample);
        max = max.max(sample);
        total += sample;
    }
    let mean = total / u32::try_from(config.sample_size).unwrap_or(1);
    println!(
        "bench {name:<48} min {min:>12.3?}  mean {mean:>12.3?}  max {max:>12.3?}  ({} samples x {iters_per_sample} iters)",
        config.sample_size,
    );
}

/// Group benchmark functions, optionally with a shared config:
/// `criterion_group!(benches, f, g)` or
/// `criterion_group! { name = benches; config = expr; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate the `main` for a bench target (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_runs_the_routine() {
        let mut runs = 0u64;
        let mut c = tiny();
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        // Hard to assert on `runs` (moved into closure); reaching here
        // without panicking is the contract. Run the group form too.
        let mut c = tiny();
        let mut group = c.benchmark_group("grp");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        let _ = runs;
    }

    criterion_group! {
        name = named_form;
        config = tiny();
        targets = target_a, target_b
    }
    criterion_group!(list_form, target_a);

    fn target_a(c: &mut Criterion) {
        c.bench_function("a", |b| b.iter(|| std::hint::black_box(2 * 2)));
    }
    fn target_b(c: &mut Criterion) {
        c.bench_function("b", |b| b.iter(|| std::hint::black_box("x".len())));
    }

    #[test]
    fn group_macros_expand_and_run() {
        named_form();
        list_form();
    }
}
