//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy-combinator surface this workspace uses —
//! `any`, ranges, tuples, `Just`, `prop_map`, `prop_flat_map`,
//! `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `BoxedStrategy` — plus the `proptest!`,
//! `prop_assert!` and `prop_assert_eq!` macros, driven by a seeded
//! deterministic PRNG.
//!
//! Differences from upstream, deliberately accepted:
//! - **no shrinking** — a failing case reports the generated inputs via
//!   the assertion message and the per-test seed is derived from the
//!   test name, so failures replay exactly on re-run;
//! - value distributions are simpler (uniform rather than
//!   bias-to-edge-cases).

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value` from a PRNG.
    ///
    /// Upstream proptest separates `Strategy` from `ValueTree`
    /// (for shrinking); without shrinking the strategy can produce
    /// final values directly.
    pub trait Strategy: Clone + 'static {
        /// The type of the generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, O>
        where
            F: Fn(Self::Value) -> O + 'static,
        {
            Map {
                inner: self,
                f: Rc::new(f),
            }
        }

        /// Generate a value, then generate from the strategy `f`
        /// derives from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, S2>
        where
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            FlatMap {
                inner: self,
                f: Rc::new(f),
            }
        }

        /// Build a recursive strategy: `self` is the leaf, and `f`
        /// wraps an inner strategy into one more composite layer. The
        /// result nests at most `depth` layers, so generation always
        /// terminates. `_desired_size` and `_expected_branch_size` are
        /// accepted for signature compatibility; layering alone bounds
        /// the tree here.
        fn prop_recursive<F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                // Mix the leaf back in at every layer so expected tree
                // size stays modest even at full depth.
                strat = Union::new(vec![(1, leaf.clone()), (2, f(strat))]).boxed();
            }
            strat
        }

        /// Type-erase into a clonable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform over the whole domain of `T` (`any::<u32>()` etc.).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: rand::Standard + 'static>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: rand::Standard + 'static> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Clone + 'static,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Clone + 'static,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S: Strategy, O> {
        inner: S,
        f: Rc<dyn Fn(S::Value) -> O>,
    }

    impl<S: Strategy, O> Clone for Map<S, O> {
        fn clone(&self) -> Self {
            Map {
                inner: self.inner.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S: Strategy, O: 'static> Strategy for Map<S, O> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `strategy.prop_flat_map(f)`.
    pub struct FlatMap<S: Strategy, S2> {
        inner: S,
        f: Rc<dyn Fn(S::Value) -> S2>,
    }

    impl<S: Strategy, S2> Clone for FlatMap<S, S2> {
        fn clone(&self) -> Self {
            FlatMap {
                inner: self.inner.clone(),
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<S: Strategy, S2: Strategy> Strategy for FlatMap<S, S2> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Weighted choice among strategies of a common value type; the
    /// expansion of `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// `arms` are `(weight, strategy)` pairs; weights need not sum
        /// to anything in particular but must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "prop_oneof! needs at least one arm with nonzero weight"
            );
            Union { arms }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
            let mut roll = rng.gen_range(0..total);
            for (weight, strat) in &self.arms {
                if roll < *weight {
                    return strat.generate(rng);
                }
                roll -= weight;
            }
            unreachable!("roll exceeded total weight")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10
    );
    impl_tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10,
        L / 11
    );
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size,
            }
        }
    }

    /// `prop::collection::vec(element_strategy, 0..600)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample::select`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniform choice from a fixed list.
    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(vec![...])`.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() from an empty list");
        Select { options }
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! The case loop behind `proptest!`.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property; produced by `prop_assert!`-family macros and
    /// by `?` on test-body `Result`s.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl<E: std::error::Error> From<E> for TestCaseError {
        fn from(e: E) -> Self {
            TestCaseError(e.to_string())
        }
    }

    /// Derive the base RNG seed for a named test: the
    /// `PROPTEST_RNG_SEED` env var when set, else an FNV-1a hash of the
    /// test name. Both are stable across runs, so failures reproduce.
    pub fn seed_for(name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(n) = seed.parse::<u64>() {
                return n;
            }
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Run `case` for `config.cases` iterations over one deterministic
    /// RNG stream; panic (failing the `#[test]`) on the first `Err`.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(seed_for(name));
        for i in 0..config.cases {
            if let Err(e) = case(&mut rng) {
                panic!(
                    "proptest {name} failed at case {i}/{} (seed {}): {e}",
                    config.cases,
                    seed_for(name),
                );
            }
        }
    }
}

/// Everything a property test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                #[allow(unreachable_code)]
                let mut __proptest_case = move ||
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_items!{ @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// `TestCaseError` rather than a panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "prop_assert_eq failed ({}):\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("prop_assert_ne failed: both sides are {:?}", __l,),
            ));
        }
    }};
}

/// Weighted (`3 => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn oneof_and_collections(v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b == 1 || b == 2));
        }

        #[test]
        fn maps_and_tuples((a, b) in (0u16..100, 0u16..100).prop_map(|(x, y)| (x + 1000, y))) {
            prop_assert!((1000..1100).contains(&a), "a was {}", a);
            prop_assert!(b < 100);
        }

        #[test]
        fn early_return_ok_is_supported(x in any::<u32>()) {
            if x % 2 == 0 {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<bool>()) {
            prop_assert!(matches!(x, true | false));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
                .boxed()
        });
        let mut rng = StdRng::seed_from_u64(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never expanded past the leaf");
    }

    #[test]
    fn select_is_total() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::sample::select(vec!["a", "b", "c"]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&strat.generate(&mut rng)));
        }
    }
}
