//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *exact* API surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator behind it is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, fast,
//! and statistically solid for simulation work (it is not, and does not
//! pretend to be, cryptographic).
//!
//! The stream differs from upstream `rand`'s ChaCha12-based `StdRng`,
//! so absolute draw values differ from a crates.io build; everything in
//! this workspace only relies on *seeded determinism*, which holds.

#![forbid(unsafe_code)]

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (`u8`/`u16`/`u32`/`u64`/`bool`/
    /// `f64` in `[0,1)`, …).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`). Panics on an
    /// empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable uniformly over their whole domain (the stand-in for
/// upstream's `Standard` distribution).
pub trait Standard {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for byte in &mut out {
            *byte = u8::sample(rng);
        }
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic PRNG: xoshiro256++ seeded through
    /// SplitMix64 (the reference seeding procedure from Blackman &
    /// Vigna). Not the upstream ChaCha12 `StdRng`, but fulfilling the
    /// same contract this workspace relies on: the stream is a pure
    /// function of the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.gen_range(8..=12);
            assert!((8..=12).contains(&w));
            let x: i32 = rng.gen_range(0..4);
            assert!((0..4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn array_sampling() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: [u8; 4] = rng.gen();
        let b: [u8; 4] = rng.gen();
        assert_ne!(
            a, b,
            "two 4-byte draws colliding is astronomically unlikely"
        );
    }
}
