//! # come-as-you-are
//!
//! Facade crate for the reproduction of *"Come as You Are: Helping
//! Unmodified Clients Bypass Censorship with Server-side Evasion"*
//! (Bock et al., SIGCOMM 2020).
//!
//! Re-exports every workspace crate so examples, integration tests, and
//! downstream users can depend on a single package:
//!
//! * [`packet`] — IPv4/TCP/UDP packet model.
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`endpoint`] — endpoint TCP state machines + client OS profiles.
//! * [`appproto`] — HTTP/HTTPS/DNS-over-TCP/FTP/SMTP implementations.
//! * [`geneva`] — the Geneva DSL and packet-manipulation engine.
//! * [`censor`] — behavioral models of the GFW, Airtel, Iran, Kazakhstan.
//! * [`evolve`] — the genetic algorithm discovering strategies.
//! * [`strata`] — static analysis over Geneva strategies.
//! * [`dplane`] — the compiled, sharded server-side evasion data plane.
//! * [`svc`] — live-traffic socket front end + operator control plane.
//! * [`harness`] — experiment drivers reproducing every table & figure.

pub use appproto;
pub use censor;
pub use dplane;
pub use endpoint;
pub use evolve;
pub use geneva;
pub use harness;
pub use netsim;
pub use packet;
pub use strata;
pub use svc;

/// Shared command-line plumbing for the `cay` binary and the examples.
pub mod cli {
    /// Collect the process arguments (program name skipped), applying
    /// and stripping a `--jobs N` / `--jobs=N` flag if present. The
    /// flag pins the trial executor's worker count process-wide;
    /// results are bit-identical for any value.
    pub fn args_with_jobs() -> Vec<String> {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let Some(pos) = args
            .iter()
            .position(|a| a == "--jobs" || a.starts_with("--jobs="))
        else {
            return args;
        };
        let jobs = if let Some(value) = args[pos].strip_prefix("--jobs=") {
            value.parse().ok()
        } else {
            args.get(pos + 1).and_then(|s| s.parse().ok())
        };
        let Some(jobs) = jobs else {
            eprintln!("--jobs needs a worker count, e.g. --jobs 4");
            std::process::exit(2);
        };
        harness::pool::set_jobs(jobs);
        if args[pos] == "--jobs" {
            args.drain(pos..=pos + 1);
        } else {
            args.remove(pos);
        }
        args
    }
}
