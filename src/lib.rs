//! # come-as-you-are
//!
//! Facade crate for the reproduction of *"Come as You Are: Helping
//! Unmodified Clients Bypass Censorship with Server-side Evasion"*
//! (Bock et al., SIGCOMM 2020).
//!
//! Re-exports every workspace crate so examples, integration tests, and
//! downstream users can depend on a single package:
//!
//! * [`packet`] — IPv4/TCP/UDP packet model.
//! * [`netsim`] — deterministic discrete-event network simulator.
//! * [`endpoint`] — endpoint TCP state machines + client OS profiles.
//! * [`appproto`] — HTTP/HTTPS/DNS-over-TCP/FTP/SMTP implementations.
//! * [`geneva`] — the Geneva DSL and packet-manipulation engine.
//! * [`censor`] — behavioral models of the GFW, Airtel, Iran, Kazakhstan.
//! * [`evolve`] — the genetic algorithm discovering strategies.
//! * [`harness`] — experiment drivers reproducing every table & figure.

pub use appproto;
pub use censor;
pub use endpoint;
pub use evolve;
pub use geneva;
pub use harness;
pub use netsim;
pub use packet;
