//! `cay` — the command-line front end to the reproduction.
//!
//! ```text
//! cay strategies                 list the paper's 11 strategies (+ variants)
//! cay table1                     Table 1 (vantage points / protocols)
//! cay table2 [trials]            Table 2 (success rates)
//! cay waterfalls                 Figures 1 & 2 (packet diagrams)
//! cay multibox [trials]          Figure 3 + §6 TTL probes
//! cay followups [trials]         §3 + §5 follow-ups + residual censorship
//! cay compat                     §7 OS and carrier matrices
//! cay dnsrace                    §2.1 UDP-vs-TCP DNS background
//! cay evolve [country] [proto]   §4.1 genetic algorithm
//! cay lint <strategy-dsl>        static analysis: canonical form + diagnostics
//! cay verify <dsl>|--library     lints + compiled-program proof obligations,
//!                                as text, JSON, or SARIF (--format); add
//!                                --censor <name|all> for per-censor verdicts
//!                                from the censor-product model checker;
//!                                --unsafe-scan checks keyword confinement
//!                                to the workspace's audited files instead
//! cay run <strategy-dsl>         evaluate an arbitrary DSL strategy vs GFW/HTTP
//! cay pcap <file.pcap>           capture one Strategy-1 exchange to pcap
//! cay dplane [shards|file.pcap]  run the compiled data plane, print metrics JSON;
//!                                --threads N uses the run-to-completion threaded
//!                                plane with N shard workers (same output bytes)
//! cay serve [--udp A] [--tcp A] [--control A] [--upstream A]
//!           [--geo file] [--rollout file] [--backend auto|epoll|poll]
//!                                run the live service: socket front end
//!                                (frame-in-datagram; epoll+recvmmsg event loop
//!                                on Linux, readiness-poll fallback elsewhere)
//!                                + operator control plane (/ready /status
//!                                /metrics, POST /config hot reload,
//!                                POST /shutdown graceful drain)
//! cay bench [trials] [out.json]  pool scaling bench (jobs 1/2/8 speedups vs the
//!                                same-invocation jobs=1 baseline, scaling_factor)
//!                                + compiled-data-plane bench incl. threaded
//!                                  workers 1/2/8 (BENCH_dplane.json)
//!                                + hot-path microbench (BENCH_hotpath.json;
//!                                  allocations counted with --features count-allocs)
//!                                + socket-backend bench (BENCH_svc.json: epoll
//!                                  vs poll at recv-batch 1/8/64, syscalls/packet,
//!                                  idle wakeups); --only pool|dplane|hotpath|svc
//!                                  runs one section
//! ```
//!
//! Every subcommand accepts `--jobs N` to pin the trial-executor
//! worker count (default: available parallelism); results are
//! bit-identical for any value. Subcommands that simulate trials
//! print one throughput JSON line to stderr.

use appproto::AppProtocol;
use censor::Country;
use dplane::{
    pump_threaded, Dplane, DplaneConfig, FlowConfig, PcapReplay, Program, SeedMode, ThreadedConfig,
    VecIo,
};
use harness::experiments;
use harness::{run_trial, success_rate, Throughput, TrialConfig};
use packet::{Packet, TcpFlags};
use std::sync::Arc;
use std::time::Instant;

/// The public server address every simulated exchange targets.
const SERVER_ADDR: [u8; 4] = [93, 184, 216, 34];

/// With `--features count-allocs`, every allocation in the process is
/// counted so `cay bench` can report allocations per packet.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static COUNTING_ALLOC: bench::alloc::CountingAlloc = bench::alloc::CountingAlloc;

/// Allocation counter reading (0 when counting is compiled out; the
/// JSON reports `null` in that case so 0 is never mistaken for "no
/// allocations").
fn allocs_now() -> u64 {
    bench::alloc_count().unwrap_or(0)
}

/// Render an allocations-per-unit ratio, `null` when not counting.
fn allocs_json(delta: u64, units: f64) -> String {
    if bench::alloc_count().is_some() && units > 0.0 {
        format!("{:.3}", delta as f64 / units)
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = come_as_you_are::cli::args_with_jobs();
    let command = args.first().cloned().unwrap_or_default();
    let trials =
        |default: u32| -> u32 { args.get(1).and_then(|s| s.parse().ok()).unwrap_or(default) };
    let ((), throughput) = Throughput::measure(&command, || dispatch(&args, &trials));
    if throughput.trials > 0 {
        eprintln!("{}", throughput.to_json());
    }
}

fn dispatch(args: &[String], trials: &dyn Fn(u32) -> u32) {
    match args.first().map(String::as_str) {
        Some("strategies") => {
            println!("The paper's 11 server-side strategies:");
            for named in geneva::library::server_side() {
                println!(
                    "  {:>2}. {:<30} {}",
                    named.id,
                    named.name,
                    named.text.trim()
                );
                print!("      {}", geneva::explain(&named.strategy()));
            }
            println!("\nVariant species (§5):");
            for named in geneva::library::variants() {
                println!(
                    "  {:>2}. {:<30} {}",
                    named.id,
                    named.name,
                    named.text.trim()
                );
            }
        }
        Some("table1") => print!("{}", experiments::table1()),
        Some("table2") => print!("{}", experiments::table2(trials(200), 0xBADC_0FFE).render()),
        Some("waterfalls") => {
            println!("{}", experiments::figure1(7));
            println!("{}", experiments::figure2(7));
        }
        Some("multibox") => {
            println!("{}", experiments::multibox(trials(150), 0x600D).render());
            println!("{}", experiments::ttl_probe(5).render());
        }
        Some("followups") => {
            println!("{}", experiments::section3(trials(100), 0x3333).render());
            println!("{}", experiments::followups(trials(100), 0x5555).render());
            println!("{}", experiments::residual(17).render());
            println!("{}", experiments::overhead(6).render());
        }
        Some("compat") => {
            println!("{}", experiments::client_compat(2024).render());
            println!("{}", experiments::network_compat(4242).render());
        }
        Some("dnsrace") => print!("{}", experiments::dns_race(5).render()),
        Some("evolve") => {
            let country = match args.get(1).map(String::as_str) {
                Some("india") => Country::India,
                Some("iran") => Country::Iran,
                Some("kazakhstan") => Country::Kazakhstan,
                _ => Country::China,
            };
            let protocol = match args.get(2).map(String::as_str) {
                Some("dns") => AppProtocol::DnsTcp,
                Some("ftp") => AppProtocol::Ftp,
                Some("https") => AppProtocol::Https,
                Some("smtp") => AppProtocol::Smtp,
                _ => AppProtocol::Http,
            };
            let mut config = evolve::GaConfig::new(country, protocol, 2020);
            config.population = 120;
            config.generations = 25;
            let result = evolve::evolve(&config);
            println!(
                "best after {} generations: {}\n  evasion {:.0}% (fitness {:.1})",
                result.history.len(),
                result.best.strategy,
                result.best_eval.rate() * 100.0,
                result.best_eval.fitness
            );
            println!(
                "  fitness memo: {:.0}% hit rate ({} hits / {} misses), \
                 {} genomes statically rejected, {} trials simulated",
                result.cache_hit_rate() * 100.0,
                result.cache_hits,
                result.cache_misses,
                result.static_rejects,
                result.trials_spent
            );
            println!(
                "  static prefilter: {:.0}% of misses refuted without simulation",
                result.static_skip_rate() * 100.0
            );
            println!(
                "  censor model: {:.0}% of misses proven inert vs {} without \
                 simulation ({} genomes)",
                result.censor_static_skip_rate() * 100.0,
                country.name(),
                result.censor_static_rejects
            );
        }
        Some("lint") => {
            let Some(text) = args.get(1) else {
                eprintln!("usage: cay lint '<strategy-dsl>'");
                std::process::exit(2);
            };
            match strata::lint(text) {
                Ok(diagnostics) => {
                    let strategy = geneva::parse_strategy(text).expect("lint parsed it");
                    let analysis = strata::analyze(&strategy);
                    if diagnostics.is_empty() {
                        println!("clean: no findings");
                    }
                    for d in &diagnostics {
                        println!("{}", d.render(text));
                    }
                    println!("canonical: {}", analysis.canonical);
                    println!("canon key: {}", analysis.key);
                    if analysis.statically_futile {
                        println!(
                            "verdict:   statically futile — cannot beat the identity strategy"
                        );
                        std::process::exit(1);
                    }
                }
                Err(e) => {
                    eprintln!("strategy does not parse: {e}");
                    if let Some(caret) = text.get(e.span.start..).map(|_| e.span.start) {
                        eprintln!("  {text}");
                        eprintln!("  {}^", " ".repeat(caret));
                    }
                    std::process::exit(2);
                }
            }
        }
        Some("verify") => {
            let format = args
                .iter()
                .position(|a| a == "--format")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("text");
            if !matches!(format, "text" | "json" | "sarif") {
                eprintln!("unknown --format {format:?}: expected text, json, or sarif");
                std::process::exit(2);
            }
            if args.iter().any(|a| a == "--unsafe-scan") {
                // Repo-level strata check, not a strategy one: verify
                // that the `unsafe` keyword stays confined to the
                // workspace's audited files. Replaces the old CI shell
                // greps so the gate ships with the tool.
                let report = match strata::scan_unsafe(
                    std::path::Path::new("crates"),
                    strata::UNSAFE_ALLOWLIST,
                ) {
                    Ok(report) => report,
                    Err(e) => {
                        eprintln!("unsafe-scan: cannot walk crates/ from the workspace root: {e}");
                        std::process::exit(2);
                    }
                };
                match format {
                    "json" => print!("{}", strata::report::render_unsafe_json(&report)),
                    "sarif" => print!("{}", strata::report::render_unsafe_sarif(&report)),
                    _ => print!("{}", strata::report::render_unsafe_text(&report)),
                }
                std::process::exit(i32::from(!report.clean()));
            }
            let censors: Vec<strata::CensorId> = match args
                .iter()
                .position(|a| a == "--censor")
                .map(|i| args.get(i + 1).map(String::as_str).unwrap_or(""))
            {
                None => Vec::new(),
                Some("all") => strata::CensorId::all().to_vec(),
                Some(name) => match strata::CensorId::parse(name) {
                    Some(id) => vec![id],
                    None => {
                        eprintln!(
                            "unknown --censor {name:?}: expected all, gfw, airtel, iran, \
                             or kazakhstan"
                        );
                        std::process::exit(2);
                    }
                },
            };
            let mut entries = Vec::new();
            if args.iter().any(|a| a == "--library") {
                for named in geneva::library::server_side()
                    .iter()
                    .chain(geneva::library::variants().iter())
                {
                    let label = format!("library/{}", named.name);
                    match verify_entry(&label, named.text, &censors) {
                        Ok(entry) => entries.push(entry),
                        Err(e) => {
                            eprintln!("{label} does not parse: {e}");
                            std::process::exit(2);
                        }
                    }
                }
            } else {
                // The strategy is the first positional operand: skip
                // the flags and their values (`--censor all '<dsl>'`
                // must still find the DSL).
                let mut positional = None;
                let mut i = 1;
                while i < args.len() {
                    match args[i].as_str() {
                        "--library" => i += 1,
                        "--format" | "--censor" => i += 2,
                        a if a.starts_with("--") => i += 1,
                        _ => {
                            positional = Some(&args[i]);
                            break;
                        }
                    }
                }
                let Some(text) = positional else {
                    eprintln!(
                        "usage: cay verify '<strategy-dsl>' [--format text|json|sarif] \
                         [--censor <name|all>]"
                    );
                    eprintln!(
                        "       cay verify --library [--format text|json|sarif] \
                         [--censor <name|all>]"
                    );
                    eprintln!("       cay verify --unsafe-scan [--format text|json|sarif]");
                    std::process::exit(2);
                };
                match verify_entry("cli", text, &censors) {
                    Ok(entry) => entries.push(entry),
                    Err(e) => {
                        eprintln!("strategy does not parse: {e}");
                        std::process::exit(2);
                    }
                }
            }
            match format {
                "json" => print!("{}", strata::report::render_json(&entries)),
                "sarif" => print!("{}", strata::report::render_sarif(&entries)),
                _ => {
                    print!("{}", strata::report::render_text(&entries));
                    if !censors.is_empty() {
                        println!();
                        print!("{}", strata::render_verdict_matrix(&entries));
                    }
                }
            }
            if entries.iter().any(strata::ReportEntry::failing) {
                std::process::exit(1);
            }
        }
        Some("run") => {
            let Some(text) = args.get(1) else {
                eprintln!("usage: cay run '<strategy-dsl>'");
                std::process::exit(2);
            };
            match geneva::parse_strategy(text) {
                Ok(strategy) => {
                    let cfg = TrialConfig::new(Country::China, AppProtocol::Http, strategy, 0);
                    let rate = success_rate(&cfg, 200, 42);
                    println!("vs GFW/HTTP over 200 trials: {rate}");
                }
                Err(e) => {
                    eprintln!("strategy does not parse: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some("pcap") => {
            let path = args.get(1).map(String::as_str).unwrap_or("strategy1.pcap");
            // Capture a run where the strategy actually evades.
            let result = (0..32)
                .map(|seed| {
                    run_trial(&TrialConfig::new(
                        Country::China,
                        AppProtocol::Http,
                        geneva::library::STRATEGY_1.strategy(),
                        seed,
                    ))
                })
                .find(|r| r.evaded())
                .expect("strategy 1 succeeds within 32 seeds");
            let bytes = netsim::pcap::to_pcap(&result.trace, netsim::pcap::CaptureAt::Middlebox);
            std::fs::write(path, &bytes).expect("write pcap");
            println!(
                "wrote {} bytes ({} packets at the censor's vantage) to {path}; outcome {:?}",
                bytes.len(),
                netsim::pcap::parse_pcap(&bytes)
                    .map(|(_, r)| r.len())
                    .unwrap_or(0),
                result.outcome
            );
        }
        Some("dplane") => {
            // `cay dplane [shards]` runs a synthetic multi-country
            // workload; `cay dplane <file.pcap> [shards]` replays a
            // capture (e.g. one written by `cay pcap`). Either way the
            // per-shard metrics print as one JSON document.
            // `--threads N` swaps the single-threaded pump for the
            // run-to-completion threaded plane with N shard workers —
            // emitted bytes and order are identical by construction.
            let mut unchecked = false;
            let mut threads: Option<usize> = None;
            let mut operands: Vec<&String> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--unchecked" => unchecked = true,
                    "--threads" => {
                        threads = args.get(i + 1).and_then(|s| s.parse().ok());
                        if threads.is_none() {
                            eprintln!("usage: cay dplane --threads N [shards|file.pcap]");
                            std::process::exit(2);
                        }
                        i += 1;
                    }
                    _ => operands.push(&args[i]),
                }
                i += 1;
            }
            let (pcap_path, shards) = match operands.first().map(|s| s.as_str()) {
                Some(s) if s.parse::<usize>().is_ok() => (None, s.parse().unwrap_or(4)),
                Some(s) => (
                    Some(s),
                    operands.get(1).and_then(|x| x.parse().ok()).unwrap_or(4),
                ),
                None => (None, 4),
            };
            let cfg = DplaneConfig {
                flow: FlowConfig {
                    shards,
                    ..FlowConfig::default()
                },
                seed: SeedMode::PerFlow(0x0D1A),
                // `--unchecked` bypasses the compile-time proof gate.
                unchecked,
            };
            if let Some(workers) = threads {
                let tcfg = ThreadedConfig {
                    workers,
                    ..ThreadedConfig::default()
                };
                let report = match pcap_path {
                    Some(path) => {
                        let data = std::fs::read(path).expect("read pcap file");
                        let mut replay =
                            PcapReplay::from_bytes(&data).expect("not a µs-pcap stream");
                        let (n, report) =
                            pump_threaded(&mut replay, SERVER_ADDR, cfg, tcfg, |_| {
                                geo_classifier()
                            });
                        eprintln!(
                            "replayed {n} packets from {path} over {workers} workers \
                             ({} emitted, {} records skipped)",
                            replay.emitted, replay.skipped
                        );
                        report
                    }
                    None => {
                        let mut io = VecIo::new(dplane_workload(64, 8));
                        let (n, report) =
                            pump_threaded(&mut io, SERVER_ADDR, cfg, tcfg, |_| geo_classifier());
                        eprintln!(
                            "synthetic workload: {n} packets in, {} out, {} flows live \
                             over {workers} workers",
                            io.output.len(),
                            report.flows_live
                        );
                        report
                    }
                };
                println!("{}", report.to_json());
            } else {
                let mut dp = Dplane::new(cfg, geo_classifier());
                match pcap_path {
                    Some(path) => {
                        let data = std::fs::read(path).expect("read pcap file");
                        let mut replay =
                            PcapReplay::from_bytes(&data).expect("not a µs-pcap stream");
                        let n = dp.pump(&mut replay, SERVER_ADDR);
                        eprintln!(
                            "replayed {n} packets from {path} ({} emitted, {} records skipped)",
                            replay.emitted, replay.skipped
                        );
                    }
                    None => {
                        let mut io = VecIo::new(dplane_workload(64, 8));
                        let n = dp.pump(&mut io, SERVER_ADDR);
                        eprintln!(
                            "synthetic workload: {n} packets in, {} out, {} flows live",
                            io.output.len(),
                            dp.flows_live()
                        );
                    }
                }
                println!("{}", dp.metrics().to_json());
            }
        }
        Some("serve") => serve(args),
        Some("bench") => bench(args),
        _ => {
            eprintln!(
                "usage: cay [--jobs N] <strategies|table1|table2|waterfalls|multibox|followups|compat|dnsrace|evolve|lint|verify|run|pcap|dplane|serve|bench> [args]"
            );
            std::process::exit(2);
        }
    }
}

/// Build one `cay verify` report entry: lint analysis, per-censor
/// model-checker verdicts for the requested censors, plus the compiled
/// program's discharged (or failed) proof obligations.
fn verify_entry(
    label: &str,
    source: &str,
    censors: &[strata::CensorId],
) -> Result<strata::ReportEntry, geneva::ParseError> {
    let strategy = geneva::parse_strategy(source)?;
    let analysis = strata::analyze(&strategy);
    let verdicts = if censors.is_empty() {
        Vec::new()
    } else {
        let summary = strata::summarize(&strategy);
        censors
            .iter()
            .map(|&id| (id, strata::censor_model::check(&summary, id)))
            .collect()
    };
    let program = match Program::compile(&strategy) {
        Ok(program) => {
            let proof = program.proof.expect("checked compile carries its proof");
            strata::ProgramFacts {
                verified: true,
                error: None,
                max_stack: proof.max_stack,
                max_emit: proof.max_emit,
            }
        }
        Err(e) => strata::ProgramFacts {
            verified: false,
            error: Some(e.to_string()),
            max_stack: 0,
            max_emit: 0,
        },
    };
    Ok(strata::ReportEntry {
        label: label.to_string(),
        source: source.to_string(),
        canonical: analysis.canonical.to_string(),
        key: analysis.key,
        statically_futile: analysis.statically_futile,
        diagnostics: analysis.diagnostics,
        verdicts,
        program: Some(program),
    })
}

/// `cay serve` — run the live service until an operator posts
/// `/shutdown` (the SIGTERM stand-in; std cannot observe real signals
/// without a libc binding). Prints the final drained metrics snapshot
/// to stdout on exit, so a supervisor always gets a complete report.
fn serve(args: &[String]) {
    let mut udp = "127.0.0.1:7070".to_string();
    let mut tcp: Option<String> = None;
    let mut control = "127.0.0.1:7071".to_string();
    let mut upstream = "127.0.0.1:7072".to_string();
    let mut geo_path: Option<String> = None;
    let mut rollout_path: Option<String> = None;
    let mut backend = svc::BackendChoice::Auto;
    let mut i = 1;
    while i < args.len() {
        let value = || -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("serve: {} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--udp" => udp = value(),
            "--tcp" => tcp = Some(value()),
            "--control" => control = value(),
            "--upstream" => upstream = value(),
            "--geo" => geo_path = Some(value()),
            "--rollout" => rollout_path = Some(value()),
            "--backend" => {
                let v = value();
                backend = svc::BackendChoice::parse(&v).unwrap_or_else(|| {
                    eprintln!("serve: --backend {v}: expected auto, epoll, or poll");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "serve: unknown argument {other}\n\
                     usage: cay serve [--udp A] [--tcp A] [--control A] [--upstream A] \
                     [--geo file] [--rollout file] [--backend auto|epoll|poll]"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let addr = |s: &str, what: &str| -> std::net::SocketAddr {
        s.parse().unwrap_or_else(|_| {
            eprintln!("serve: bad {what} address: {s}");
            std::process::exit(2);
        })
    };
    // Geography: operator-supplied prefix table, or the demo table.
    let geo = match &geo_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("serve: --geo {path}: {e}");
                std::process::exit(2);
            });
            match harness::deploy::parse_geo_file(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    // The spanned parse error (line:col) points at the
                    // offending token in the operator's file.
                    eprintln!("serve: --geo {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => harness::deploy::demo_geo_entries(),
    };
    // Initial rollout: an operator table, or 100% arms derived from
    // the geo table's per-country top picks.
    let rollout = match &rollout_path {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("serve: --rollout {path}: {e}");
                std::process::exit(2);
            });
            match harness::deploy::RolloutTable::parse(&text) {
                Ok(table) => table,
                Err(e) => {
                    eprintln!("serve: --rollout {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
        None => harness::deploy::RolloutTable::from_geo(&geo, AppProtocol::Http),
    };
    let cfg = svc::ServeConfig {
        bridge: svc::BridgeConfig {
            udp: addr(&udp, "--udp"),
            tcp: tcp.as_deref().map(|s| addr(s, "--tcp")),
            upstream: addr(&upstream, "--upstream"),
            backend,
        },
        control: addr(&control, "--control"),
        core: svc::CoreConfig {
            dplane: DplaneConfig {
                seed: SeedMode::PerFlow(0x0D1A),
                ..DplaneConfig::default()
            },
            server_addr: SERVER_ADDR,
            protocol: AppProtocol::Http,
            geo,
            rollout,
        },
    };
    let service = svc::Service::start(cfg).unwrap_or_else(|e| {
        eprintln!("serve: bind failed: {e}");
        std::process::exit(1);
    });
    let backend_name = service.backend.name();
    eprintln!(
        "serving: udp={} tcp={} control={} upstream={} backend={} ({} rollout rules)",
        service.udp_addr,
        service
            .tcp_addr
            .map(|a| a.to_string())
            .unwrap_or_else(|| "off".to_string()),
        service.control_addr,
        upstream,
        backend_name,
        service.shared.rollout_rules(),
    );
    let report = service.join();
    println!("{}", report.to_json());
}

/// `cay bench [trials] [pool.json] [dplane.json] [hotpath.json]
/// [svc.json] [--only pool|dplane|hotpath|svc]` — the bench suite.
/// `--only` runs a single section (CI uses it to keep the svc gate's
/// wall-clock independent of the trial-pool benches).
fn bench(args: &[String]) {
    let mut only: Option<String> = None;
    let mut positionals: Vec<&String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--only" {
            match args.get(i + 1) {
                Some(v) if matches!(v.as_str(), "pool" | "dplane" | "hotpath" | "svc") => {
                    only = Some(v.clone());
                }
                other => {
                    eprintln!(
                        "bench: --only {}: expected pool, dplane, hotpath, or svc",
                        other.map(String::as_str).unwrap_or("")
                    );
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            positionals.push(&args[i]);
            i += 1;
        }
    }
    let section_on = |name: &str| only.as_deref().is_none_or(|o| o == name);
    // 2000 trials per run amortizes pool spin-up and thread hand-off so
    // the jobs=N numbers reflect steady-state scaling rather than
    // startup costs (300 finished in under 10 ms and measured mostly
    // overhead).
    let trials_per_run: u32 = positionals
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let path_at = |idx: usize, default: &'static str| -> String {
        positionals
            .get(idx)
            .map_or_else(|| default.to_string(), |s| (*s).clone())
    };

    if section_on("pool") {
        let out_path = path_at(1, "BENCH_pool.json");
        let cfg = TrialConfig::new(
            Country::China,
            AppProtocol::Http,
            geneva::library::STRATEGY_1.strategy(),
            0,
        );
        let tag = harness::cell_tag("bench/pool");
        let auto = harness::pool::jobs();
        let effective_cores = std::thread::available_parallelism().map_or(1, usize::from);
        // A fixed jobs ladder (1/2/8) keeps the per-level speedups
        // comparable across machines; the jobs=auto run is appended
        // when distinct so the bit-identity contract also covers
        // this machine's default. Every speedup is measured against
        // the *same-invocation* jobs=1 run — never a stale baseline
        // from a different build or load regime.
        let mut worker_counts = vec![1, 2, 8];
        if !worker_counts.contains(&auto) {
            worker_counts.push(auto);
        }
        let mut runs: Vec<Throughput> = Vec::new();
        let mut run_jsons = Vec::new();
        let mut estimates = Vec::new();
        for &workers in &worker_counts {
            let pool = harness::Pool::with_jobs(workers);
            // Warm-up pass so the measured run sees a steady-state
            // pool (threads started, per-worker state allocated).
            harness::success_rate_in(&pool, &cfg, trials_per_run.min(64), 0xBE9C, tag);
            let a0 = allocs_now();
            let (estimate, mut t) = Throughput::measure(&format!("bench/jobs={workers}"), || {
                harness::success_rate_in(&pool, &cfg, trials_per_run, 0xBE9C, tag)
            });
            let allocs_per_trial = allocs_json(allocs_now() - a0, f64::from(trials_per_run));
            t.workers = workers;
            // Per-level speedup vs this invocation's jobs=1 run
            // (the first ladder entry; 1.0 for the baseline itself).
            let speedup = match runs.first() {
                Some(base) if t.wall_ms > 0.0 => base.wall_ms / t.wall_ms,
                _ => 1.0,
            };
            let j = t.to_json();
            let j = format!(
                "{},\"allocs_per_trial\":{},\"speedup\":{:.2}}}",
                &j[..j.len() - 1],
                allocs_per_trial,
                speedup
            );
            println!("{j}");
            runs.push(t);
            run_jsons.push(j);
            estimates.push(estimate);
        }
        let identical = estimates.windows(2).all(|w| w[0] == w[1]);
        assert!(identical, "estimates must not depend on worker count");
        // `scaling_factor` is the headline number CI gates on: the
        // jobs=8 speedup over the same-invocation jobs=1 baseline.
        let speedup_of = |workers: usize| -> f64 {
            runs.iter()
                .rposition(|t| t.workers == workers)
                .map_or(1.0, |i| {
                    if i > 0 && runs[i].wall_ms > 0.0 {
                        runs[0].wall_ms / runs[i].wall_ms
                    } else {
                        1.0
                    }
                })
        };
        let scaling_factor = speedup_of(8);
        let speedup = speedup_of(auto);
        let json = format!(
            "{{\"bench\":\"pool\",\"trials_per_run\":{},\"effective_cores\":{},\"estimates_identical\":{},\"scaling_factor\":{:.2},\"speedup\":{:.2},\"runs\":[{}]}}\n",
            trials_per_run,
            effective_cores,
            identical,
            scaling_factor,
            speedup,
            run_jsons.join(",")
        );
        std::fs::write(&out_path, &json).expect("write bench json");
        println!(
            "wrote {out_path}: scaling_factor {scaling_factor:.2}x at jobs=8 \
             ({effective_cores} effective cores), estimates identical"
        );
    }

    if section_on("dplane") {
        let dplane_path = path_at(2, "BENCH_dplane.json");
        let json = bench_dplane();
        std::fs::write(&dplane_path, &json).expect("write dplane bench json");
        println!("wrote {dplane_path}");
    }

    if section_on("hotpath") {
        let hotpath_path = path_at(3, "BENCH_hotpath.json");
        let json = bench_hotpath();
        std::fs::write(&hotpath_path, &json).expect("write hotpath bench json");
        println!("wrote {hotpath_path}");
    }

    if section_on("svc") {
        let svc_path = path_at(4, "BENCH_svc.json");
        let json = bench_svc();
        std::fs::write(&svc_path, &json).expect("write svc bench json");
        println!("wrote {svc_path}");
    }
}

/// One `cay bench` svc cell: burst service rate of a [`svc::Bridge`]
/// backend at one `recvmmsg` batch size.
///
/// The driver pre-loads a volley of loopback datagrams (untimed — the
/// sender's own kernel cost is the same for every backend and not what
/// this bench contrasts). The timed region then replays one iteration
/// of the `cay serve` data loop from its parked state: `wait` (epoll:
/// returns on readiness; fallback: the historical 300µs sleep tick),
/// then poll + pump until the volley has drained through an unchanged
/// `Dplane` whose strategy drops every frame. pps is therefore volley
/// size over wake-plus-drain time — the quantity the event-driven loop
/// actually improves — and syscalls/packet comes from the sys-shim
/// counter over the same region.
fn bench_svc_case(backend: svc::BackendChoice, batch: usize) -> String {
    let kind_name = match backend {
        svc::BackendChoice::Epoll => "epoll",
        _ => "poll",
    };
    let mut bridge = svc::Bridge::bind(&svc::BridgeConfig {
        udp: "127.0.0.1:0".parse().expect("loopback"),
        tcp: None,
        upstream: "127.0.0.1:9".parse().expect("discard"),
        backend,
    })
    .expect("bind bridge");
    bridge.set_recv_batch(batch);
    let baddr = bridge.udp_addr().expect("bridge addr");
    let driver = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind driver");
    // The plane applies a verified drop program to every frame: real
    // classify/flow/program work happens per packet, but no emissions,
    // so egress cost (identical on both backends per-datagram) does not
    // dilute the ingress contrast. BENCH_dplane covers program
    // throughput; this section covers the socket layer.
    let drop_all = std::sync::Arc::new(
        geneva::parse_strategy("[TCP:flags:PA]-drop-| \\/").expect("drop strategy parses"),
    );
    let mut dp = Dplane::new(
        DplaneConfig {
            seed: SeedMode::PerFlow(0x0D1A),
            ..DplaneConfig::default()
        },
        move |_: &Packet| Some(drop_all.clone()),
    );
    // Outbound (server→client) data frame, so the drop program governs.
    let mut frame = Packet::tcp(
        SERVER_ADDR,
        80,
        [10, 7, 0, 2],
        40000,
        TcpFlags::PSH_ACK,
        7,
        1,
        vec![],
    );
    frame.finalize();
    let bytes = frame.serialize_raw();

    // A volley comfortably below the default UDP receive buffer, so
    // the kernel never drops and every cell drains the same workload.
    const VOLLEY: usize = 192;
    let mut sent = 0u64;
    let mut done = 0u64;
    let round = |bridge: &mut svc::Bridge,
                 dp: &mut Dplane<_>,
                 sent: &mut u64,
                 done: &mut u64|
     -> std::time::Duration {
        for _ in 0..VOLLEY {
            driver.send_to(&bytes, baddr).expect("loopback send");
        }
        *sent += VOLLEY as u64;
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        let t0 = Instant::now();
        // The serve data loop parks in `wait` once a pump returns 0;
        // this is the wakeup whose latency the backends contrast.
        bridge.wait(250);
        while *done < *sent && Instant::now() < deadline {
            bridge.poll();
            *done += dp.pump(bridge, SERVER_ADDR);
        }
        t0.elapsed()
    };

    // Warm-up volley: flow admitted, program compiled, arena touched.
    round(&mut bridge, &mut dp, &mut sent, &mut done);

    let rounds = 16_384 / VOLLEY;
    let total = (rounds * VOLLEY) as u64;
    let syscalls0 = bridge.stats.syscalls;
    let done0 = done;
    let mut drained = std::time::Duration::ZERO;
    for _ in 0..rounds {
        drained += round(&mut bridge, &mut dp, &mut sent, &mut done);
    }
    let secs = drained.as_secs_f64().max(1e-9);
    let processed = (done - done0).max(1);
    let syscalls = bridge.stats.syscalls.saturating_sub(syscalls0);
    format!(
        "{{\"backend\":\"{kind_name}\",\"batch\":{batch},\"frames\":{total},\"processed\":{processed},\"pps\":{:.0},\"syscalls_per_packet\":{:.4}}}",
        processed as f64 / secs,
        syscalls as f64 / processed as f64,
    )
}

/// Idle-loop wakeups per second: how often the data thread's idle wait
/// returns with nothing to do (epoll: only the publish-cadence timeout
/// fires; poll: the historical 300µs sleep tick spins ~3000×/s).
fn bench_svc_idle(backend: svc::BackendChoice) -> f64 {
    let mut bridge = svc::Bridge::bind(&svc::BridgeConfig {
        udp: "127.0.0.1:0".parse().expect("loopback"),
        tcp: None,
        upstream: "127.0.0.1:9".parse().expect("discard"),
        backend,
    })
    .expect("bind bridge");
    let window = std::time::Duration::from_millis(400);
    let t0 = Instant::now();
    let mut wakeups = 0u64;
    while t0.elapsed() < window {
        // The data loop's idle wait: 250ms publish cadence.
        bridge.wait(250);
        wakeups += 1;
    }
    wakeups as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// The `cay bench` svc section (BENCH_svc.json): loopback traffic
/// through both socket backends at recv-batch sizes 1/8/64, reporting pps,
/// syscalls/packet (CI gates epoll at batch 64 to ≤ 0.25), and the
/// idle-loop wakeup rate that shows the event-driven loop making zero
/// timed wakeups between publishes.
fn bench_svc() -> String {
    let mut backends = vec![svc::BackendChoice::Poll];
    if svc::sys::EPOLL_SUPPORTED {
        backends.insert(0, svc::BackendChoice::Epoll);
    }
    let mut sections = Vec::new();
    for backend in backends {
        let name = match backend {
            svc::BackendChoice::Epoll => "epoll",
            _ => "poll",
        };
        let runs: Vec<String> = [1usize, 8, 64]
            .iter()
            .map(|&burst| bench_svc_case(backend, burst))
            .collect();
        let idle = bench_svc_idle(backend);
        sections.push(format!(
            "{{\"backend\":\"{name}\",\"idle_wakeups_per_sec\":{idle:.1},\"runs\":[{}]}}",
            runs.join(",")
        ));
    }
    format!(
        "{{\"bench\":\"svc\",\"epoll_supported\":{},\"backends\":[{}]}}\n",
        svc::sys::EPOLL_SUPPORTED,
        sections.join(",")
    )
}

/// §8-style per-client classification for the data plane: locate the
/// flow's client in the demo geo table and deploy the top recommended
/// (client-OS-safe) strategy for that country; unknown clients pass
/// through untouched.
fn geo_classifier() -> impl FnMut(&Packet) -> Option<Arc<geneva::Strategy>> + Send {
    let table = harness::deploy::demo_geo_table();
    move |pkt: &Packet| {
        harness::deploy::pick_for_client(pkt.ip.src, AppProtocol::Http, &table)
            .map(|named| Arc::new(named.strategy()))
    }
}

/// Synthetic multi-country workload: `flows` TCP flows from clients
/// spread over the demo geo table's prefixes (plus unlisted clients
/// that must pass through untouched), each a SYN, a request, and
/// `responses` server data packets.
fn dplane_workload(flows: u32, responses: u32) -> Vec<(u64, Packet)> {
    // The 4 demo-table countries, plus one prefix the table does not
    // cover at all.
    let prefixes: [[u8; 2]; 5] = [[10, 7], [10, 91], [10, 98], [10, 77], [172, 16]];
    let mut pkts = Vec::new();
    let mut now = 0u64;
    for i in 0..flows {
        let [p0, p1] = prefixes[usize::try_from(i).unwrap_or(0) % prefixes.len()];
        let client = [
            p0,
            p1,
            1,
            u8::try_from(i % 250).unwrap_or(0).wrapping_add(2),
        ];
        let port = 40_000 + u16::try_from(i % 20_000).unwrap_or(0);
        now += 10;
        let mut syn = Packet::tcp(client, port, SERVER_ADDR, 80, TcpFlags::SYN, 100, 0, vec![]);
        syn.finalize();
        pkts.push((now, syn));
        now += 10;
        let mut req = Packet::tcp(
            client,
            port,
            SERVER_ADDR,
            80,
            TcpFlags::PSH_ACK,
            101,
            9001,
            b"GET /forbidden HTTP/1.1\r\nHost: example.com\r\n\r\n".to_vec(),
        );
        req.finalize();
        pkts.push((now, req));
        let mut seq = 9001u32;
        for _ in 0..responses {
            now += 10;
            let body = vec![b'x'; 200];
            let len = u32::try_from(body.len()).unwrap_or(0);
            let mut resp = Packet::tcp(
                SERVER_ADDR,
                80,
                client,
                port,
                TcpFlags::PSH_ACK,
                seq,
                101,
                body,
            );
            resp.finalize();
            pkts.push((now, resp));
            seq = seq.wrapping_add(len);
        }
    }
    pkts
}

/// The compiled-data-plane bench behind `cay bench`: per-packet
/// strategy application (interpreter vs. compiled program), then the
/// assembled data plane at 1/2/8 shards over the same workload, then
/// the run-to-completion threaded plane at 1/2/8 workers — asserting
/// the aggregate metrics are bit-identical across every shard and
/// worker count before reporting packets/second and the threaded
/// `scaling_factor` (workers=8 pps over workers=1 pps).
fn bench_dplane() -> String {
    let strategy = geneva::library::STRATEGY_1.strategy();
    let workload = dplane_workload(64, 8);
    let server_pkts: Vec<&Packet> = workload
        .iter()
        .filter(|(_, p)| p.ip.src == SERVER_ADDR)
        .map(|(_, p)| p)
        .collect();
    let reps = 200u32;
    let applications = server_pkts.len() as f64 * f64::from(reps);

    let mut engine = geneva::Engine::new(strategy.clone(), 0xBE9C);
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        for pkt in &server_pkts {
            sink += engine.apply_outbound(pkt).len();
        }
    }
    let interp_pps = applications / t0.elapsed().as_secs_f64().max(1e-9);

    let program = Program::compile(&strategy).expect("library strategy verifies");
    let (mut out, mut scratch) = (Vec::new(), Vec::new());
    let t0 = Instant::now();
    for _ in 0..reps {
        for pkt in &server_pkts {
            out.clear();
            program.apply_outbound(pkt, 0xBE9C, &mut out, &mut scratch);
            sink += out.len();
        }
    }
    let compiled_pps = applications / t0.elapsed().as_secs_f64().max(1e-9);
    assert!(sink > 0, "bench produced no packets");

    // One pass of the 64-flow workload is ~640 packets — far too short
    // to time and dwarfed by thread spawn in the threaded runs. Replay
    // it 50 times (timestamps advanced per round so flow state stays
    // warm and the idle sweep never fires) to measure steady state.
    let rounds = 50u64;
    let span = workload.last().map_or(0, |(t, _)| t + 10);
    let mut repeated = Vec::with_capacity(workload.len() * usize::try_from(rounds).unwrap_or(50));
    for round in 0..rounds {
        for (t, pkt) in &workload {
            repeated.push((round * span + t, pkt.clone()));
        }
    }

    let mut shard_runs = Vec::new();
    let mut baseline = None;
    for shards in [1usize, 2, 8] {
        let cfg = DplaneConfig {
            flow: FlowConfig {
                shards,
                ..FlowConfig::default()
            },
            seed: SeedMode::PerFlow(0x0D1A),
            unchecked: false,
        };
        let mut dp = Dplane::new(cfg, geo_classifier());
        let mut replay = PcapReplay::from_packets(repeated.clone());
        let t0 = Instant::now();
        let n = dp.pump(&mut replay, SERVER_ADDR);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let report = dp.metrics();
        let totals = report.totals();
        match &baseline {
            None => baseline = Some((totals, report.strategies.clone())),
            Some((t, s)) => {
                assert_eq!(*t, totals, "aggregate metrics depend on shard count");
                assert_eq!(*s, report.strategies, "strategy set depends on shard count");
            }
        }
        shard_runs.push(format!(
            "{{\"shards\":{shards},\"packets\":{n},\"emitted\":{},\"pps\":{:.0}}}",
            replay.emitted,
            n as f64 / secs
        ));
    }

    // Threaded plane over the same repeated workload: metrics must
    // agree with every single-threaded run above, and the headline
    // scaling_factor is pps(workers=8) / pps(workers=1) within this
    // same invocation.
    let effective_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut threaded_runs = Vec::new();
    let mut threaded_pps = Vec::new();
    for workers in [1usize, 2, 8] {
        let cfg = DplaneConfig {
            flow: FlowConfig::default(),
            seed: SeedMode::PerFlow(0x0D1A),
            unchecked: false,
        };
        let mut replay = PcapReplay::from_packets(repeated.clone());
        let t0 = Instant::now();
        let (n, report) = pump_threaded(
            &mut replay,
            SERVER_ADDR,
            cfg,
            ThreadedConfig {
                workers,
                ..ThreadedConfig::default()
            },
            |_| geo_classifier(),
        );
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let totals = report.totals();
        let (base_totals, base_strategies) = baseline.as_ref().expect("shard runs set baseline");
        assert_eq!(
            *base_totals, totals,
            "threaded metrics diverge from single-threaded"
        );
        assert_eq!(
            *base_strategies, report.strategies,
            "threaded strategy set diverges from single-threaded"
        );
        let pps = n as f64 / secs;
        threaded_pps.push(pps);
        threaded_runs.push(format!(
            "{{\"workers\":{workers},\"packets\":{n},\"emitted\":{},\"pps\":{pps:.0}}}",
            replay.emitted,
        ));
    }
    let scaling_factor = threaded_pps.last().copied().unwrap_or(1.0)
        / threaded_pps.first().copied().unwrap_or(1.0).max(1e-9);

    format!
        ("{{\"bench\":\"dplane\",\"strategy\":{:?},\"applications\":{:.0},\"interp_pps\":{:.0},\"compiled_pps\":{:.0},\"compiled_speedup\":{:.2},\"effective_cores\":{},\"scaling_factor\":{:.2},\"shard_runs\":[{}],\"threaded_runs\":[{}]}}\n",
        geneva::library::STRATEGY_1.name,
        applications,
        interp_pps,
        compiled_pps,
        compiled_pps / interp_pps.max(1e-9),
        effective_cores,
        scaling_factor,
        shard_runs.join(","),
        threaded_runs.join(","),
    )
}

/// The allocation/hot-path microbench behind `cay bench`
/// (BENCH_hotpath.json): per-packet strategy application with reused
/// output buffers (interpreter vs. compiled program), the assembled
/// data plane at 1/2/8 shards in steady state (a warm-up pump builds
/// the flow table and scratch buffers; only the second pump is
/// measured), the run-to-completion threaded plane at 1/2/8 workers
/// (one pump over the workload repeated 50×, so thread/ring setup
/// amortizes to noise), and the trial pool at 1/2/8 jobs. With
/// `--features count-allocs` each section also reports allocator
/// entries per packet (or per trial); otherwise those fields are
/// `null`.
fn bench_hotpath() -> String {
    let strategy = geneva::library::STRATEGY_1.strategy();
    let workload = dplane_workload(64, 8);
    let server_pkts: Vec<&Packet> = workload
        .iter()
        .filter(|(_, p)| p.ip.src == SERVER_ADDR)
        .map(|(_, p)| p)
        .collect();
    let reps = 400u32;
    let applications = server_pkts.len() as f64 * f64::from(reps);

    // Per-packet interpreter path, output buffer reused across packets.
    let mut engine = geneva::Engine::new(strategy.clone(), 0xBE9C);
    let mut out: Vec<Packet> = Vec::new();
    let mut sink = 0usize;
    for pkt in &server_pkts {
        out.clear();
        engine.apply_outbound_into(pkt, &mut out);
    }
    let a0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..reps {
        for pkt in &server_pkts {
            out.clear();
            engine.apply_outbound_into(pkt, &mut out);
            sink += out.len();
        }
    }
    let interp_pps = applications / t0.elapsed().as_secs_f64().max(1e-9);
    let interp_allocs = allocs_json(allocs_now() - a0, applications);

    // Per-packet compiled path, out + scratch reused across packets.
    let program = Program::compile(&strategy).expect("library strategy verifies");
    let (mut out, mut scratch) = (Vec::new(), Vec::new());
    for pkt in &server_pkts {
        out.clear();
        program.apply_outbound(pkt, 0xBE9C, &mut out, &mut scratch);
    }
    let a0 = allocs_now();
    let t0 = Instant::now();
    for _ in 0..reps {
        for pkt in &server_pkts {
            out.clear();
            program.apply_outbound(pkt, 0xBE9C, &mut out, &mut scratch);
            sink += out.len();
        }
    }
    let compiled_pps = applications / t0.elapsed().as_secs_f64().max(1e-9);
    let compiled_allocs = allocs_json(allocs_now() - a0, applications);
    assert!(sink > 0, "hotpath bench produced no packets");

    // Steady-state data plane forward path: the first pump admits the
    // flows and sizes every per-shard buffer; the second pump over the
    // same packets is what a long-lived deployment looks like, and is
    // the region the allocs-per-packet budget applies to.
    let mut dplane_runs = Vec::new();
    for shards in [1usize, 2, 8] {
        let cfg = DplaneConfig {
            flow: FlowConfig {
                shards,
                ..FlowConfig::default()
            },
            seed: SeedMode::PerFlow(0x0D1A),
            unchecked: false,
        };
        let mut dp = Dplane::new(cfg, geo_classifier());
        let mut warmup = PcapReplay::from_packets(workload.clone());
        dp.pump(&mut warmup, SERVER_ADDR);
        // One pump is ~640 packets (~0.1 ms) — far too short to time;
        // replaying it many times makes the measured region long enough
        // that scheduler noise stops dominating. Replay construction
        // (the workload clone) happens outside the measured region.
        let pump_reps = 50u32;
        let mut replays: Vec<PcapReplay> = (0..pump_reps)
            .map(|_| PcapReplay::from_packets(workload.clone()))
            .collect();
        let mut n = 0u64;
        let a0 = allocs_now();
        let t0 = Instant::now();
        for replay in &mut replays {
            n += dp.pump(replay, SERVER_ADDR);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let allocs_per_packet = allocs_json(allocs_now() - a0, n as f64);
        dplane_runs.push(format!(
            "{{\"shards\":{shards},\"packets\":{n},\"pps\":{:.0},\"allocs_per_packet\":{allocs_per_packet}}}",
            n as f64 / secs
        ));
    }

    // Threaded compiled path: one run-to-completion pump over the
    // workload repeated 50× (timestamps advanced per round), so worker
    // spawn, ring setup, and flow-table sizing amortize to noise and
    // the allocs-per-packet number reflects the steady-state packet
    // path — recycled batch buffers, COW payloads, staged emissions
    // moved (never cloned). Emissions land in a `VecIo` so the number
    // measures the plane, not pcap serialization.
    let rounds = 50u64;
    let span = workload.last().map_or(0, |(t, _)| t + 10);
    let mut repeated = Vec::with_capacity(workload.len() * 50);
    for round in 0..rounds {
        for (t, pkt) in &workload {
            repeated.push((round * span + t, pkt.clone()));
        }
    }
    let mut threaded_runs = Vec::new();
    for workers in [1usize, 2, 8] {
        let cfg = DplaneConfig {
            flow: FlowConfig::default(),
            seed: SeedMode::PerFlow(0x0D1A),
            unchecked: false,
        };
        let mut io = VecIo::new(repeated.clone());
        let a0 = allocs_now();
        let t0 = Instant::now();
        let (n, _report) = pump_threaded(
            &mut io,
            SERVER_ADDR,
            cfg,
            ThreadedConfig {
                workers,
                ..ThreadedConfig::default()
            },
            |_| geo_classifier(),
        );
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let allocs_per_packet = allocs_json(allocs_now() - a0, n as f64);
        threaded_runs.push(format!(
            "{{\"workers\":{workers},\"packets\":{n},\"pps\":{:.0},\"allocs_per_packet\":{allocs_per_packet}}}",
            n as f64 / secs
        ));
    }

    // Full trials through the pool at 1/2/8 jobs.
    let cfg = TrialConfig::new(
        Country::China,
        AppProtocol::Http,
        geneva::library::STRATEGY_1.strategy(),
        0,
    );
    let tag = harness::cell_tag("bench/hotpath");
    // 2000 trials keeps the one-off per-worker scratch-arena setup
    // (~7 extra arenas at jobs=8) safely inside the count-allocs CI
    // epsilon of 0.25 allocs/trial.
    let pool_trials = 2000u32;
    let mut pool_runs = Vec::new();
    for jobs in [1usize, 2, 8] {
        let pool = harness::Pool::with_jobs(jobs);
        harness::success_rate_in(&pool, &cfg, 64, 0x407A, tag);
        let a0 = allocs_now();
        let t0 = Instant::now();
        harness::success_rate_in(&pool, &cfg, pool_trials, 0x407A, tag);
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        let allocs_per_trial = allocs_json(allocs_now() - a0, f64::from(pool_trials));
        pool_runs.push(format!(
            "{{\"jobs\":{jobs},\"trials\":{pool_trials},\"trials_per_sec\":{:.0},\"allocs_per_trial\":{allocs_per_trial}}}",
            f64::from(pool_trials) / secs
        ));
    }

    format!(
        "{{\"bench\":\"hotpath\",\"count_allocs\":{},\"per_packet\":{{\"applications\":{:.0},\"interp_pps\":{:.0},\"interp_allocs_per_packet\":{},\"compiled_pps\":{:.0},\"compiled_allocs_per_packet\":{}}},\"dplane\":[{}],\"threaded\":[{}],\"pool\":[{}]}}\n",
        bench::alloc_count().is_some(),
        applications,
        interp_pps,
        interp_allocs,
        compiled_pps,
        compiled_allocs,
        dplane_runs.join(","),
        threaded_runs.join(","),
        pool_runs.join(","),
    )
}
