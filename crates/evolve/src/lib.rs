//! # evolve — Geneva's genetic algorithm, server-side
//!
//! The paper's methodology (§4.1): initialize a population of ~300
//! packet-manipulation strategies, evaluate each against the (real,
//! for them; modeled, for us) censor, and evolve for up to 50
//! generations or until convergence. Server-side runs are restricted
//! to triggering on the SYN+ACK — the only packet a server sends
//! before a censorship event for DNS/HTTP/HTTPS/SMTP.
//!
//! * [`genome`] — random strategy construction, mutation, and subtree
//!   crossover over the `geneva` AST;
//! * [`fitness`] — simulated success rate minus a parsimony penalty,
//!   with caching keyed by the canonical DSL text;
//! * [`evolution`] — tournament selection, elitism, convergence.
//!
//! Everything is seeded and deterministic, like the rest of the
//! workspace.

#![forbid(unsafe_code)]

pub mod evolution;
pub mod fitness;
pub mod genome;
pub mod minimize;

pub use evolution::{evolve, EvolutionResult, GaConfig};
pub use fitness::{FitnessCache, FitnessEval};
pub use genome::Genome;
pub use minimize::minimize;
