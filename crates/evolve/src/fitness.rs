//! Fitness: simulated evasion success minus parsimony pressure.
//!
//! Geneva's fitness rewards strategies that evade while staying small
//! (bloated trees mutate poorly and deploy expensively). We evaluate
//! against the censor models through the same `harness::run_trial`
//! pipeline every other experiment uses, and cache evaluations by the
//! genome's canonical DSL text — populations converge, so late
//! generations are mostly cache hits.

use crate::genome::Genome;
use appproto::AppProtocol;
use censor::Country;
use harness::{run_trial, TrialConfig};
use std::collections::HashMap;

/// One genome's evaluated fitness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessEval {
    /// Evasion successes.
    pub successes: u32,
    /// Trials run.
    pub trials: u32,
    /// Combined fitness (higher is better).
    pub fitness: f64,
}

impl FitnessEval {
    /// Evasion rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.trials)
        }
    }
}

/// Caching fitness evaluator for one (country, protocol) target.
pub struct FitnessCache {
    /// Censor under attack.
    pub country: Country,
    /// Protocol under attack.
    pub protocol: AppProtocol,
    /// Trials per evaluation.
    pub trials: u32,
    /// Per-node-count penalty subtracted from the percent success.
    pub complexity_penalty: f64,
    seed: u64,
    cache: HashMap<String, FitnessEval>,
    /// Total simulated trials spent (diagnostics).
    pub trials_spent: u64,
}

impl FitnessCache {
    /// New evaluator.
    pub fn new(country: Country, protocol: AppProtocol, trials: u32, seed: u64) -> Self {
        FitnessCache {
            country,
            protocol,
            trials,
            complexity_penalty: 0.6,
            seed,
            cache: HashMap::new(),
            trials_spent: 0,
        }
    }

    /// Evaluate (or recall) a genome's fitness.
    pub fn evaluate(&mut self, genome: &Genome) -> FitnessEval {
        let key = genome.strategy.to_string();
        if let Some(hit) = self.cache.get(&key) {
            return *hit;
        }
        let mut successes = 0;
        for i in 0..self.trials {
            let mut cfg = TrialConfig::new(
                self.country,
                self.protocol,
                genome.strategy.clone(),
                self.seed ^ (u64::from(i) * 104_729),
            );
            cfg.seed ^= fxhash(&key); // decorrelate equal-seed genomes
            if run_trial(&cfg).evaded() {
                successes += 1;
            }
        }
        self.trials_spent += u64::from(self.trials);
        let rate = f64::from(successes) / f64::from(self.trials.max(1));
        let eval = FitnessEval {
            successes,
            trials: self.trials,
            fitness: rate * 100.0 - self.complexity_penalty * genome.size() as f64,
        };
        self.cache.insert(key, eval);
        eval
    }

    /// Number of distinct genomes evaluated.
    pub fn distinct_evaluated(&self) -> usize {
        self.cache.len()
    }
}

/// Tiny deterministic string hash (FxHash-style) for seed derivation.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use geneva::library;

    #[test]
    fn identity_strategy_scores_near_baseline() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 20, 7);
        let genome = Genome::from_action(geneva::Action::Send);
        let eval = cache.evaluate(&genome);
        assert!(eval.rate() < 0.2, "no-evasion rate {}", eval.rate());
    }

    #[test]
    fn known_good_strategy_scores_high() {
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 10, 7);
        let genome = Genome {
            strategy: library::STRATEGY_11.strategy(),
        };
        let eval = cache.evaluate(&genome);
        assert!(eval.rate() > 0.9, "strategy 11 rate {}", eval.rate());
        assert!(eval.fitness > 90.0 - 5.0);
    }

    #[test]
    fn cache_hits_are_free_and_stable() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 5, 7);
        let genome = Genome {
            strategy: library::STRATEGY_1.strategy(),
        };
        let first = cache.evaluate(&genome);
        let spent = cache.trials_spent;
        let second = cache.evaluate(&genome);
        assert_eq!(first, second);
        assert_eq!(cache.trials_spent, spent, "second call must be cached");
        assert_eq!(cache.distinct_evaluated(), 1);
    }

    #[test]
    fn complexity_penalty_separates_equal_rates() {
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 8, 7);
        let small = Genome {
            strategy: library::STRATEGY_11.strategy(),
        };
        // Same behavior plus dead weight: an extra inert tamper.
        let bloated = Genome {
            strategy: geneva::parse_strategy(
                "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},tamper{TCP:urgptr:replace:7})-| \\/ ",
            )
            .unwrap(),
        };
        let a = cache.evaluate(&small);
        let b = cache.evaluate(&bloated);
        assert!(a.fitness > b.fitness, "{} !> {}", a.fitness, b.fitness);
    }
}
