//! Fitness: simulated evasion success minus parsimony pressure.
//!
//! Geneva's fitness rewards strategies that evade while staying small
//! (bloated trees mutate poorly and deploy expensively). We evaluate
//! against the censor models through the same `harness::run_trial`
//! pipeline every other experiment uses, and memoize evaluations.
//!
//! Two layers of simulator-time savings, both powered by `strata`:
//!
//! * **Equivalence dedup** — the memo keys on the *canonical* form of
//!   a genome ([`strata::canonicalize_strategy`]), so genomes that
//!   differ only in dead genetic material (inert subtrees, shadowed
//!   tampers, no-op chains) share one evaluation. Trial seeds also
//!   derive from the canonical text, which keeps per-genome fitness
//!   identical whether dedup is on or off — dedup can only *save*
//!   trials, never change the GA's trajectory.
//! * **Static futility gate** — genomes whose lints prove they can
//!   never beat the identity strategy (e.g. they sever the handshake)
//!   are assigned their exact fitness (zero successes) without
//!   simulating a single trial.
//! * **Per-censor inertness gate** — genomes the censor-product model
//!   checker ([`strata::censor_model`]) proves `ProvablyInert` against
//!   *this* cache's censor (the censor's view of the flow provably
//!   equals the identity strategy's) are likewise assigned zero
//!   successes for free. The proof implies exactly what simulation
//!   would measure, so the GA trajectory is unchanged — only trials
//!   are saved. Never applies to the stochastic GFW.
//!
//! Raw trial outcomes are cached; the parsimony penalty is applied
//! per-genome from its own (uncanonicalized) size, so a bloated
//! genome still scores below its trim twin even when they share a
//! cache entry.

use crate::genome::Genome;
use appproto::AppProtocol;
use censor::Country;
use harness::{cell_tag, derive_trial_seed, pool, run_trial, Pool, TrialConfig};
use std::collections::HashMap;
use std::sync::Arc;
use strata::censor_model::{check, CensorId, Verdict};
use strata::{canonicalize_strategy, lint_with_context, summarize, LintContext, Severity};

/// The censor automaton guarding a country's traffic.
fn censor_of(country: Country) -> CensorId {
    match country {
        Country::China => CensorId::Gfw,
        Country::India => CensorId::Airtel,
        Country::Iran => CensorId::Iran,
        Country::Kazakhstan => CensorId::Kazakhstan,
    }
}

/// One genome's evaluated fitness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitnessEval {
    /// Evasion successes.
    pub successes: u32,
    /// Trials run.
    pub trials: u32,
    /// Combined fitness (higher is better).
    pub fitness: f64,
}

impl FitnessEval {
    /// Evasion rate in [0, 1].
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.trials)
        }
    }
}

/// How the fitness memo keys genomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKeying {
    /// Key on the genome's literal DSL text (pre-`strata` behavior):
    /// equivalent-but-differently-written genomes are re-simulated.
    Text,
    /// Key on the canonical form: semantically equivalent genomes
    /// share one evaluation.
    Canonical,
}

/// Caching fitness evaluator for one (country, protocol) target.
pub struct FitnessCache {
    /// Censor under attack.
    pub country: Country,
    /// Protocol under attack.
    pub protocol: AppProtocol,
    /// Trials per evaluation.
    pub trials: u32,
    /// Per-node-count penalty subtracted from the percent success.
    pub complexity_penalty: f64,
    /// Memo keying mode.
    pub keying: CacheKeying,
    /// Skip simulation for provably futile genomes.
    pub static_gate: bool,
    /// Skip simulation for genomes the censor model checker proves
    /// inert against this target's censor.
    pub censor_gate: bool,
    /// Which censor automaton guards this target, when the target
    /// protocol is actually censored there (otherwise every genome
    /// trivially "evades" and inertness proves nothing).
    prefilter: Option<CensorId>,
    seed: u64,
    jobs: Option<usize>,
    cache: HashMap<String, (u32, u32)>,
    lint_ctx: LintContext,
    /// Total simulated trials spent (diagnostics).
    pub trials_spent: u64,
    /// Trials that hit the simulator's event cap instead of finishing
    /// — a nonzero count means some fitness value is an artifact of
    /// the livelock guard, not a measured rate.
    pub truncated_trials: u64,
    /// Evaluations answered from the memo.
    pub cache_hits: u64,
    /// Evaluations that had to simulate (or statically reject).
    pub cache_misses: u64,
    /// Evaluations skipped entirely because lints proved futility.
    pub static_rejects: u64,
    /// Evaluations skipped because the censor model proved the genome
    /// inert against this target's censor.
    pub censor_static_rejects: u64,
}

/// Simulate one memo key's trials. Seeds derive from the *canonical*
/// text via the harness's central splitmix64 mixer — the same formula
/// on the serial and parallel paths, so a genome's outcome never
/// depends on which path (or worker) evaluated it. Returns
/// `(successes, truncated)`.
fn simulate_key(
    country: Country,
    protocol: AppProtocol,
    trials: u32,
    base_seed: u64,
    strategy: Arc<geneva::Strategy>,
    canonical_text: &str,
) -> (u32, u32) {
    let tag = cell_tag(canonical_text);
    // One config, re-seeded per trial: the strategy tree is shared via
    // the `Arc`, never deep-cloned in this hot loop.
    let mut cfg = TrialConfig::new(country, protocol, strategy, 0);
    let mut successes = 0;
    let mut truncated = 0;
    for i in 0..trials {
        cfg.seed = derive_trial_seed(base_seed, tag, i);
        let result = run_trial(&cfg);
        if result.evaded() {
            successes += 1;
        }
        if result.truncated {
            truncated += 1;
        }
    }
    pool::record_trials(u64::from(trials));
    (successes, truncated)
}

impl FitnessCache {
    /// New evaluator with canonical dedup and the futility gate on.
    pub fn new(country: Country, protocol: AppProtocol, trials: u32, seed: u64) -> Self {
        FitnessCache {
            country,
            protocol,
            trials,
            complexity_penalty: 0.6,
            keying: CacheKeying::Canonical,
            static_gate: true,
            censor_gate: true,
            prefilter: country
                .censored_protocols()
                .contains(&protocol)
                .then(|| censor_of(country)),
            seed,
            jobs: None,
            cache: HashMap::new(),
            // TCP-liveness futility proofs only apply when the target
            // exchange actually rides TCP.
            lint_ctx: LintContext {
                tcp_exchange: protocol.transport_is_tcp(),
                ..LintContext::default()
            },
            trials_spent: 0,
            truncated_trials: 0,
            cache_hits: 0,
            cache_misses: 0,
            static_rejects: 0,
            censor_static_rejects: 0,
        }
    }

    /// Is this canonical strategy provably inert against the target's
    /// censor? The model checker's `ProvablyInert` verdict means the
    /// censor's view of the flow equals the identity strategy's —
    /// deterministic censors (the checker never claims anything
    /// against the stochastic GFW) therefore censor every trial, so
    /// `(0, trials)` is the exact outcome simulation would record.
    fn provably_inert(&self, canonical: &geneva::Strategy) -> bool {
        self.censor_gate
            && self
                .prefilter
                .is_some_and(|id| check(&summarize(canonical), id) == Verdict::ProvablyInert)
    }

    /// Same evaluator, keyed on literal text (for A/B comparison).
    pub fn with_keying(mut self, keying: CacheKeying) -> Self {
        self.keying = keying;
        self
    }

    /// Pin the worker count used by [`evaluate_population`] instead of
    /// the process-wide default (tests compare explicit counts).
    ///
    /// [`evaluate_population`]: FitnessCache::evaluate_population
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    fn pool(&self) -> Pool {
        match self.jobs {
            Some(n) => Pool::with_jobs(n),
            None => Pool::global(),
        }
    }

    /// Evaluate (or recall) a genome's fitness.
    pub fn evaluate(&mut self, genome: &Genome) -> FitnessEval {
        let canonical = canonicalize_strategy(&genome.strategy);
        let canonical_text = canonical.to_string();
        let key = match self.keying {
            CacheKeying::Text => genome.strategy.to_string(),
            CacheKeying::Canonical => canonical_text.clone(),
        };
        if let Some(&(successes, trials)) = self.cache.get(&key) {
            self.cache_hits += 1;
            return self.eval_from(successes, trials, genome);
        }
        self.cache_misses += 1;

        let futile = self.static_gate && {
            lint_with_context(&canonical, &self.lint_ctx)
                .iter()
                .any(|d| d.severity == Severity::Error && d.proves_futile)
        };
        let (successes, trials) = if futile {
            // The lints prove no trial can succeed; record the exact
            // outcome simulation would have produced, for free.
            self.static_rejects += 1;
            (0, self.trials)
        } else if self.provably_inert(&canonical) {
            // The censor model proves the censor sees an identity
            // flow: zero successes, no simulation needed.
            self.censor_static_rejects += 1;
            (0, self.trials)
        } else {
            let (successes, truncated) = simulate_key(
                self.country,
                self.protocol,
                self.trials,
                self.seed,
                Arc::new(genome.strategy.clone()),
                &canonical_text,
            );
            self.trials_spent += u64::from(self.trials);
            self.truncated_trials += u64::from(truncated);
            (successes, self.trials)
        };
        self.cache.insert(key, (successes, trials));
        self.eval_from(successes, trials, genome)
    }

    /// Evaluate a whole generation at once: unique uncached keys fan
    /// out across the pool, everything else is served from the memo.
    ///
    /// Bit-identical to calling [`evaluate`] on each genome in order,
    /// for any worker count: per-key trial seeds come from the same
    /// canonical-text derivation, hit/miss/reject counters replicate
    /// the serial accounting (first occurrence of a key is the miss,
    /// the rest are hits), and results merge into the memo in
    /// canonical-key order rather than completion order.
    ///
    /// [`evaluate`]: FitnessCache::evaluate
    pub fn evaluate_population(&mut self, genomes: &[Genome]) -> Vec<FitnessEval> {
        struct PendingKey {
            key: String,
            canonical_text: String,
            strategy: Arc<geneva::Strategy>,
        }

        // Pass 1 (serial, cheap): canonicalize, run the static gate,
        // and collect the unique keys that actually need simulation.
        let mut per_genome_keys = Vec::with_capacity(genomes.len());
        let mut pending: Vec<PendingKey> = Vec::new();
        let mut pending_keys: HashMap<String, ()> = HashMap::new();
        for genome in genomes {
            let canonical = canonicalize_strategy(&genome.strategy);
            let canonical_text = canonical.to_string();
            let key = match self.keying {
                CacheKeying::Text => genome.strategy.to_string(),
                CacheKeying::Canonical => canonical_text.clone(),
            };
            if self.cache.contains_key(&key) || pending_keys.contains_key(&key) {
                self.cache_hits += 1;
            } else {
                self.cache_misses += 1;
                let futile = self.static_gate && {
                    lint_with_context(&canonical, &self.lint_ctx)
                        .iter()
                        .any(|d| d.severity == Severity::Error && d.proves_futile)
                };
                if futile {
                    self.static_rejects += 1;
                    self.cache.insert(key.clone(), (0, self.trials));
                } else if self.provably_inert(&canonical) {
                    self.censor_static_rejects += 1;
                    self.cache.insert(key.clone(), (0, self.trials));
                } else {
                    pending_keys.insert(key.clone(), ());
                    pending.push(PendingKey {
                        key: key.clone(),
                        canonical_text,
                        strategy: Arc::new(genome.strategy.clone()),
                    });
                }
            }
            per_genome_keys.push(key);
        }

        // Pass 2: simulate the unique missing keys concurrently. Each
        // key is a pure function of (target, trials, seed, canonical
        // text) — worker scheduling cannot touch the outcome.
        let (country, protocol, trials, base_seed) =
            (self.country, self.protocol, self.trials, self.seed);
        let results = self.pool().map_indexed(pending.len(), |i| {
            let p = &pending[i];
            simulate_key(
                country,
                protocol,
                trials,
                base_seed,
                Arc::clone(&p.strategy),
                &p.canonical_text,
            )
        });

        // Pass 3: merge into the memo in canonical-key order, so the
        // memo (and the counters) grow identically no matter which
        // worker finished first.
        let mut merged: Vec<(&PendingKey, (u32, u32))> = pending.iter().zip(results).collect();
        merged.sort_by(|a, b| a.0.key.cmp(&b.0.key));
        for (p, (successes, truncated)) in merged {
            self.trials_spent += u64::from(self.trials);
            self.truncated_trials += u64::from(truncated);
            self.cache.insert(p.key.clone(), (successes, self.trials));
        }

        // Pass 4: score every genome from the now-complete memo.
        genomes
            .iter()
            .zip(per_genome_keys)
            .map(|(genome, key)| {
                let &(successes, trials) = self.cache.get(&key).expect("merged above");
                self.eval_from(successes, trials, genome)
            })
            .collect()
    }

    fn eval_from(&self, successes: u32, trials: u32, genome: &Genome) -> FitnessEval {
        let rate = f64::from(successes) / f64::from(trials.max(1));
        FitnessEval {
            successes,
            trials,
            fitness: rate * 100.0 - self.complexity_penalty * genome.size() as f64,
        }
    }

    /// Number of distinct cache keys evaluated (canonical equivalence
    /// classes under [`CacheKeying::Canonical`]).
    pub fn distinct_evaluated(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use geneva::library;

    #[test]
    fn identity_strategy_scores_near_baseline() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 20, 7);
        let genome = Genome::from_action(geneva::Action::Send);
        let eval = cache.evaluate(&genome);
        assert!(eval.rate() < 0.2, "no-evasion rate {}", eval.rate());
    }

    #[test]
    fn known_good_strategy_scores_high() {
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 10, 7);
        let genome = Genome {
            strategy: library::STRATEGY_11.strategy(),
        };
        let eval = cache.evaluate(&genome);
        assert!(eval.rate() > 0.9, "strategy 11 rate {}", eval.rate());
        assert!(eval.fitness > 90.0 - 5.0);
    }

    #[test]
    fn cache_hits_are_free_and_stable() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 5, 7);
        let genome = Genome {
            strategy: library::STRATEGY_1.strategy(),
        };
        let first = cache.evaluate(&genome);
        let spent = cache.trials_spent;
        let second = cache.evaluate(&genome);
        assert_eq!(first, second);
        assert_eq!(cache.trials_spent, spent, "second call must be cached");
        assert_eq!(cache.distinct_evaluated(), 1);
        assert_eq!(cache.cache_hits, 1);
        assert_eq!(cache.cache_misses, 1);
    }

    #[test]
    fn equivalent_genomes_share_one_evaluation() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 5, 7);
        let trim = Genome {
            strategy: library::STRATEGY_1.strategy(),
        };
        // Strategy 1 plus dead genetic material: an inert duplicate
        // branch that canonicalizes away.
        let bloated_text = trim
            .strategy
            .to_string()
            .replace("-| \\/ ", "-|[TCP:flags:SA]-drop-| \\/ ");
        let bloated = Genome {
            strategy: geneva::parse_strategy(&bloated_text).expect("parses"),
        };
        let a = cache.evaluate(&trim);
        let spent = cache.trials_spent;
        let b = cache.evaluate(&bloated);
        assert_eq!(
            cache.trials_spent, spent,
            "equivalent genome must be a cache hit"
        );
        assert_eq!(cache.cache_hits, 1);
        assert_eq!(a.successes, b.successes, "shared trial outcome");
        assert!(a.fitness > b.fitness, "parsimony still separates them");
    }

    #[test]
    fn text_keying_resimulates_equivalent_genomes() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 5, 7)
            .with_keying(CacheKeying::Text);
        let trim = Genome {
            strategy: library::STRATEGY_1.strategy(),
        };
        let bloated_text = trim
            .strategy
            .to_string()
            .replace("-| \\/ ", "-|[TCP:flags:SA]-drop-| \\/ ");
        let bloated = Genome {
            strategy: geneva::parse_strategy(&bloated_text).expect("parses"),
        };
        let a = cache.evaluate(&trim);
        let b = cache.evaluate(&bloated);
        assert_eq!(cache.cache_misses, 2);
        // Canonical-text seeding makes the re-simulation land on the
        // very same trial outcomes.
        assert_eq!(a.successes, b.successes);
    }

    #[test]
    fn statically_futile_genomes_skip_simulation() {
        let mut cache = FitnessCache::new(Country::China, AppProtocol::Http, 8, 7);
        let severed = Genome {
            strategy: geneva::parse_strategy("[TCP:flags:SA]-drop-| \\/ ").expect("parses"),
        };
        let eval = cache.evaluate(&severed);
        assert_eq!(
            cache.trials_spent, 0,
            "no simulator time for futile genomes"
        );
        assert_eq!(cache.static_rejects, 1);
        assert_eq!(eval.successes, 0);
        assert!(eval.fitness < 0.0, "only the parsimony penalty remains");
    }

    #[test]
    fn provably_inert_genomes_skip_simulation_without_changing_scores() {
        // Against deterministic Kazakhstan, the censor model proves
        // identity-equivalent genomes inert; the gate must hand back
        // the exact evaluation simulation would produce, minus the
        // simulator time.
        let genomes = [
            Genome::from_action(geneva::Action::Send),
            // Pure duplication: both copies are identity emissions.
            Genome {
                strategy: geneva::parse_strategy("[TCP:flags:A]-duplicate(,)-| \\/ ").unwrap(),
            },
            // Null flags (Strategy 11): provably *desynced*, not inert
            // — must still simulate.
            Genome {
                strategy: library::STRATEGY_11.strategy(),
            },
            // Window tamper (Strategy 8 shape): Unknown — must still
            // simulate.
            Genome {
                strategy: library::STRATEGY_8.strategy(),
            },
        ];

        let mut gated = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 6, 13);
        let mut ungated = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 6, 13);
        ungated.censor_gate = false;

        let gated_evals: Vec<FitnessEval> = genomes.iter().map(|g| gated.evaluate(g)).collect();
        let ungated_evals: Vec<FitnessEval> = genomes.iter().map(|g| ungated.evaluate(g)).collect();

        assert_eq!(gated_evals, ungated_evals, "gate must not move fitness");
        assert_eq!(gated.censor_static_rejects, 2, "identity + duplicate");
        assert_eq!(ungated.censor_static_rejects, 0);
        assert!(
            gated.trials_spent < ungated.trials_spent,
            "gate must save simulator time: {} !< {}",
            gated.trials_spent,
            ungated.trials_spent
        );
    }

    #[test]
    fn censor_gate_is_idle_when_the_protocol_is_not_censored() {
        // Kazakhstan's model censors HTTP only: an HTTPS identity flow
        // evades trivially, so inertness proves nothing and the
        // prefilter must stand down.
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Https, 4, 13);
        let eval = cache.evaluate(&Genome::from_action(geneva::Action::Send));
        assert_eq!(cache.censor_static_rejects, 0);
        assert!(eval.rate() > 0.9, "uncensored protocol sails through");
    }

    #[test]
    fn population_evaluation_matches_serial_for_any_worker_count() {
        // A population with a duplicate, a canonical twin, and a
        // statically futile genome — every memo path exercised.
        let bloated_text = library::STRATEGY_1
            .strategy()
            .to_string()
            .replace("-| \\/ ", "-|[TCP:flags:SA]-drop-| \\/ ");
        let genomes = vec![
            Genome {
                strategy: library::STRATEGY_1.strategy(),
            },
            Genome {
                strategy: library::STRATEGY_11.strategy(),
            },
            Genome {
                strategy: library::STRATEGY_1.strategy(),
            },
            Genome {
                strategy: geneva::parse_strategy(&bloated_text).expect("parses"),
            },
            Genome {
                strategy: geneva::parse_strategy("[TCP:flags:SA]-drop-| \\/ ").expect("parses"),
            },
        ];

        let mut serial = FitnessCache::new(Country::China, AppProtocol::Http, 6, 99);
        let serial_evals: Vec<FitnessEval> = genomes.iter().map(|g| serial.evaluate(g)).collect();

        for jobs in [1, 2, 8] {
            let mut cache =
                FitnessCache::new(Country::China, AppProtocol::Http, 6, 99).with_jobs(jobs);
            let evals = cache.evaluate_population(&genomes);
            assert_eq!(evals, serial_evals, "jobs={jobs}");
            assert_eq!(cache.cache_hits, serial.cache_hits, "jobs={jobs}");
            assert_eq!(cache.cache_misses, serial.cache_misses, "jobs={jobs}");
            assert_eq!(cache.static_rejects, serial.static_rejects, "jobs={jobs}");
            assert_eq!(
                cache.censor_static_rejects, serial.censor_static_rejects,
                "jobs={jobs}"
            );
            assert_eq!(cache.trials_spent, serial.trials_spent, "jobs={jobs}");
            assert_eq!(
                cache.truncated_trials, serial.truncated_trials,
                "jobs={jobs}"
            );
            assert_eq!(
                cache.distinct_evaluated(),
                serial.distinct_evaluated(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn complexity_penalty_separates_equal_rates() {
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 8, 7);
        let small = Genome {
            strategy: library::STRATEGY_11.strategy(),
        };
        // Same behavior plus dead weight: an extra inert tamper.
        let bloated = Genome {
            strategy: geneva::parse_strategy(
                "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},tamper{TCP:urgptr:replace:7})-| \\/ ",
            )
            .unwrap(),
        };
        let a = cache.evaluate(&small);
        let b = cache.evaluate(&bloated);
        assert!(a.fitness > b.fitness, "{} !> {}", a.fitness, b.fitness);
    }
}
