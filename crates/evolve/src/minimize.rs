//! Strategy minimization: prune vestigial nodes from a winning genome.
//!
//! Evolved strategies routinely carry dead weight — inert tampers,
//! duplicate branches that change nothing. Geneva prunes these before
//! reporting a species; we do the same with a greedy shrink loop: try
//! splicing out each node, keep any cut that doesn't lose measurable
//! fitness, repeat until no cut survives.

use crate::fitness::FitnessCache;
use crate::genome::Genome;

/// Greedily minimize `genome` against `cache`'s target. Returns the
/// smallest genome whose measured success rate stays within
/// `tolerance` of the original's.
pub fn minimize(genome: &Genome, cache: &mut FitnessCache, tolerance: f64) -> Genome {
    let mut current = genome.clone();
    let mut current_rate = cache.evaluate(&current).rate();
    loop {
        let mut improved = false;
        for n in 0..current.size() {
            let candidate = current.shrunk_at(n);
            if candidate.size() >= current.size() {
                continue; // leaf: nothing removed
            }
            let rate = cache.evaluate(&candidate).rate();
            if rate + tolerance >= current_rate {
                current = candidate;
                current_rate = current_rate.max(rate);
                improved = true;
                break; // restart the scan on the smaller tree
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use appproto::AppProtocol;
    use censor::Country;
    use geneva::parse_strategy;

    #[test]
    fn prunes_dead_weight_from_a_bloated_strategy() {
        // Strategy 11 (null flags) plus two inert tampers bolted on.
        let bloated = Genome {
            strategy: parse_strategy(
                "[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:}(tamper{TCP:urgptr:replace:7},),tamper{TCP:options-mss:replace:1400})-| \\/ ",
            )
            .unwrap(),
        };
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 8, 7);
        let before = cache.evaluate(&bloated);
        assert!(before.rate() > 0.9, "bloated variant still works");
        let minimized = minimize(&bloated, &mut cache, 0.01);
        assert!(
            minimized.size() < bloated.size(),
            "minimization removed nothing: {} vs {}",
            minimized.strategy,
            bloated.strategy
        );
        let after = cache.evaluate(&minimized);
        assert!(after.rate() > 0.9, "minimization must not lose efficacy");
        // The null-flags tamper is the load-bearing node; it survives.
        assert!(
            minimized
                .strategy
                .to_string()
                .contains("tamper{TCP:flags:replace:}"),
            "{}",
            minimized.strategy
        );
    }

    #[test]
    fn minimal_strategies_are_fixed_points() {
        let minimal = Genome {
            strategy: geneva::library::STRATEGY_11.strategy(),
        };
        let mut cache = FitnessCache::new(Country::Kazakhstan, AppProtocol::Http, 6, 7);
        let out = minimize(&minimal, &mut cache, 0.01);
        // May shave the duplicate into something equally small, but can
        // never grow, and must keep working.
        assert!(out.size() <= minimal.size());
        assert!(cache.evaluate(&out).rate() > 0.9);
    }
}
