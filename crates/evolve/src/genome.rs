//! Strategy genomes: random construction, mutation, crossover.
//!
//! A genome is a full [`geneva::Strategy`] whose single outbound
//! trigger is fixed to `TCP:flags:SA` (the paper's server-side
//! restriction, §4.1). Genetic operators work on the action tree:
//!
//! * **grow** — replace a random leaf with a fresh random subtree;
//! * **shrink** — replace a random internal node with one child;
//! * **point-mutate** — rewrite a tamper's field/mode/value;
//! * **crossover** — swap random subtrees between two parents.

use geneva::ast::{Action, Strategy, StrategyPart, TamperMode, Trigger};
use packet::field::{FieldRef, FieldValue};
use rand::rngs::StdRng;
use rand::Rng;

/// A candidate strategy with its genetic bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Genome {
    /// The strategy (single outbound SYN+ACK trigger).
    pub strategy: Strategy,
}

/// Tamperable fields the GA mutates over, weighted toward the ones
/// that matter at handshake time.
const FIELD_POOL: &[&str] = &[
    "TCP:flags",
    "TCP:flags",
    "TCP:flags",
    "TCP:ack",
    "TCP:ack",
    "TCP:seq",
    "TCP:load",
    "TCP:load",
    "TCP:window",
    "TCP:chksum",
    "TCP:urgptr",
    "TCP:dataofs",
    "TCP:options-wscale",
    "TCP:options-mss",
    "IP:ttl",
];

/// Interesting flag-replacement values (Geneva letter strings).
const FLAG_VALUES: &[&str] = &["", "S", "R", "RA", "F", "FA", "A", "SA", "PA", "FRAP"];

/// Trigger flag values the GA may explore when trigger evolution is
/// enabled (§4.1: only FTP leaves the server more than a SYN+ACK to
/// trigger on — its banner and replies are `PA`/`A` packets).
const TRIGGER_VALUES: &[&str] = &["SA", "A", "PA", "FA"];

fn random_value(field: &FieldRef, rng: &mut StdRng) -> FieldValue {
    match field.name.as_str() {
        "flags" => {
            let letters = FLAG_VALUES[rng.gen_range(0..FLAG_VALUES.len())];
            if letters.is_empty() {
                // Canonical form: an empty replacement serializes as
                // `replace:` and parses back as Empty.
                FieldValue::Empty
            } else {
                FieldValue::Str(letters.to_string())
            }
        }
        "window" => FieldValue::Num([0u64, 1, 2, 10, 64, 1000][rng.gen_range(0usize..6)]),
        "ttl" => FieldValue::Num(rng.gen_range(1..16)),
        "load" => {
            if rng.gen_bool(0.5) {
                FieldValue::Str("GET / HTTP1.".to_string())
            } else {
                FieldValue::Empty
            }
        }
        "options-wscale" | "options-mss" => {
            if rng.gen_bool(0.6) {
                FieldValue::Empty
            } else {
                FieldValue::Num(rng.gen_range(0..15))
            }
        }
        "dataofs" => FieldValue::Num(rng.gen_range(5..16)),
        _ => FieldValue::Num(u64::from(rng.gen::<u16>())),
    }
}

fn random_tamper(rng: &mut StdRng, next: Action) -> Action {
    let field = FieldRef::parse(FIELD_POOL[rng.gen_range(0..FIELD_POOL.len())])
        .expect("pool entries are valid");
    let mode = if rng.gen_bool(0.45) {
        TamperMode::Corrupt
    } else {
        TamperMode::Replace(random_value(&field, rng))
    };
    Action::Tamper {
        field,
        mode,
        next: Box::new(next),
    }
}

/// A random action subtree, depth-bounded.
pub fn random_action(rng: &mut StdRng, depth: usize) -> Action {
    if depth == 0 {
        return if rng.gen_bool(0.9) {
            Action::Send
        } else {
            Action::Drop
        };
    }
    match rng.gen_range(0..10) {
        0..=2 => Action::Send,
        3 => Action::Drop,
        4..=6 => {
            let next = random_action(rng, depth - 1);
            random_tamper(rng, next)
        }
        _ => Action::Duplicate(
            Box::new(random_action(rng, depth - 1)),
            Box::new(random_action(rng, depth - 1)),
        ),
    }
}

impl Genome {
    /// A fresh random genome.
    pub fn random(rng: &mut StdRng) -> Genome {
        Genome::from_action(random_action(rng, 3))
    }

    /// Wrap an action tree in the fixed server-side trigger.
    pub fn from_action(action: Action) -> Genome {
        Genome {
            strategy: Strategy {
                outbound: vec![StrategyPart {
                    trigger: Trigger::tcp_flags("SA"),
                    action,
                }],
                inbound: vec![],
            },
        }
    }

    /// The genome's action tree.
    pub fn action(&self) -> &Action {
        &self.strategy.outbound[0].action
    }

    fn action_mut(&mut self) -> &mut Action {
        &mut self.strategy.outbound[0].action
    }

    /// Node count (parsimony metric).
    pub fn size(&self) -> usize {
        self.strategy.size()
    }

    /// Mutate in place (trigger fixed to SYN+ACK — the paper's
    /// restriction for DNS/HTTP/HTTPS/SMTP).
    pub fn mutate(&mut self, rng: &mut StdRng) {
        self.mutate_with(rng, false);
    }

    /// Mutate in place; when `allow_trigger` is set the trigger's flag
    /// value may also mutate (the FTP training mode).
    pub fn mutate_with(&mut self, rng: &mut StdRng, allow_trigger: bool) {
        if allow_trigger && rng.gen_bool(0.1) {
            let flags = TRIGGER_VALUES[rng.gen_range(0..TRIGGER_VALUES.len())];
            self.strategy.outbound[0].trigger = Trigger::tcp_flags(flags);
            return;
        }
        self.mutate_action(rng);
    }

    fn mutate_action(&mut self, rng: &mut StdRng) {
        let size = self.action().size();
        let target = rng.gen_range(0..size);
        match rng.gen_range(0..4) {
            // Replace the targeted subtree with a random one.
            0 => {
                let fresh = random_action(rng, 2);
                replace_nth(self.action_mut(), target, fresh);
            }
            // Wrap the targeted subtree in a new node.
            1 => {
                let mut taken = Action::Send;
                swap_nth(self.action_mut(), target, &mut taken);
                let wrapped = if rng.gen_bool(0.5) {
                    random_tamper(rng, taken)
                } else if rng.gen_bool(0.5) {
                    Action::Duplicate(Box::new(Action::Send), Box::new(taken))
                } else {
                    Action::Duplicate(Box::new(taken), Box::new(Action::Send))
                };
                replace_nth(self.action_mut(), target, wrapped);
            }
            // Shrink: splice a child up over its parent.
            2 => {
                let shrunk = shrink(self.action().clone(), target);
                *self.action_mut() = shrunk;
            }
            // Point-mutate a tamper (or no-op if none targeted).
            _ => {
                point_mutate_nth(self.action_mut(), target, rng);
            }
        }
    }

    /// The genome with node `n` (preorder) spliced out, or an
    /// identical clone when `n` is a leaf. Used by the minimization
    /// pass (Geneva prunes vestigial nodes from winning strategies).
    pub fn shrunk_at(&self, n: usize) -> Genome {
        let mut out = self.clone();
        *out.action_mut() = shrink(self.action().clone(), n);
        out
    }

    /// Subtree crossover with another genome.
    pub fn crossover(&self, other: &Genome, rng: &mut StdRng) -> Genome {
        let mut child = self.clone();
        let take_from = nth_subtree(other.action(), rng.gen_range(0..other.size())).clone();
        let at = rng.gen_range(0..child.size());
        replace_nth(child.action_mut(), at, take_from);
        child
    }
}

/// Visit nodes in preorder; return the `n`-th subtree.
fn nth_subtree(action: &Action, n: usize) -> &Action {
    fn walk<'a>(action: &'a Action, n: &mut usize) -> Option<&'a Action> {
        if *n == 0 {
            return Some(action);
        }
        *n -= 1;
        match action {
            Action::Send | Action::Drop => None,
            Action::Tamper { next, .. } => walk(next, n),
            Action::Duplicate(a, b)
            | Action::Fragment {
                first: a,
                second: b,
                ..
            } => walk(a, n).or_else(|| walk(b, n)),
        }
    }
    let mut k = n;
    walk(action, &mut k).unwrap_or(action)
}

/// Replace the `n`-th node (preorder) with `fresh`.
fn replace_nth(action: &mut Action, n: usize, fresh: Action) {
    let mut fresh = fresh;
    swap_nth(action, n, &mut fresh);
}

fn swap_nth(action: &mut Action, n: usize, with: &mut Action) {
    fn walk(action: &mut Action, n: &mut usize, with: &mut Action) -> bool {
        if *n == 0 {
            std::mem::swap(action, with);
            return true;
        }
        *n -= 1;
        match action {
            Action::Send | Action::Drop => false,
            Action::Tamper { next, .. } => walk(next, n, with),
            Action::Duplicate(a, b)
            | Action::Fragment {
                first: a,
                second: b,
                ..
            } => walk(a, n, with) || walk(b, n, with),
        }
    }
    let mut k = n;
    walk(action, &mut k, with);
}

/// Replace the `n`-th node by one of its children (identity for leaves).
fn shrink(action: Action, n: usize) -> Action {
    fn walk(action: Action, n: &mut usize) -> Action {
        if *n == 0 {
            return match action {
                Action::Tamper { next, .. } => *next,
                Action::Duplicate(a, _) => *a,
                Action::Fragment { first, .. } => *first,
                leaf => leaf,
            };
        }
        *n -= 1;
        match action {
            Action::Tamper { field, mode, next } => Action::Tamper {
                field,
                mode,
                next: Box::new(walk(*next, n)),
            },
            Action::Duplicate(a, b) => {
                let a = walk(*a, n);
                let b = walk(*b, n);
                Action::Duplicate(Box::new(a), Box::new(b))
            }
            Action::Fragment {
                proto,
                offset,
                in_order,
                first,
                second,
            } => {
                let first = walk(*first, n);
                let second = walk(*second, n);
                Action::Fragment {
                    proto,
                    offset,
                    in_order,
                    first: Box::new(first),
                    second: Box::new(second),
                }
            }
            leaf => leaf,
        }
    }
    let mut k = n;
    walk(action, &mut k)
}

fn point_mutate_nth(action: &mut Action, n: usize, rng: &mut StdRng) {
    fn walk(action: &mut Action, n: &mut usize, rng: &mut StdRng) -> bool {
        if *n == 0 {
            if let Action::Tamper { field, mode, .. } = action {
                if rng.gen_bool(0.5) {
                    *field = FieldRef::parse(FIELD_POOL[rng.gen_range(0..FIELD_POOL.len())])
                        .expect("valid");
                }
                *mode = if rng.gen_bool(0.45) {
                    TamperMode::Corrupt
                } else {
                    TamperMode::Replace(random_value(field, rng))
                };
            }
            return true;
        }
        *n -= 1;
        match action {
            Action::Send | Action::Drop => false,
            Action::Tamper { next, .. } => walk(next, n, rng),
            Action::Duplicate(a, b)
            | Action::Fragment {
                first: a,
                second: b,
                ..
            } => walk(a, n, rng) || walk(b, n, rng),
        }
    }
    let mut k = n;
    walk(action, &mut k, rng);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn random_genomes_always_serialize_and_reparse() {
        let mut r = rng(1);
        for _ in 0..200 {
            let genome = Genome::random(&mut r);
            let text = genome.strategy.to_string();
            let reparsed = geneva::parse_strategy(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(reparsed, genome.strategy);
        }
    }

    #[test]
    fn mutation_preserves_validity() {
        let mut r = rng(2);
        let mut genome = Genome::random(&mut r);
        for _ in 0..300 {
            genome.mutate(&mut r);
            let text = genome.strategy.to_string();
            geneva::parse_strategy(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(genome.size() >= 1);
        }
    }

    #[test]
    fn crossover_produces_valid_children() {
        let mut r = rng(3);
        for _ in 0..100 {
            let a = Genome::random(&mut r);
            let b = Genome::random(&mut r);
            let child = a.crossover(&b, &mut r);
            geneva::parse_strategy(&child.strategy.to_string()).expect("child parses");
        }
    }

    #[test]
    fn shrink_reduces_or_preserves_size() {
        let mut r = rng(4);
        for _ in 0..100 {
            let genome = Genome::random(&mut r);
            let n = r.gen_range(0..genome.size());
            let shrunk = shrink(genome.action().clone(), n);
            assert!(shrunk.size() <= genome.action().size());
        }
    }

    #[test]
    fn trigger_mutation_only_when_allowed() {
        let mut r = rng(9);
        let mut genome = Genome::random(&mut r);
        let mut changed = false;
        for _ in 0..200 {
            genome.mutate_with(&mut r, true);
            if genome.strategy.outbound[0].trigger != Trigger::tcp_flags("SA") {
                changed = true;
                break;
            }
        }
        assert!(changed, "trigger evolution never fired in 200 mutations");
    }

    #[test]
    fn trigger_stays_fixed_to_syn_ack() {
        let mut r = rng(5);
        let mut genome = Genome::random(&mut r);
        for _ in 0..50 {
            genome.mutate(&mut r);
        }
        assert_eq!(
            genome.strategy.outbound[0].trigger,
            Trigger::tcp_flags("SA")
        );
        assert!(genome.strategy.inbound.is_empty());
    }
}
