//! The generation loop: tournament selection, elitism, convergence.

use crate::fitness::{CacheKeying, FitnessCache, FitnessEval};
use crate::genome::Genome;
use appproto::AppProtocol;
use censor::Country;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evolution hyperparameters. Paper defaults: population 300, up to 50
/// generations (we default smaller for iterated experimentation; the
/// `evolution` bench uses the paper's scale).
#[derive(Debug, Clone)]
pub struct GaConfig {
    /// Censor to train against.
    pub country: Country,
    /// Protocol to trigger censorship with.
    pub protocol: AppProtocol,
    /// Individuals per generation.
    pub population: usize,
    /// Maximum generations.
    pub generations: u32,
    /// Simulated trials per fitness evaluation.
    pub trials_per_eval: u32,
    /// Master seed.
    pub seed: u64,
    /// Stop after this many generations without best-fitness progress.
    pub patience: u32,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Fraction of elites copied unchanged.
    pub elitism: f64,
    /// Allow the trigger's flag value to evolve (the paper only fixes
    /// the SYN+ACK trigger for DNS/HTTP/HTTPS/SMTP; FTP's interactive
    /// exchange leaves more server packets to trigger on).
    pub evolve_triggers: bool,
    /// Key the fitness memo on canonical forms (`strata`), so
    /// semantically equivalent genomes are never re-simulated. Off
    /// falls back to literal-text keying; per-genome fitness is
    /// identical either way, only simulator time changes.
    pub dedup: bool,
    /// Worker count for fitness evaluation; `None` uses the
    /// process-wide pool default (`--jobs` / available parallelism).
    /// The GA trajectory is bit-identical for any value.
    pub jobs: Option<usize>,
    /// Let the censor model checker answer `ProvablyInert` genomes
    /// without simulating. Like `dedup`, this only saves simulator
    /// time — the trajectory is identical either way.
    pub censor_gate: bool,
}

impl GaConfig {
    /// A sensibly small default configuration.
    pub fn new(country: Country, protocol: AppProtocol, seed: u64) -> GaConfig {
        GaConfig {
            country,
            protocol,
            population: 60,
            generations: 20,
            trials_per_eval: 8,
            seed,
            patience: 6,
            tournament: 4,
            elitism: 0.08,
            evolve_triggers: protocol == AppProtocol::Ftp,
            dedup: true,
            jobs: None,
            censor_gate: true,
        }
    }

    /// The paper's scale (§4.1): population 300, 50 generations.
    pub fn paper_scale(country: Country, protocol: AppProtocol, seed: u64) -> GaConfig {
        GaConfig {
            population: 300,
            generations: 50,
            ..GaConfig::new(country, protocol, seed)
        }
    }
}

/// The outcome of an evolution run.
#[derive(Debug, Clone)]
pub struct EvolutionResult {
    /// Best genome found.
    pub best: Genome,
    /// Its evaluation.
    pub best_eval: FitnessEval,
    /// Generation at which the best appeared.
    pub best_generation: u32,
    /// Best fitness per generation.
    pub history: Vec<f64>,
    /// Distinct genomes evaluated (cache-deduplicated).
    pub distinct_evaluated: usize,
    /// Total simulated trials spent.
    pub trials_spent: u64,
    /// Fitness-memo hits (evaluations answered without simulating).
    pub cache_hits: u64,
    /// Fitness-memo misses.
    pub cache_misses: u64,
    /// Evaluations skipped because `strata` lints proved futility.
    pub static_rejects: u64,
    /// Evaluations skipped because the censor model checker proved the
    /// genome `ProvablyInert` against the training censor.
    pub censor_static_rejects: u64,
}

impl EvolutionResult {
    /// Fraction of evaluations answered from the fitness memo.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of memo misses the static prefilter answered without
    /// simulating — the simulator time the futility proofs saved.
    pub fn static_skip_rate(&self) -> f64 {
        if self.cache_misses == 0 {
            0.0
        } else {
            self.static_rejects as f64 / self.cache_misses as f64
        }
    }

    /// Fraction of memo misses the per-censor model checker answered
    /// without simulating (`ProvablyInert` against the training
    /// censor). Zero against the stochastic GFW, where the checker
    /// never claims anything.
    pub fn censor_static_skip_rate(&self) -> f64 {
        if self.cache_misses == 0 {
            0.0
        } else {
            self.censor_static_rejects as f64 / self.cache_misses as f64
        }
    }
}

/// Run the genetic algorithm.
pub fn evolve(config: &GaConfig) -> EvolutionResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cache = FitnessCache::new(
        config.country,
        config.protocol,
        config.trials_per_eval,
        config.seed ^ 0xF17,
    )
    .with_keying(if config.dedup {
        CacheKeying::Canonical
    } else {
        CacheKeying::Text
    });
    if let Some(jobs) = config.jobs {
        cache = cache.with_jobs(jobs);
    }
    cache.censor_gate = config.censor_gate;

    let mut population: Vec<Genome> = (0..config.population)
        .map(|_| Genome::random(&mut rng))
        .collect();

    let mut best: Option<(Genome, FitnessEval, u32)> = None;
    let mut history = Vec::new();
    let mut stale = 0u32;

    for generation in 0..config.generations {
        // Evaluate the generation in one parallel batch — identical
        // to per-genome serial evaluation for any worker count.
        let evals = cache.evaluate_population(&population);
        let scored: Vec<(Genome, FitnessEval)> = population.iter().cloned().zip(evals).collect();

        let gen_best = scored
            .iter()
            .max_by(|a, b| a.1.fitness.total_cmp(&b.1.fitness))
            .expect("population non-empty")
            .clone();
        history.push(gen_best.1.fitness);

        let improved = best
            .as_ref()
            .map(|(_, e, _)| gen_best.1.fitness > e.fitness)
            .unwrap_or(true);
        if improved {
            best = Some((gen_best.0.clone(), gen_best.1, generation));
            stale = 0;
        } else {
            stale += 1;
            if stale >= config.patience {
                break; // converged
            }
        }

        // Select and reproduce.
        let mut ranked = scored;
        ranked.sort_by(|a, b| b.1.fitness.total_cmp(&a.1.fitness));
        #[allow(clippy::cast_possible_truncation)] // elitism ∈ [0,1] ⇒ fits usize
        let elites = ((config.population as f64) * config.elitism).ceil() as usize;
        let mut next: Vec<Genome> = ranked.iter().take(elites).map(|(g, _)| g.clone()).collect();

        let tournament = |rng: &mut StdRng| -> &Genome {
            let mut winner = &ranked[rng.gen_range(0..ranked.len())];
            for _ in 1..config.tournament {
                let challenger = &ranked[rng.gen_range(0..ranked.len())];
                if challenger.1.fitness > winner.1.fitness {
                    winner = challenger;
                }
            }
            &winner.0
        };

        while next.len() < config.population {
            let child = if rng.gen_bool(0.35) {
                let a = tournament(&mut rng).clone();
                let b = tournament(&mut rng);
                a.crossover(b, &mut rng)
            } else {
                let mut child = tournament(&mut rng).clone();
                child.mutate_with(&mut rng, config.evolve_triggers);
                child
            };
            next.push(child);
        }
        population = next;
    }

    let (best, best_eval, best_generation) = best.expect("ran at least one generation");
    EvolutionResult {
        best,
        best_eval,
        best_generation,
        history,
        distinct_evaluated: cache.distinct_evaluated(),
        trials_spent: cache.trials_spent,
        cache_hits: cache.cache_hits,
        cache_misses: cache.cache_misses,
        static_rejects: cache.static_rejects,
        censor_static_rejects: cache.censor_static_rejects,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn rediscovers_an_evasion_strategy_against_kazakhstan() {
        // Kazakhstan has several deterministic 100% strategies within a
        // couple of mutations of the initial pool; a small GA finds one.
        let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 99);
        config.population = 40;
        config.generations = 12;
        config.trials_per_eval = 4;
        let result = evolve(&config);
        assert!(
            result.best_eval.rate() >= 0.75,
            "best {} (rate {}) after {} gens:\n{}",
            result.best.strategy,
            result.best_eval.rate(),
            result.history.len(),
            result
                .history
                .iter()
                .map(|f| format!("{f:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    #[test]
    fn evolution_beats_no_evasion_against_gfw_http() {
        // The GA is stochastic per seed; this seed converges well
        // inside the small test budget (some seeds stall on
        // identity-equivalent survivors and need more generations than
        // a unit test should spend).
        let mut config = GaConfig::new(Country::China, AppProtocol::Http, 42);
        config.population = 50;
        config.generations = 14;
        config.trials_per_eval = 6;
        let result = evolve(&config);
        assert!(
            result.best_eval.rate() > 0.3,
            "best {} rate {}",
            result.best.strategy,
            result.best_eval.rate()
        );
    }

    #[test]
    fn ftp_training_enables_trigger_evolution() {
        let config = GaConfig::new(Country::China, AppProtocol::Ftp, 1);
        assert!(config.evolve_triggers);
        let config = GaConfig::new(Country::China, AppProtocol::Http, 1);
        assert!(!config.evolve_triggers);
        // And the GA still finds a strong FTP strategy with triggers
        // unlocked (the corrupt-ack family dominates).
        let mut config = GaConfig::new(Country::China, AppProtocol::Ftp, 0x77);
        config.population = 50;
        config.generations = 14;
        config.trials_per_eval = 6;
        let result = evolve(&config);
        assert!(
            result.best_eval.rate() > 0.5,
            "best {} rate {}",
            result.best.strategy,
            result.best_eval.rate()
        );
    }

    #[test]
    fn dedup_saves_trials_without_changing_the_trajectory() {
        // Canonical keying and literal-text keying must walk the exact
        // same GA trajectory (trial seeds derive from canonical text in
        // both modes); dedup can only save simulator time.
        let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 31);
        config.population = 16;
        config.generations = 5;
        config.trials_per_eval = 3;
        config.patience = 10;
        let deduped = evolve(&config);
        config.dedup = false;
        let text = evolve(&config);
        assert_eq!(deduped.best.strategy, text.best.strategy);
        assert_eq!(deduped.best_eval.fitness, text.best_eval.fitness);
        assert_eq!(deduped.history, text.history);
        assert!(
            deduped.trials_spent <= text.trials_spent,
            "dedup spent {} trials, text keying {}",
            deduped.trials_spent,
            text.trials_spent
        );
        assert!(deduped.cache_hits + deduped.cache_misses > 0);
    }

    #[test]
    fn worker_count_never_changes_the_trajectory() {
        // The whole point of the pool contract: running fitness
        // evaluation on 1, 2, or 8 workers walks the same GA path.
        let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 31);
        config.population = 16;
        config.generations = 4;
        config.trials_per_eval = 3;
        config.patience = 10;
        config.jobs = Some(1);
        let serial = evolve(&config);
        for jobs in [2, 8] {
            config.jobs = Some(jobs);
            let parallel = evolve(&config);
            assert_eq!(serial.best.strategy, parallel.best.strategy, "jobs={jobs}");
            assert_eq!(serial.history, parallel.history, "jobs={jobs}");
            assert_eq!(serial.trials_spent, parallel.trials_spent, "jobs={jobs}");
            assert_eq!(serial.cache_hits, parallel.cache_hits, "jobs={jobs}");
            assert_eq!(serial.cache_misses, parallel.cache_misses, "jobs={jobs}");
        }
    }

    #[test]
    fn censor_prefilter_saves_trials_without_changing_the_trajectory() {
        // The acceptance bar for the per-censor gate: a Kazakhstan run
        // skips a nonzero share of its memo misses statically, and the
        // discovered strategies are untouched.
        let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 31);
        config.population = 16;
        config.generations = 5;
        config.trials_per_eval = 3;
        config.patience = 10;
        let gated = evolve(&config);
        config.censor_gate = false;
        let ungated = evolve(&config);
        assert_eq!(gated.best.strategy, ungated.best.strategy);
        assert_eq!(gated.best_eval.fitness, ungated.best_eval.fitness);
        assert_eq!(gated.history, ungated.history);
        assert!(
            gated.censor_static_rejects > 0,
            "expected inert genomes in the pool"
        );
        assert!(gated.censor_static_skip_rate() > 0.0);
        assert_eq!(ungated.censor_static_rejects, 0);
        assert!(
            gated.trials_spent < ungated.trials_spent,
            "gate spent {} trials, ungated {}",
            gated.trials_spent,
            ungated.trials_spent
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, 5);
        config.population = 12;
        config.generations = 4;
        config.trials_per_eval = 3;
        config.patience = 10;
        let a = evolve(&config);
        let b = evolve(&config);
        assert_eq!(a.best.strategy, b.best.strategy);
        assert_eq!(a.history, b.history);
    }
}
