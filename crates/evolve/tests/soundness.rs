#![allow(clippy::unwrap_used)] // test code
//! Soundness differential for the static evolve prefilter.
//!
//! The prefilter assigns floor fitness — zero successes, no simulation
//! — to any genome whose lints carry an error-severity futility proof.
//! That is only sound if the proofs are *never wrong*: a strategy with
//! any simulated success, against any modeled censor, must never be
//! refuted. This test drives the exact gate the fitness cache uses
//! over the whole built-in library plus ≥500 randomly generated
//! genomes, and simulates every refuted genome against every censor
//! model to confirm the proved outcome.

use appproto::AppProtocol;
use censor::Country;
use evolve::Genome;
use harness::{derive_trial_seed, run_trial, TrialConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use strata::{canonicalize_strategy, lint_with_context, LintContext, Severity};

/// The gate `evolve::FitnessCache` applies (HTTP rides TCP, so the
/// TCP-liveness proofs are active — the same context the GA uses).
fn statically_refuted(strategy: &geneva::Strategy) -> bool {
    let canonical = canonicalize_strategy(strategy);
    lint_with_context(&canonical, &LintContext::default())
        .iter()
        .any(|d| d.severity == Severity::Error && d.proves_futile)
}

fn simulated_successes(strategy: &geneva::Strategy, country: Country, trials: u32) -> u32 {
    let mut cfg = TrialConfig::new(country, AppProtocol::Http, strategy.clone(), 0);
    let tag = harness::cell_tag("soundness");
    let mut successes = 0;
    for i in 0..trials {
        cfg.seed = derive_trial_seed(0x5011D, tag, i);
        if run_trial(&cfg).evaded() {
            successes += 1;
        }
    }
    successes
}

#[test]
fn no_library_strategy_is_refuted() {
    for named in geneva::library::server_side()
        .iter()
        .chain(geneva::library::variants().iter())
    {
        assert!(
            !statically_refuted(&named.strategy()),
            "false refutation of working library strategy {}",
            named.name
        );
    }
}

/// The differential proper: refuted ⇒ zero simulated successes against
/// every modeled censor. (The converse need not hold — the prefilter
/// is allowed to miss futile genomes, it must only never refute a
/// viable one.)
#[test]
fn refuted_genomes_never_evade_any_censor() {
    let mut rng = StdRng::seed_from_u64(0xAB50_1DEA);
    let countries = [
        Country::China,
        Country::India,
        Country::Iran,
        Country::Kazakhstan,
    ];
    let mut refuted = 0u32;
    for _ in 0..520 {
        let genome = Genome::random(&mut rng);
        if !statically_refuted(&genome.strategy) {
            continue;
        }
        refuted += 1;
        for country in countries {
            let successes = simulated_successes(&genome.strategy, country, 6);
            assert_eq!(
                successes, 0,
                "UNSOUND: prefilter refuted `{}` but it evaded {country:?} \
                 {successes}/6 times",
                genome.strategy
            );
        }
    }
    // The gate must have actually fired on a meaningful slice of the
    // population, or this test proves nothing.
    assert!(
        refuted >= 20,
        "only {refuted} of 520 random genomes were refuted — generator drift?"
    );
}

/// The same differential for the *per-censor* model checker: a
/// [`Verdict::ProvablyInert`] claim against censor X means the genome's
/// flow is byte-identical to baseline as far as X can observe, and the
/// deterministic X censors baseline HTTP every time — so zero simulated
/// successes against X, for every claimed genome in the population.
/// (The GFW never receives a claim; the checker hard-codes `Unknown`
/// for it, which the loop re-asserts.)
#[test]
fn per_censor_inert_claims_never_evade() {
    use strata::censor_model::{check_all, CensorId, Verdict};

    let mut rng = StdRng::seed_from_u64(0xAB50_1DEA);
    let mut inert_claims = 0u32;
    for _ in 0..520 {
        let genome = Genome::random(&mut rng);
        let summary = strata::summarize(&genome.strategy);
        for (id, verdict) in check_all(&summary) {
            if verdict != Verdict::ProvablyInert {
                continue;
            }
            assert_ne!(
                id,
                CensorId::Gfw,
                "no deterministic claim vs the stochastic GFW: `{}`",
                genome.strategy
            );
            inert_claims += 1;
            let country = match id {
                CensorId::Gfw => Country::China,
                CensorId::Airtel => Country::India,
                CensorId::Iran => Country::Iran,
                CensorId::Kazakhstan => Country::Kazakhstan,
            };
            let successes = simulated_successes(&genome.strategy, country, 6);
            assert_eq!(
                successes, 0,
                "UNSOUND: `{}` proven inert vs {id} but evaded {successes}/6 times",
                genome.strategy
            );
        }
    }
    assert!(
        inert_claims >= 20,
        "only {inert_claims} inert claims over 520 random genomes — \
         the checker proved almost nothing, or the generator drifted"
    );
}
