//! TCP header and options: parse, build, serialize.
//!
//! Options get first-class treatment because two of the paper's eleven
//! strategies manipulate them directly: Strategy 8 ("TCP Window
//! Reduction") *removes* the window-scale option while shrinking the
//! advertised window, and the GA mutates `TCP:options-*` fields freely.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::bytes::PayloadBuf;
use crate::checksum::{fold, ones_complement_sum, pseudo_sum};
use crate::flags::TcpFlags;
use crate::{Error, Result};

/// A single TCP option, parsed into the kinds Geneva manipulates plus an
/// opaque fallback for everything else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    /// Kind 1 — padding / alignment.
    Nop,
    /// Kind 2 — maximum segment size (SYN-only in real stacks).
    Mss(u16),
    /// Kind 3 — window scale shift count.
    WindowScale(u8),
    /// Kind 4 — SACK permitted.
    SackPermitted,
    /// Kind 8 — timestamps (TSval, TSecr).
    Timestamps(u32, u32),
    /// Anything else, kept verbatim as (kind, data).
    Unknown(u8, Vec<u8>),
}

impl TcpOption {
    /// Geneva field-name suffix for this option (`options-<name>`).
    pub fn geneva_name(&self) -> &'static str {
        match self {
            TcpOption::Nop => "nop",
            TcpOption::Mss(_) => "mss",
            TcpOption::WindowScale(_) => "wscale",
            TcpOption::SackPermitted => "sackok",
            TcpOption::Timestamps(..) => "timestamp",
            TcpOption::Unknown(..) => "unknown",
        }
    }
}

/// A parsed (or constructed) TCP header.
///
/// `data_offset` is stored explicitly so tampering can desynchronize it
/// from the real header length; [`TcpHeader::serialize`] recomputes it,
/// [`TcpHeader::serialize_raw`] does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header length in 32-bit words as stored on the wire.
    pub data_offset: u8,
    /// The reserved low nibble of the offset byte, preserved verbatim so
    /// re-serialization is byte-faithful (checksums must notice flips
    /// even in reserved bits).
    pub reserved: u8,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Advertised receive window (unscaled).
    pub window: u16,
    /// Checksum as stored; may be deliberately wrong.
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Parsed options in wire order.
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// A header with the given ports and flags; everything else zeroed
    /// except a default 64 KiB-ish window.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            data_offset: 5,
            reserved: 0,
            flags,
            window: 64240,
            checksum: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Find the first option of a given Geneva name.
    pub fn option(&self, geneva_name: &str) -> Option<&TcpOption> {
        self.options.iter().find(|o| o.geneva_name() == geneva_name)
    }

    /// Remove all options with the given Geneva name; returns how many
    /// were removed. Used by `tamper{TCP:options-wscale:replace:}`.
    pub fn remove_option(&mut self, geneva_name: &str) -> usize {
        let before = self.options.len();
        self.options.retain(|o| o.geneva_name() != geneva_name);
        before - self.options.len()
    }

    /// Byte length of the serialized options (padded to 4-byte multiple).
    pub fn options_len(&self) -> usize {
        let raw: usize = self
            .options
            .iter()
            .map(|o| match o {
                TcpOption::Nop => 1,
                TcpOption::Mss(_) => 4,
                TcpOption::WindowScale(_) => 3,
                TcpOption::SackPermitted => 2,
                TcpOption::Timestamps(..) => 10,
                TcpOption::Unknown(_, data) => 2 + data.len(),
            })
            .sum();
        raw.div_ceil(4) * 4
    }

    /// Header length in bytes implied by the *options actually present*
    /// (not by the stored `data_offset`).
    pub fn real_header_len(&self) -> usize {
        20 + self.options_len()
    }

    /// Parse from the front of `data`; returns the header and bytes
    /// consumed (the wire `data_offset`, which governs where the payload
    /// starts even if it disagrees with the option bytes present).
    pub fn parse(data: &[u8]) -> Result<(TcpHeader, usize)> {
        if data.len() < 20 {
            return Err(Error::Truncated {
                layer: "tcp",
                needed: 20,
                got: data.len(),
            });
        }
        let data_offset = data[12] >> 4;
        let header_len = usize::from(data_offset) * 4;
        if data_offset < 5 {
            return Err(Error::BadLength {
                layer: "tcp",
                what: "data offset < 5",
            });
        }
        if data.len() < header_len {
            return Err(Error::Truncated {
                layer: "tcp",
                needed: header_len,
                got: data.len(),
            });
        }
        let options = parse_options(&data[20..header_len]);
        let header = TcpHeader {
            reserved: data[12] & 0x0F,
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            data_offset,
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            checksum: u16::from_be_bytes([data[16], data[17]]),
            urgent: u16::from_be_bytes([data[18], data[19]]),
            options,
        };
        Ok((header, header_len))
    }

    /// Serialize with `data_offset` and `checksum` recomputed for the
    /// given addressing and payload.
    pub fn serialize(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.real_header_len() + payload.len());
        self.serialize_into_parts(src, dst, payload, ones_complement_sum(payload), &mut out);
        out
    }

    /// [`TcpHeader::serialize`], appending to a caller-owned buffer and
    /// reusing the payload's cached checksum sum. Byte-identical output.
    pub fn serialize_into(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload: &PayloadBuf,
        out: &mut Vec<u8>,
    ) {
        self.serialize_into_parts(src, dst, payload, payload.ones_sum(), out);
    }

    fn serialize_into_parts(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload: &[u8],
        payload_sum: u16,
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        let data_offset = (self.real_header_len() / 4) as u8;
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((data_offset << 4) | (self.reserved & 0x0F));
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum patched below
        out.extend_from_slice(&self.urgent.to_be_bytes());
        serialize_options(&self.options, out);
        while !(out.len() - start - 20).is_multiple_of(4) {
            out.push(0);
        }
        debug_assert_eq!(out.len() - start, self.real_header_len());
        out.extend_from_slice(payload);
        let ck = self.checksum_for(src, dst, payload_sum, payload.len());
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum [`TcpHeader::serialize`] would store, computed from
    /// the header fields and a pre-folded payload sum without
    /// materializing the segment.
    pub fn checksum_for(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload_sum: u16,
        payload_len: usize,
    ) -> u16 {
        let data_offset = (self.real_header_len() / 4) as u8;
        let seg_len = self.real_header_len() + payload_len;
        let header_sum = self.fixed_words_sum(data_offset, 0) + u32::from(self.options_sum());
        !fold(
            u32::from(pseudo_sum(src, dst, crate::ipv4::PROTO_TCP, seg_len))
                + header_sum
                + u32::from(payload_sum),
        )
    }

    /// Serialize the header exactly as stored (no payload, no checksum
    /// or offset recomputation). Options are emitted and zero-padded.
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.real_header_len());
        self.serialize_raw_into(&mut bytes);
        bytes
    }

    /// [`TcpHeader::serialize_raw`], appending to a caller-owned buffer.
    pub fn serialize_raw_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((self.data_offset << 4) | (self.reserved & 0x0F));
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.urgent.to_be_bytes());
        serialize_options(&self.options, out);
        while !(out.len() - start - 20).is_multiple_of(4) {
            out.push(0);
        }
    }

    /// Folded ones'-complement sum of the 20 fixed header bytes as
    /// stored, with `data_offset` and `checksum` overridable (the two
    /// fields `serialize` recomputes).
    fn fixed_words_sum(&self, data_offset: u8, checksum: u16) -> u32 {
        u32::from(self.src_port)
            + u32::from(self.dst_port)
            + (self.seq >> 16)
            + (self.seq & 0xFFFF)
            + (self.ack >> 16)
            + (self.ack & 0xFFFF)
            + u32::from(u16::from_be_bytes([
                (data_offset << 4) | (self.reserved & 0x0F),
                self.flags.0,
            ]))
            + u32::from(self.window)
            + u32::from(checksum)
            + u32::from(self.urgent)
    }

    /// Folded ones'-complement sum of the serialized option bytes
    /// (padding included — it is zeros, so it contributes nothing).
    /// Options start at byte 20 of the header, an even offset, so this
    /// sum composes with the fixed-word sum exactly.
    fn options_sum(&self) -> u16 {
        if self.options.is_empty() {
            return 0;
        }
        let padded = self.options_len();
        if padded <= 40 {
            // Standards-conformant options fit the 40-byte option area;
            // sum them via a stack buffer, allocation-free.
            let mut buf = [0u8; 40];
            let mut at = 0;
            for option in &self.options {
                at = write_option_slice(option, &mut buf, at);
            }
            debug_assert!(at <= padded);
            ones_complement_sum(&buf[..padded])
        } else {
            let mut bytes = Vec::with_capacity(padded);
            serialize_options(&self.options, &mut bytes);
            ones_complement_sum(&bytes)
        }
    }

    /// Folded ones'-complement sum of [`TcpHeader::serialize_raw`]'s
    /// bytes, computed without allocating.
    pub fn raw_sum(&self) -> u16 {
        fold(self.fixed_words_sum(self.data_offset, self.checksum) + u32::from(self.options_sum()))
    }

    /// Verify the stored checksum against the given addressing and
    /// payload. Endpoints call this to decide whether to drop a packet;
    /// several censors skip it — that asymmetry powers insertion packets.
    pub fn checksum_ok(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> bool {
        self.checksum_ok_parts(src, dst, ones_complement_sum(payload), payload.len())
    }

    /// [`TcpHeader::checksum_ok`] from a pre-folded payload sum, so the
    /// hot path can verify without touching payload bytes.
    pub fn checksum_ok_parts(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload_sum: u16,
        payload_len: usize,
    ) -> bool {
        let seg_len = self.real_header_len() + payload_len;
        let sum = u32::from(pseudo_sum(src, dst, crate::ipv4::PROTO_TCP, seg_len))
            + u32::from(self.raw_sum())
            + u32::from(payload_sum);
        fold(sum) == 0xFFFF
    }
}

/// [`serialize_options`] for one option into a fixed stack buffer;
/// returns the new write cursor. Callers guarantee the buffer fits
/// (`options_len() <= buf.len()`).
fn write_option_slice(option: &TcpOption, buf: &mut [u8; 40], at: usize) -> usize {
    match option {
        TcpOption::Nop => {
            buf[at] = 1;
            at + 1
        }
        TcpOption::Mss(mss) => {
            buf[at..at + 2].copy_from_slice(&[2, 4]);
            buf[at + 2..at + 4].copy_from_slice(&mss.to_be_bytes());
            at + 4
        }
        TcpOption::WindowScale(shift) => {
            buf[at..at + 3].copy_from_slice(&[3, 3, *shift]);
            at + 3
        }
        TcpOption::SackPermitted => {
            buf[at..at + 2].copy_from_slice(&[4, 2]);
            at + 2
        }
        TcpOption::Timestamps(tsval, tsecr) => {
            buf[at..at + 2].copy_from_slice(&[8, 10]);
            buf[at + 2..at + 6].copy_from_slice(&tsval.to_be_bytes());
            buf[at + 6..at + 10].copy_from_slice(&tsecr.to_be_bytes());
            at + 10
        }
        TcpOption::Unknown(kind, data) => {
            buf[at] = *kind;
            buf[at + 1] = (data.len() + 2) as u8;
            buf[at + 2..at + 2 + data.len()].copy_from_slice(data);
            at + 2 + data.len()
        }
    }
}

fn parse_options(mut data: &[u8]) -> Vec<TcpOption> {
    let mut options = Vec::new();
    while let Some(&kind) = data.first() {
        match kind {
            0 => break, // end of options list
            1 => {
                options.push(TcpOption::Nop);
                data = &data[1..];
            }
            _ => {
                let Some(&len) = data.get(1) else { break };
                let len = usize::from(len);
                if len < 2 || len > data.len() {
                    break; // malformed; stop parsing, keep what we have
                }
                let body = &data[2..len];
                options.push(match (kind, body) {
                    (2, [a, b]) => TcpOption::Mss(u16::from_be_bytes([*a, *b])),
                    (3, [s]) => TcpOption::WindowScale(*s),
                    (4, []) => TcpOption::SackPermitted,
                    (8, body) if body.len() == 8 => TcpOption::Timestamps(
                        u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    ),
                    _ => TcpOption::Unknown(kind, body.to_vec()),
                });
                data = &data[len..];
            }
        }
    }
    options
}

fn serialize_options(options: &[TcpOption], out: &mut Vec<u8>) {
    for option in options {
        match option {
            TcpOption::Nop => out.push(1),
            TcpOption::Mss(mss) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&mss.to_be_bytes());
            }
            TcpOption::WindowScale(shift) => out.extend_from_slice(&[3, 3, *shift]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps(tsval, tsecr) => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&tsval.to_be_bytes());
                out.extend_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Unknown(kind, data) => {
                out.push(*kind);
                out.push((data.len() + 2) as u8);
                out.extend_from_slice(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    const SRC: [u8; 4] = [10, 0, 0, 1];
    const DST: [u8; 4] = [10, 0, 0, 2];

    fn syn_ack_with_options() -> TcpHeader {
        let mut h = TcpHeader::new(80, 50123, TcpFlags::SYN_ACK);
        h.seq = 0x11223344;
        h.ack = 0x55667788;
        h.options = vec![
            TcpOption::Mss(1460),
            TcpOption::SackPermitted,
            TcpOption::Timestamps(100, 200),
            TcpOption::Nop,
            TcpOption::WindowScale(7),
        ];
        h
    }

    #[test]
    fn round_trip_with_options_and_payload() {
        let h = syn_ack_with_options();
        let bytes = h.serialize(SRC, DST, b"hello");
        let (parsed, consumed) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(&bytes[consumed..], b"hello");
        assert_eq!(parsed.src_port, 80);
        assert_eq!(parsed.dst_port, 50123);
        assert_eq!(parsed.seq, 0x11223344);
        assert_eq!(parsed.flags, TcpFlags::SYN_ACK);
        assert_eq!(parsed.options, h.options);
        assert!(parsed.checksum_ok(SRC, DST, b"hello"));
    }

    #[test]
    fn checksum_fails_on_wrong_payload() {
        let h = syn_ack_with_options();
        let bytes = h.serialize(SRC, DST, b"hello");
        let (parsed, _) = TcpHeader::parse(&bytes).unwrap();
        assert!(!parsed.checksum_ok(SRC, DST, b"hellp"));
        // Note: merely *swapping* src and dst would NOT change the
        // checksum (ones' complement addition commutes), so we perturb
        // an address instead.
        assert!(!parsed.checksum_ok([10, 0, 0, 3], DST, b"hello"));
    }

    #[test]
    fn serialize_raw_preserves_bad_offset_and_checksum() {
        let mut h = TcpHeader::new(80, 1234, TcpFlags::ACK);
        h.data_offset = 9; // lies: there are no options
        h.checksum = 0xBEEF;
        let bytes = h.serialize_raw();
        assert_eq!(bytes[12] >> 4, 9);
        assert_eq!(&bytes[16..18], &[0xBE, 0xEF]);
    }

    #[test]
    fn remove_option_drops_wscale_only() {
        let mut h = syn_ack_with_options();
        assert_eq!(h.remove_option("wscale"), 1);
        assert!(h.option("wscale").is_none());
        assert!(h.option("mss").is_some());
        assert_eq!(h.remove_option("wscale"), 0);
    }

    #[test]
    fn malformed_option_length_stops_cleanly() {
        // MSS option claiming length 40 in a 4-byte options area.
        let opts = parse_options(&[2, 40, 0, 0]);
        assert!(opts.is_empty());
        // Option with length 0 must not loop forever.
        let opts = parse_options(&[5, 0, 1, 1]);
        assert!(opts.is_empty());
    }

    #[test]
    fn end_of_options_terminates() {
        let opts = parse_options(&[1, 0, 2, 4]);
        assert_eq!(opts, vec![TcpOption::Nop]);
    }

    #[test]
    fn parse_rejects_short_and_bad_offset() {
        assert!(TcpHeader::parse(&[0; 10]).is_err());
        let mut bytes = TcpHeader::new(1, 2, TcpFlags::SYN).serialize(SRC, DST, b"");
        bytes[12] = 0x40; // data offset 4
        assert!(matches!(
            TcpHeader::parse(&bytes),
            Err(Error::BadLength { layer: "tcp", .. })
        ));
    }

    #[test]
    fn raw_sum_and_checksum_for_match_serialized_forms() {
        let mut h = syn_ack_with_options();
        h.reserved = 0x0A;
        h.checksum = 0x9999;
        h.data_offset = 11;
        assert_eq!(
            h.raw_sum(),
            crate::checksum::ones_complement_sum(&h.serialize_raw())
        );

        // checksum_for equals the checksum serialize() embeds.
        for payload in [&b""[..], b"x", b"hello world"] {
            let bytes = h.serialize(SRC, DST, payload);
            assert_eq!(
                h.checksum_for(SRC, DST, ones_complement_sum(payload), payload.len()),
                u16::from_be_bytes([bytes[16], bytes[17]]),
                "payload {payload:?}"
            );
        }
    }

    #[test]
    fn serialize_into_appends_identical_bytes() {
        let h = syn_ack_with_options();
        let fresh = h.serialize(SRC, DST, b"payload!");
        let mut out = vec![0xEE];
        let payload = PayloadBuf::from(b"payload!".to_vec());
        h.serialize_into(SRC, DST, &payload, &mut out);
        assert_eq!(&out[1..], &fresh[..]);

        let mut raw = vec![0xEE, 0xFF];
        h.serialize_raw_into(&mut raw);
        assert_eq!(&raw[2..], &h.serialize_raw()[..]);
    }

    #[test]
    fn unknown_option_round_trips() {
        let mut h = TcpHeader::new(1, 2, TcpFlags::SYN);
        h.options = vec![TcpOption::Unknown(254, vec![0xAA, 0xBB])];
        let bytes = h.serialize(SRC, DST, b"");
        let (parsed, _) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed.options, h.options);
    }
}
