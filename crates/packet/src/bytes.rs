//! Copy-on-write payload bytes.
//!
//! The packet hot path clones constantly: every simulated hop, every
//! Geneva `duplicate`, every trace capture. With an owned `Vec<u8>`
//! payload each of those clones re-allocates and copies the largest
//! part of the packet. [`PayloadBuf`] makes `Packet::clone` a refcount
//! bump instead: payload bytes live in an `Arc`-backed buffer, clones
//! share it, and `split` hands out zero-copy sub-slices of the same
//! backing storage. Mutation goes through [`PayloadBuf::make_mut`],
//! which re-owns the bytes only when they are actually shared —
//! classic copy-on-write.
//!
//! The buffer also memoizes its ones'-complement sum (the payload term
//! of the TCP/UDP checksum). Checksumming is the only reason the hot
//! path ever walks payload bytes, so caching the folded sum makes
//! re-finalizing a cloned-and-tampered packet O(header) instead of
//! O(packet).

use crate::checksum::ones_complement_sum;
use std::ops::{Deref, Range};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Sentinel meaning "ones'-complement sum not computed yet".
const SUM_UNSET: u32 = u32::MAX;

/// A cheaply-clonable, sliceable, copy-on-write byte buffer used as
/// [`crate::Packet`] payload.
///
/// Dereferences to `&[u8]`, so read-only call sites are unchanged.
/// Obtain mutable access via [`PayloadBuf::make_mut`].
pub struct PayloadBuf {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
    /// Cached folded ones'-complement sum of this view ([`SUM_UNSET`]
    /// when not yet computed). Interior-mutable so `&self` users
    /// (serialization, checksum verification) can fill it lazily.
    sum: AtomicU32,
}

fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

impl PayloadBuf {
    /// The empty payload. Shares one global backing allocation, so
    /// building empty-payload packets (SYNs, RSTs) allocates nothing.
    pub fn empty() -> PayloadBuf {
        PayloadBuf {
            data: empty_arc(),
            off: 0,
            len: 0,
            sum: AtomicU32::new(0),
        }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Copy the bytes out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing this buffer's backing storage.
    /// This is what lets Geneva segment/fragment splits reuse one
    /// allocation for both halves.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, matching slice indexing.
    pub fn slice(&self, range: Range<usize>) -> PayloadBuf {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for payload of {} bytes",
            self.len
        );
        if range.start == range.end {
            return PayloadBuf::empty();
        }
        let sum = if range.start == 0 && range.end == self.len {
            self.sum.load(Ordering::Relaxed)
        } else {
            SUM_UNSET
        };
        PayloadBuf {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
            sum: AtomicU32::new(sum),
        }
    }

    /// Mutable access to the bytes, re-owning them first if the
    /// backing buffer is shared (copy-on-write). Invalidates the
    /// cached checksum sum.
    pub fn make_mut(&mut self) -> &mut [u8] {
        self.sum.store(SUM_UNSET, Ordering::Relaxed);
        let whole = self.off == 0 && self.len == self.data.len();
        if !(whole && Arc::get_mut(&mut self.data).is_some()) {
            let owned = self.as_slice().to_vec();
            self.data = Arc::new(owned);
            self.off = 0;
        }
        let vec = Arc::get_mut(&mut self.data).expect("uniquely owned after copy-on-write");
        &mut vec[..]
    }

    /// Folded ones'-complement sum of the payload bytes (the payload
    /// term of a TCP/UDP checksum), computed once and cached. Valid
    /// because transport headers are even-length, so the payload always
    /// starts on a 16-bit word boundary of the checksummed segment.
    pub fn ones_sum(&self) -> u16 {
        let cached = self.sum.load(Ordering::Relaxed);
        if cached != SUM_UNSET {
            // The cache only ever holds a folded 16-bit sum.
            return (cached & 0xFFFF) as u16;
        }
        let sum = ones_complement_sum(self.as_slice());
        self.sum.store(u32::from(sum), Ordering::Relaxed);
        sum
    }
}

impl Default for PayloadBuf {
    fn default() -> PayloadBuf {
        PayloadBuf::empty()
    }
}

impl Clone for PayloadBuf {
    fn clone(&self) -> PayloadBuf {
        PayloadBuf {
            data: Arc::clone(&self.data),
            off: self.off,
            len: self.len,
            sum: AtomicU32::new(self.sum.load(Ordering::Relaxed)),
        }
    }
}

impl Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PayloadBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PayloadBuf({:?})", self.as_slice())
    }
}

impl From<Vec<u8>> for PayloadBuf {
    fn from(v: Vec<u8>) -> PayloadBuf {
        if v.is_empty() {
            return PayloadBuf::empty();
        }
        let len = v.len();
        PayloadBuf {
            data: Arc::new(v),
            off: 0,
            len,
            sum: AtomicU32::new(SUM_UNSET),
        }
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(v: &[u8]) -> PayloadBuf {
        PayloadBuf::from(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for PayloadBuf {
    fn from(v: [u8; N]) -> PayloadBuf {
        PayloadBuf::from(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for PayloadBuf {
    fn from(v: &[u8; N]) -> PayloadBuf {
        PayloadBuf::from(v.to_vec())
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &PayloadBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadBuf {}

impl PartialEq<[u8]> for PayloadBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for PayloadBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PayloadBuf> for Vec<u8> {
    fn eq(&self, other: &PayloadBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for PayloadBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for PayloadBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    #[test]
    fn empty_shares_one_allocation() {
        let a = PayloadBuf::empty();
        let b = PayloadBuf::from(Vec::new());
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn clone_shares_backing_storage() {
        let a = PayloadBuf::from(b"hello world".to_vec());
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_and_correct() {
        let a = PayloadBuf::from(b"hello world".to_vec());
        let hello = a.slice(0..5);
        let world = a.slice(6..11);
        assert!(Arc::ptr_eq(&a.data, &hello.data));
        assert_eq!(hello, b"hello");
        assert_eq!(world, b"world");
        assert_eq!(world.slice(1..4), b"orl");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = PayloadBuf::from(b"abc".to_vec());
        let _ = a.slice(0..4);
    }

    #[test]
    fn make_mut_copies_only_when_shared() {
        let mut a = PayloadBuf::from(b"abc".to_vec());
        let before = Arc::as_ptr(&a.data);
        a.make_mut()[0] = b'x';
        assert_eq!(
            Arc::as_ptr(&a.data),
            before,
            "unique buffer mutates in place"
        );

        let b = a.clone();
        a.make_mut()[0] = b'y';
        assert_eq!(a, b"ybc");
        assert_eq!(b, b"xbc", "shared clone must not see the write");
    }

    #[test]
    fn make_mut_on_a_window_reowns_just_the_view() {
        let a = PayloadBuf::from(b"hello world".to_vec());
        let mut w = a.slice(6..11);
        w.make_mut()[0] = b'W';
        assert_eq!(w, b"World");
        assert_eq!(a, b"hello world");
    }

    #[test]
    fn ones_sum_matches_direct_computation_and_survives_clone() {
        let a = PayloadBuf::from(b"GET / HTTP/1.1\r\n\r\n".to_vec());
        let expect = ones_complement_sum(a.as_slice());
        assert_eq!(a.ones_sum(), expect);
        let b = a.clone();
        assert_eq!(b.sum.load(Ordering::Relaxed), u32::from(expect));
        assert_eq!(b.ones_sum(), expect);
    }

    #[test]
    fn ones_sum_invalidated_by_mutation() {
        let mut a = PayloadBuf::from(b"aaaa".to_vec());
        let before = a.ones_sum();
        a.make_mut()[0] = b'z';
        let after = a.ones_sum();
        assert_ne!(before, after);
        assert_eq!(after, ones_complement_sum(b"zaaa"));
    }

    #[test]
    fn sub_slice_sums_are_not_inherited() {
        let a = PayloadBuf::from(b"abcdef".to_vec());
        let _ = a.ones_sum();
        let s = a.slice(1..4);
        assert_eq!(s.ones_sum(), ones_complement_sum(b"bcd"));
        // A whole-view slice may inherit the cache — and must be right.
        let whole = a.slice(0..6);
        assert_eq!(whole.ones_sum(), ones_complement_sum(b"abcdef"));
    }
}
