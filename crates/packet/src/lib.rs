//! # packet — IPv4/TCP/UDP packet model for Geneva-style manipulation
//!
//! This crate provides the wire-format substrate for the rest of the
//! workspace: parsing, building, and serializing IPv4 packets carrying TCP
//! or UDP segments, with correct (and deliberately corruptible) checksums.
//!
//! The design goals mirror what the Geneva engine (see the `geneva` crate)
//! needs from a packet model:
//!
//! * Every header field is individually readable and writable, including
//!   fields that are normally derived (checksums, lengths, data offset) —
//!   Geneva's `tamper` action must be able to set them to arbitrary or
//!   random values.
//! * Serialization can either recompute derived fields or preserve
//!   whatever (possibly invalid) values are stored, because "insertion
//!   packets" with bad checksums are a first-class evasion primitive
//!   (Bock et al., SIGCOMM 2020, §7).
//! * Field access is also available by *name* through
//!   [`field::FieldRef`], matching Geneva's `PROTO:field` syntax
//!   (e.g. `TCP:flags`, `IP:ttl`).
//!
//! The model is deliberately simulator-grade rather than kernel-grade: it
//! covers exactly the surface the paper's strategies manipulate (IPv4,
//! TCP incl. options, UDP) and validates the invariants censors and
//! endpoints check (checksums, lengths, flag combinations).
//!
//! ```
//! use packet::{Packet, TcpFlags, FieldRef, FieldValue};
//!
//! let mut pkt = Packet::tcp([10,0,0,1], 40000, [93,184,216,34], 80,
//!                           TcpFlags::PSH_ACK, 1001, 9001,
//!                           b"GET / HTTP/1.1\r\n\r\n".to_vec());
//! pkt.finalize();
//! assert!(pkt.checksums_ok());
//!
//! // Geneva-style named field access:
//! let window = FieldRef::parse("TCP:window").unwrap();
//! window.set(&mut pkt, &FieldValue::Num(10)).unwrap();
//! assert_eq!(pkt.tcp_header().unwrap().window, 10);
//!
//! // Round-trips through wire bytes:
//! let parsed = Packet::parse(&pkt.serialize()).unwrap();
//! assert_eq!(parsed.payload, pkt.payload);
//! ```

#![forbid(unsafe_code)]

pub mod appfield;
pub mod bytes;
pub mod checksum;
pub mod field;
pub mod flags;
pub mod ipv4;
pub mod ipv6;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use bytes::PayloadBuf;
pub use field::{FieldRef, FieldValue, Proto};
pub use flags::TcpFlags;
pub use ipv4::Ipv4Header;
pub use ipv6::Ipv6Header;
pub use packet::{FlowKey, Packet, Transport};
pub use tcp::{TcpHeader, TcpOption};
pub use udp::UdpHeader;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing or serializing packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The byte buffer was shorter than the fixed header demands.
    Truncated {
        /// Which layer was being parsed.
        layer: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        got: usize,
    },
    /// A length or offset field describes a layout the buffer can't hold.
    BadLength {
        /// Which layer was being parsed.
        layer: &'static str,
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
    /// The IP `version` nibble was not 4.
    BadVersion(u8),
    /// An unknown field name was used in named field access.
    UnknownField(String),
    /// A field value was out of range for the target field.
    ValueOutOfRange {
        /// Field that rejected the value.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated { layer, needed, got } => {
                write!(f, "{layer}: truncated (needed {needed} bytes, got {got})")
            }
            Error::BadLength { layer, what } => write!(f, "{layer}: bad length ({what})"),
            Error::BadVersion(v) => write!(f, "bad IP version {v}"),
            Error::UnknownField(name) => write!(f, "unknown field {name}"),
            Error::ValueOutOfRange { field, value } => {
                write!(f, "value {value} out of range for field {field}")
            }
        }
    }
}

impl std::error::Error for Error {}
