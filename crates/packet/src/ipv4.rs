//! IPv4 header: parse, build, serialize.
//!
//! All fields are plain public data so the Geneva engine can tamper with
//! any of them, including normally-derived ones. Serialization offers a
//! choice between recomputing derived fields (`serialize`) and emitting
//! stored values verbatim (`serialize_raw`) — the latter is what lets a
//! strategy ship a deliberately bad checksum or length.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::checksum::{fold, incremental_update, internet_checksum, ones_complement_sum};
use crate::{Error, Result};

/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// A parsed (or constructed) IPv4 header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Version nibble; always 4 for packets we build, but tamperable.
    pub version: u8,
    /// Header length in 32-bit words (5 without options).
    pub ihl: u8,
    /// DSCP/ECN byte (historically ToS).
    pub tos: u8,
    /// Total length of the datagram in bytes (header + payload).
    pub total_length: u16,
    /// Identification field, used for fragment reassembly.
    pub identification: u16,
    /// Reserved/DF/MF control bits (top 3 bits of the flags+offset word).
    pub flags: u8,
    /// Fragment offset in 8-byte units (low 13 bits of the same word).
    pub fragment_offset: u16,
    /// Time to live; decremented at every simulated hop.
    pub ttl: u8,
    /// Payload protocol ([`PROTO_TCP`] or [`PROTO_UDP`] here).
    pub protocol: u8,
    /// Header checksum as stored; may be deliberately wrong.
    pub checksum: u16,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// Raw bytes of IP options, if any (kept opaque).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// Don't Fragment control bit.
    pub const FLAG_DF: u8 = 0b010;
    /// More Fragments control bit.
    pub const FLAG_MF: u8 = 0b001;

    /// A fresh header with sane defaults (TTL 64, DF set, no options).
    /// `total_length` must be fixed up at serialize time or via
    /// [`Ipv4Header::set_payload_len`].
    pub fn new(src: [u8; 4], dst: [u8; 4], protocol: u8) -> Self {
        Ipv4Header {
            version: 4,
            ihl: 5,
            tos: 0,
            total_length: 20,
            identification: 0,
            flags: Self::FLAG_DF,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            checksum: 0,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes as described by `ihl`.
    pub fn header_len(&self) -> usize {
        usize::from(self.ihl) * 4
    }

    /// Set `total_length` from a payload byte count.
    pub fn set_payload_len(&mut self, payload_len: usize) {
        self.total_length = (self.header_len() + payload_len) as u16;
    }

    /// True when the MF bit or a nonzero fragment offset marks this
    /// header as part of a fragmented datagram.
    pub fn is_fragment(&self) -> bool {
        self.fragment_offset != 0 || self.flags & Self::FLAG_MF != 0
    }

    /// Parse a header from the front of `data`. Returns the header and
    /// the number of bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, usize)> {
        if data.len() < 20 {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: 20,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(Error::BadVersion(version));
        }
        let ihl = data[0] & 0x0F;
        let header_len = usize::from(ihl) * 4;
        if ihl < 5 {
            return Err(Error::BadLength {
                layer: "ipv4",
                what: "ihl < 5",
            });
        }
        if data.len() < header_len {
            return Err(Error::Truncated {
                layer: "ipv4",
                needed: header_len,
                got: data.len(),
            });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        let header = Ipv4Header {
            version,
            ihl,
            tos: data[1],
            total_length: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            flags: (flags_frag >> 13) as u8,
            fragment_offset: flags_frag & 0x1FFF,
            ttl: data[8],
            protocol: data[9],
            checksum: u16::from_be_bytes([data[10], data[11]]),
            src: [data[12], data[13], data[14], data[15]],
            dst: [data[16], data[17], data[18], data[19]],
            options: data[20..header_len].to_vec(),
        };
        Ok((header, header_len))
    }

    /// Serialize with `ihl`, `total_length` (given the payload length)
    /// and `checksum` recomputed. This is the path normal traffic takes.
    pub fn serialize(&self, payload_len: usize) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(20 + self.options.len() + 3);
        self.serialize_into(payload_len, &mut bytes);
        bytes
    }

    /// [`Ipv4Header::serialize`], appending to a caller-owned buffer so
    /// steady-state serialization reuses memory. Byte-identical output.
    pub fn serialize_into(&self, payload_len: usize, out: &mut Vec<u8>) {
        let start = out.len();
        let ihl = (5 + self.options.len().div_ceil(4)) as u8;
        let total_length = (usize::from(ihl) * 4 + payload_len) as u16;
        out.push((self.version << 4) | (ihl & 0x0F));
        out.push(self.tos);
        out.extend_from_slice(&total_length.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let flags_frag = (u16::from(self.flags & 0b111) << 13) | (self.fragment_offset & 0x1FFF);
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum patched below
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.options);
        while !(out.len() - start).is_multiple_of(4) {
            out.push(0);
        }
        let ck = internet_checksum(&out[start..]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Serialize exactly the stored field values — no recomputation.
    /// Options are zero-padded to a 4-byte boundary.
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(20 + self.options.len() + 3);
        self.serialize_raw_into(&mut bytes);
        bytes
    }

    /// [`Ipv4Header::serialize_raw`], appending to a caller-owned buffer.
    pub fn serialize_raw_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push((self.version << 4) | (self.ihl & 0x0F));
        out.push(self.tos);
        out.extend_from_slice(&self.total_length.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let flags_frag = (u16::from(self.flags & 0b111) << 13) | (self.fragment_offset & 0x1FFF);
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.dst);
        out.extend_from_slice(&self.options);
        while !(out.len() - start).is_multiple_of(4) {
            out.push(0);
        }
    }

    /// Folded ones'-complement sum of the raw serialized header,
    /// computed field-wise without allocating. Every field lands on a
    /// 16-bit boundary of the wire form (options start at byte 20, and
    /// their zero padding contributes nothing), so this equals
    /// `ones_complement_sum(&self.serialize_raw())` exactly.
    pub fn raw_sum(&self) -> u16 {
        let flags_frag = (u16::from(self.flags & 0b111) << 13) | (self.fragment_offset & 0x1FFF);
        let sum = u32::from(u16::from_be_bytes([
            (self.version << 4) | (self.ihl & 0x0F),
            self.tos,
        ])) + u32::from(self.total_length)
            + u32::from(self.identification)
            + u32::from(flags_frag)
            + u32::from(u16::from_be_bytes([self.ttl, self.protocol]))
            + u32::from(self.checksum)
            + u32::from(u16::from_be_bytes([self.src[0], self.src[1]]))
            + u32::from(u16::from_be_bytes([self.src[2], self.src[3]]))
            + u32::from(u16::from_be_bytes([self.dst[0], self.dst[1]]))
            + u32::from(u16::from_be_bytes([self.dst[2], self.dst[3]]))
            + u32::from(ones_complement_sum(&self.options));
        fold(sum)
    }

    /// Does the stored checksum verify over the serialized header?
    pub fn checksum_ok(&self) -> bool {
        self.raw_sum() == 0xFFFF
    }

    /// Decrement TTL by `hops` the way a router does, applying the
    /// RFC 1624 *incremental* checksum update (`HC' = ~(~HC + ~m + m')`).
    ///
    /// Incremental update preserves checksum validity AND invalidity: a
    /// packet that left its origin with a deliberately bad checksum
    /// stays bad across hops — routers never "repair" checksums, which
    /// is what keeps corrupted-checksum insertion packets broken when
    /// they reach the endpoint.
    pub fn decrement_ttl(&mut self, hops: u8) {
        let old_word = (u16::from(self.ttl) << 8) | u16::from(self.protocol);
        self.ttl = self.ttl.saturating_sub(hops);
        let new_word = (u16::from(self.ttl) << 8) | u16::from(self.protocol);
        self.checksum = incremental_update(self.checksum, old_word, new_word);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn sample() -> Ipv4Header {
        let mut h = Ipv4Header::new([192, 168, 0, 1], [10, 0, 0, 2], PROTO_TCP);
        h.identification = 0x1c46;
        h
    }

    #[test]
    fn round_trip_no_options() {
        let h = sample();
        let bytes = h.serialize(100);
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 20);
        assert_eq!(parsed.total_length, 120);
        assert_eq!(parsed.src, h.src);
        assert_eq!(parsed.dst, h.dst);
        assert_eq!(parsed.ttl, 64);
        assert!(parsed.checksum_ok());
    }

    #[test]
    fn round_trip_with_options() {
        let mut h = sample();
        h.options = vec![0x01, 0x01, 0x01]; // three NOPs, padded to 4
        let bytes = h.serialize(0);
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(parsed.ihl, 6);
        assert!(parsed.checksum_ok());
    }

    #[test]
    fn serialize_raw_preserves_bad_checksum() {
        let mut h = sample();
        h.checksum = 0xDEAD;
        let bytes = h.serialize_raw();
        assert_eq!(&bytes[10..12], &[0xDE, 0xAD]);
        let (parsed, _) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed.checksum, 0xDEAD);
        assert!(!parsed.checksum_ok());
    }

    #[test]
    fn parse_rejects_short_buffer() {
        assert!(matches!(
            Ipv4Header::parse(&[0x45; 10]),
            Err(Error::Truncated { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut bytes = sample().serialize(0);
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(Error::BadVersion(6))
        ));
    }

    #[test]
    fn parse_rejects_tiny_ihl() {
        let mut bytes = sample().serialize(0);
        bytes[0] = 0x44; // ihl 4
        assert!(matches!(
            Ipv4Header::parse(&bytes),
            Err(Error::BadLength { layer: "ipv4", .. })
        ));
    }

    #[test]
    fn decrement_ttl_keeps_checksum_valid() {
        let h = sample();
        let bytes = h.serialize(0);
        let (mut parsed, _) = Ipv4Header::parse(&bytes).unwrap();
        assert!(parsed.checksum_ok());
        for hops in [1u8, 3, 7] {
            parsed.decrement_ttl(hops);
            assert!(parsed.checksum_ok(), "after -{hops}");
        }
        assert_eq!(parsed.ttl, 64 - 11);
        let _ = h.serialize(0);
    }

    #[test]
    fn decrement_ttl_keeps_bad_checksum_bad() {
        let h = sample();
        let bytes = h.serialize(0);
        let (mut parsed, _) = Ipv4Header::parse(&bytes).unwrap();
        parsed.checksum ^= 0x0404; // deliberately corrupt
        assert!(!parsed.checksum_ok());
        parsed.decrement_ttl(5);
        assert!(!parsed.checksum_ok(), "routers must not repair checksums");
        let _ = h.serialize(0);
    }

    #[test]
    fn serialize_into_appends_identical_bytes() {
        let mut h = sample();
        h.options = vec![0x01, 0x01, 0x01];
        let fresh = h.serialize(33);
        let mut appended = vec![0xAA, 0xBB]; // pre-existing content survives
        h.serialize_into(33, &mut appended);
        assert_eq!(&appended[..2], &[0xAA, 0xBB]);
        assert_eq!(&appended[2..], &fresh[..]);

        let raw_fresh = h.serialize_raw();
        let mut raw_appended = vec![0xCC];
        h.serialize_raw_into(&mut raw_appended);
        assert_eq!(&raw_appended[1..], &raw_fresh[..]);
    }

    #[test]
    fn raw_sum_matches_serialized_sum() {
        for options in [vec![], vec![0x01], vec![0x01, 0x01, 0x01], vec![7; 8]] {
            let mut h = sample();
            h.options = options;
            h.checksum = 0x1234;
            h.flags = 0xFF; // masking must match serialize_raw's
            h.fragment_offset = 0xFFFF;
            assert_eq!(
                h.raw_sum(),
                crate::checksum::ones_complement_sum(&h.serialize_raw()),
                "options len {}",
                h.options.len()
            );
        }
    }

    #[test]
    fn fragment_bits_round_trip() {
        let mut h = sample();
        h.flags = Ipv4Header::FLAG_MF;
        h.fragment_offset = 185; // 1480 bytes / 8
        let bytes = h.serialize(8);
        let (parsed, _) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed.flags, Ipv4Header::FLAG_MF);
        assert_eq!(parsed.fragment_offset, 185);
        assert!(parsed.is_fragment());
        assert!(!sample().is_fragment());
    }
}
