//! Application-layer tamper fields: `DNS:*` and `FTP:*`.
//!
//! The paper's appendix: "In its original implementation, Geneva's
//! `tamper` supported modifications of IPv4 and TCP; we explain in §4
//! how we extend this to also support … UDP, DNS, and FTP." This
//! module supplies the DNS and FTP field accessors. (IPv6 is a
//! documented non-goal: §4.2 runs every experiment over IPv4.)
//!
//! The codecs here are deliberately minimal — just enough structure to
//! locate and rewrite the tamperable fields — and intentionally
//! self-contained so the `packet` crate stays dependency-free (the
//! full-fidelity DNS/FTP implementations live in the `appproto`
//! crate).
//!
//! Supported fields:
//!
//! * `DNS:id` — the transaction id (16-bit);
//! * `DNS:qname` — the question name; setting it re-encodes the
//!   question section (and fixes the TCP length prefix when the
//!   message is TCP-framed);
//! * `FTP:command` — the first complete CRLF-terminated line of the
//!   payload.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::packet::{Packet, Transport};

/// Where the DNS message sits inside the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DnsFraming {
    /// UDP: the payload is the message.
    Raw,
    /// TCP: two length-prefix bytes, then the message.
    TcpFramed,
}

fn dns_framing(packet: &Packet) -> Option<(DnsFraming, usize)> {
    match packet.transport {
        Transport::Udp(_) => {
            if packet.payload.len() >= 12 {
                Some((DnsFraming::Raw, 0))
            } else {
                None
            }
        }
        Transport::Tcp(_) => {
            if packet.payload.len() >= 14 {
                let framed = u16::from_be_bytes([packet.payload[0], packet.payload[1]]) as usize;
                if packet.payload.len() >= 2 + framed.min(12) {
                    return Some((DnsFraming::TcpFramed, 2));
                }
                None
            } else {
                None
            }
        }
    }
}

/// Decode the QNAME labels at `msg[12..]`; returns (name, label bytes
/// consumed including the root byte).
fn decode_qname(msg: &[u8]) -> Option<(String, usize)> {
    let mut at = 12;
    let mut name = String::new();
    loop {
        let len = usize::from(*msg.get(at)?);
        at += 1;
        if len == 0 {
            break;
        }
        if len > 63 {
            return None;
        }
        let label = msg.get(at..at + len)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(std::str::from_utf8(label).ok()?);
        at += len;
    }
    Some((name, at - 12))
}

fn encode_qname(name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.len() + 2);
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len().min(63) as u8);
        out.extend_from_slice(&label.as_bytes()[..label.len().min(63)]);
    }
    out.push(0);
    out
}

/// Read `DNS:id`.
pub fn dns_id(packet: &Packet) -> Option<u16> {
    let (_, off) = dns_framing(packet)?;
    let msg = packet.payload.get(off..)?;
    Some(u16::from_be_bytes([*msg.first()?, *msg.get(1)?]))
}

/// Write `DNS:id`.
pub fn set_dns_id(packet: &mut Packet, id: u16) -> bool {
    let Some((_, off)) = dns_framing(packet) else {
        return false;
    };
    if packet.payload.len() < off + 2 {
        return false;
    }
    packet.payload.make_mut()[off..off + 2].copy_from_slice(&id.to_be_bytes());
    true
}

/// Read `DNS:qname`.
pub fn dns_qname(packet: &Packet) -> Option<String> {
    let (_, off) = dns_framing(packet)?;
    decode_qname(&packet.payload[off..]).map(|(name, _)| name)
}

/// Write `DNS:qname`, re-encoding the question and (for TCP framing)
/// the length prefix.
pub fn set_dns_qname(packet: &mut Packet, name: &str) -> bool {
    let Some((framing, off)) = dns_framing(packet) else {
        return false;
    };
    let msg = &packet.payload[off..];
    let Some((_, old_len)) = decode_qname(msg) else {
        return false;
    };
    let mut rebuilt = Vec::with_capacity(packet.payload.len());
    rebuilt.extend_from_slice(&msg[..12]);
    rebuilt.extend_from_slice(&encode_qname(name));
    rebuilt.extend_from_slice(&msg[12 + old_len..]);
    packet.payload = match framing {
        DnsFraming::Raw => rebuilt,
        DnsFraming::TcpFramed => {
            let mut framed = Vec::with_capacity(rebuilt.len() + 2);
            framed.extend_from_slice(&(rebuilt.len() as u16).to_be_bytes());
            framed.extend_from_slice(&rebuilt);
            framed
        }
    }
    .into();
    true
}

/// Read `FTP:command` — the first complete CRLF-terminated line.
pub fn ftp_command(packet: &Packet) -> Option<String> {
    let text = std::str::from_utf8(&packet.payload).ok()?;
    let end = text.find("\r\n")?;
    Some(text[..end].to_string())
}

/// Write `FTP:command`, replacing the first line (appends CRLF if the
/// payload had none).
pub fn set_ftp_command(packet: &mut Packet, command: &str) -> bool {
    let text = String::from_utf8_lossy(&packet.payload).into_owned();
    let rest = match text.find("\r\n") {
        Some(end) => text[end..].to_string(),
        None => "\r\n".to_string(),
    };
    packet.payload = format!("{command}{rest}").into_bytes().into();
    true
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::flags::TcpFlags;

    /// A raw DNS query message for `name` (id 0x1234, one A question).
    fn dns_query(name: &str) -> Vec<u8> {
        let mut msg = vec![0x12, 0x34, 0x01, 0x00, 0, 1, 0, 0, 0, 0, 0, 0];
        msg.extend_from_slice(&encode_qname(name));
        msg.extend_from_slice(&[0, 1, 0, 1]);
        msg
    }

    fn udp_query(name: &str) -> Packet {
        let mut p = Packet::udp([1; 4], 40000, [8, 8, 8, 8], 53, dns_query(name));
        p.finalize();
        p
    }

    fn tcp_query(name: &str) -> Packet {
        let msg = dns_query(name);
        let mut framed = (msg.len() as u16).to_be_bytes().to_vec();
        framed.extend_from_slice(&msg);
        let mut p = Packet::tcp(
            [1; 4],
            40000,
            [8, 8, 8, 8],
            53,
            TcpFlags::PSH_ACK,
            1,
            2,
            framed,
        );
        p.finalize();
        p
    }

    #[test]
    fn dns_fields_over_udp() {
        let mut p = udp_query("www.wikipedia.org");
        assert_eq!(dns_id(&p), Some(0x1234));
        assert_eq!(dns_qname(&p).as_deref(), Some("www.wikipedia.org"));
        assert!(set_dns_id(&mut p, 0xBEEF));
        assert_eq!(dns_id(&p), Some(0xBEEF));
        assert!(set_dns_qname(&mut p, "example.org"));
        assert_eq!(dns_qname(&p).as_deref(), Some("example.org"));
        // Question tail (QTYPE/QCLASS) preserved.
        assert!(p.payload.ends_with(&[0, 1, 0, 1]));
    }

    #[test]
    fn dns_fields_over_tcp_fix_the_length_prefix() {
        let mut p = tcp_query("www.wikipedia.org");
        assert_eq!(dns_qname(&p).as_deref(), Some("www.wikipedia.org"));
        assert!(set_dns_qname(&mut p, "a.b"));
        assert_eq!(dns_qname(&p).as_deref(), Some("a.b"));
        let framed = u16::from_be_bytes([p.payload[0], p.payload[1]]) as usize;
        assert_eq!(framed, p.payload.len() - 2, "length prefix refreshed");
    }

    #[test]
    fn non_dns_payloads_are_rejected() {
        let mut p = Packet::tcp(
            [1; 4],
            1,
            [2; 4],
            2,
            TcpFlags::PSH_ACK,
            1,
            2,
            b"short".to_vec(),
        );
        assert_eq!(dns_qname(&p), None);
        assert!(!set_dns_qname(&mut p, "x"));
        assert_eq!(p.payload, b"short");
    }

    #[test]
    fn ftp_command_round_trip() {
        let mut p = Packet::tcp(
            [1; 4],
            40000,
            [2; 4],
            21,
            TcpFlags::PSH_ACK,
            1,
            2,
            b"RETR ultrasurf\r\nQUIT\r\n".to_vec(),
        );
        assert_eq!(ftp_command(&p).as_deref(), Some("RETR ultrasurf"));
        assert!(set_ftp_command(&mut p, "RETR readme.txt"));
        assert_eq!(p.payload, b"RETR readme.txt\r\nQUIT\r\n");
        assert_eq!(ftp_command(&p).as_deref(), Some("RETR readme.txt"));
    }

    #[test]
    fn ftp_command_on_lineless_payload_appends_crlf() {
        let mut p = Packet::tcp(
            [1; 4],
            1,
            [2; 4],
            21,
            TcpFlags::PSH_ACK,
            1,
            2,
            b"RETR ult".to_vec(),
        );
        assert_eq!(ftp_command(&p), None, "no complete line yet");
        assert!(set_ftp_command(&mut p, "NOOP"));
        assert_eq!(p.payload, b"NOOP\r\n");
    }
}
