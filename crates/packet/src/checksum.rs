//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header sum.
//!
//! Both the IPv4 header checksum and the TCP/UDP checksums are the ones'
//! complement of the ones' complement sum of 16-bit words. Getting this
//! right matters twice over in this workspace: endpoints *drop* packets
//! whose checksum is wrong, while several censors *accept* them — the
//! asymmetry that makes "insertion packets" work (paper §7).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
/// Ones' complement sum over a byte slice, padding an odd trailing byte
/// with a zero low octet, folded to 16 bits but **not** complemented.
pub fn ones_complement_sum(data: &[u8]) -> u16 {
    // 2¹⁶ words of 0xFFFF still fit the 32-bit accumulator without
    // wrapping; anything near an IP datagram is far inside the bound.
    debug_assert!(
        data.len() <= 0x2_0000,
        "{} bytes would overflow the 32-bit checksum accumulator",
        data.len()
    );
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    fold(sum)
}

/// Fold a 32-bit accumulator down to 16 bits with end-around carry.
pub fn fold(mut sum: u32) -> u16 {
    let before = sum;
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    // End-around carry is reduction mod 2¹⁶ − 1 (because 2¹⁶ ≡ 1), so
    // folding must preserve the accumulator's residue.
    debug_assert_eq!(
        sum % 0xFFFF,
        before % 0xFFFF,
        "end-around carry changed the ones' complement value"
    );
    sum as u16
}

/// RFC 1071 Internet checksum of a buffer (complemented, ready to store).
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data)
}

/// TCP/UDP checksum over the IPv4 pseudo-header plus the transport
/// segment (`segment` = transport header with a zeroed checksum field,
/// followed by the payload).
pub fn pseudo_header_checksum(src: [u8; 4], dst: [u8; 4], protocol: u8, segment: &[u8]) -> u16 {
    // The pseudo-header length field is 16 bits; a longer segment
    // would silently checksum as its length mod 2¹⁶.
    debug_assert!(
        segment.len() <= usize::from(u16::MAX),
        "transport segment of {} bytes overflows the pseudo-header length field",
        segment.len()
    );
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src);
    pseudo[4..8].copy_from_slice(&dst);
    pseudo[9] = protocol;
    let len = segment.len() as u16;
    pseudo[10..12].copy_from_slice(&len.to_be_bytes());

    let sum = u32::from(ones_complement_sum(&pseudo)) + u32::from(ones_complement_sum(segment));
    !fold(sum)
}

/// The ones'-complement sum of the 12-byte IPv4 pseudo-header alone
/// (folded, not complemented). Combined with separately-computed header
/// and payload sums via [`fold`], this reproduces
/// [`pseudo_header_checksum`] without materializing the segment —
/// ones'-complement addition is associative over 16-bit words, and both
/// the pseudo-header and every transport header we emit are even-length,
/// so the decomposition is exact.
pub fn pseudo_sum(src: [u8; 4], dst: [u8; 4], protocol: u8, segment_len: usize) -> u16 {
    debug_assert!(
        segment_len <= usize::from(u16::MAX),
        "transport segment of {segment_len} bytes overflows the pseudo-header length field",
    );
    let sum = u32::from(u16::from_be_bytes([src[0], src[1]]))
        + u32::from(u16::from_be_bytes([src[2], src[3]]))
        + u32::from(u16::from_be_bytes([dst[0], dst[1]]))
        + u32::from(u16::from_be_bytes([dst[2], dst[3]]))
        + u32::from(protocol)
        + u32::from(segment_len as u16); // mod 2¹⁶, like the wire field
    fold(sum)
}

/// RFC 1624 incremental checksum update: given a stored checksum and a
/// 16-bit word of the covered data changing from `old` to `new`, return
/// the updated checksum (`HC' = ~(~HC + ~m + m')`, eqn. 3).
///
/// The update is *relative*: it preserves checksum validity AND
/// invalidity. Callers that need "recompute" semantics (e.g. Geneva's
/// `tamper`, which repairs checksums) must only take this path when the
/// stored checksum already verifies.
pub fn incremental_update(checksum: u16, old: u16, new: u16) -> u16 {
    !fold(u32::from(!checksum) + u32::from(!old) + u32::from(new))
}

/// [`incremental_update`] for a 32-bit field (two adjacent 16-bit words,
/// e.g. TCP `seq`/`ack`).
pub fn incremental_update32(checksum: u16, old: u32, new: u32) -> u16 {
    let sum = u32::from(!checksum)
        + u32::from(!((old >> 16) as u16))
        + u32::from(!((old & 0xFFFF) as u16))
        + u32::from((new >> 16) as u16)
        + u32::from((new & 0xFFFF) as u16);
    !fold(sum)
}

/// Verify a buffer that *includes* its checksum field: the ones'
/// complement sum over the whole buffer must be `0xFFFF`.
pub fn verifies(data: &[u8]) -> bool {
    ones_complement_sum(data) == 0xFFFF
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // Example from RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(ones_complement_sum(&[0xab]), 0xab00);
        assert_eq!(ones_complement_sum(&[0x01, 0x02, 0x03]), 0x0102 + 0x0300);
    }

    #[test]
    fn empty_buffer_sums_to_zero() {
        assert_eq!(ones_complement_sum(&[]), 0);
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn checksum_inserted_into_buffer_verifies() {
        let mut header = vec![
            0x45, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xac, 0x10,
            0x0a, 0x63, 0xac, 0x10, 0x0a, 0x0c,
        ];
        let ck = internet_checksum(&header);
        header[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verifies(&header));
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic example header from Wikipedia's IPv4 article; checksum
        // field zeroed, expected checksum 0xB861.
        let header = [
            0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xB861);
    }

    #[test]
    fn pseudo_header_checksum_round_trip() {
        // Build a tiny fake TCP segment (20-byte header, checksum zeroed)
        // and verify that inserting the computed checksum makes the sum
        // over pseudo-header + segment verify.
        let src = [10, 0, 0, 1];
        let dst = [10, 0, 0, 2];
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&443u16.to_be_bytes());
        seg[2..4].copy_from_slice(&51000u16.to_be_bytes());
        seg[12] = 0x50; // data offset 5
        seg[13] = 0x12; // SYN+ACK
        seg[20..24].copy_from_slice(b"data");

        let ck = pseudo_header_checksum(src, dst, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        // Recomputing over the segment with the checksum in place should
        // now produce zero (property of ones' complement arithmetic).
        assert_eq!(pseudo_header_checksum(src, dst, 6, &seg), 0);
    }

    #[test]
    fn repeated_end_around_carries_fold_correctly() {
        // 2048 words of 0xFFFF sum to 0x07FF_F800, which needs more
        // than one fold pass; the residue is 0, so the folded ones'
        // complement value is 0xFFFF (the non-zero representation).
        assert_eq!(ones_complement_sum(&vec![0xFF; 4096]), 0xFFFF);
    }

    #[test]
    fn pseudo_sum_decomposition_matches_monolithic() {
        let src = [172, 16, 10, 99];
        let dst = [93, 184, 216, 34];
        let header = [0x13u8, 0x88, 0xc6, 0x38, 0x00, 0x19, 0x00, 0x00];
        let payload = b"hello pseudo-header decomposition";
        let mut segment = header.to_vec();
        segment.extend_from_slice(payload);
        let whole = pseudo_header_checksum(src, dst, 17, &segment);
        let parts = !fold(
            u32::from(pseudo_sum(src, dst, 17, segment.len()))
                + u32::from(ones_complement_sum(&header))
                + u32::from(ones_complement_sum(payload)),
        );
        assert_eq!(whole, parts);
    }

    #[test]
    fn incremental_update_matches_full_recompute() {
        // An IPv4-style header with the checksum at word 5.
        let mut header: Vec<u8> = vec![
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let ck = internet_checksum(&header);
        header[10..12].copy_from_slice(&ck.to_be_bytes());

        // Mutate every 16-bit word (except the checksum itself) through
        // a few representative values, comparing incremental vs full.
        for word in (0..header.len() / 2).filter(|w| *w != 5) {
            for new in [0x0000u16, 0x0001, 0x7FFF, 0xFFFE, 0xFFFF] {
                let old = u16::from_be_bytes([header[word * 2], header[word * 2 + 1]]);
                let inc = incremental_update(ck, old, new);

                let mut mutated = header.clone();
                mutated[word * 2..word * 2 + 2].copy_from_slice(&new.to_be_bytes());
                mutated[10..12].copy_from_slice(&[0, 0]);
                let full = internet_checksum(&mutated);
                assert_eq!(inc, full, "word {word} -> {new:#06x}");
            }
        }
    }

    #[test]
    fn incremental_update32_matches_two_word_updates() {
        let ck = 0x1234u16;
        let old = 0xDEAD_BEEFu32;
        let new = 0x0102_0304u32;
        let two_step = incremental_update(
            incremental_update(ck, (old >> 16) as u16, (new >> 16) as u16),
            (old & 0xFFFF) as u16,
            (new & 0xFFFF) as u16,
        );
        assert_eq!(incremental_update32(ck, old, new), two_step);
    }

    #[test]
    fn incremental_update_preserves_invalidity() {
        let mut header: Vec<u8> = vec![
            0x45, 0x00, 0x00, 0x14, 0x00, 0x01, 0x00, 0x00, 0x40, 0x06, 0x00, 0x00, 1, 2, 3, 4, 5,
            6, 7, 8,
        ];
        let good = internet_checksum(&header);
        let bad = good ^ 0x0101;
        header[10..12].copy_from_slice(&bad.to_be_bytes());
        // Update the TTL/protocol word incrementally on the *bad* sum.
        let old = u16::from_be_bytes([header[8], header[9]]);
        let updated = incremental_update(bad, old, 0x3F06);
        header[8..10].copy_from_slice(&0x3F06u16.to_be_bytes());
        header[10..12].copy_from_slice(&updated.to_be_bytes());
        assert!(!verifies(&header), "the error offset must be preserved");
    }

    #[test]
    fn corrupting_any_byte_breaks_verification() {
        let mut header = vec![0x45, 0x00, 0x00, 0x14, 0x00, 0x01, 0x00, 0x00, 0x40, 0x06];
        header.extend_from_slice(&[0, 0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let ck = internet_checksum(&header);
        header[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verifies(&header));
        for i in 0..header.len() {
            let mut bad = header.clone();
            bad[i] ^= 0x01;
            // Flipping a single bit must always be detected.
            assert!(!verifies(&bad), "flip at byte {i} went undetected");
        }
    }
}
