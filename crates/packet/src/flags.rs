//! TCP flag bitfield with Geneva-compatible string forms.
//!
//! Geneva names flag sets with single letters concatenated in a canonical
//! order (`"SA"` for SYN+ACK, `"R"` for RST, `""` for no flags). Both the
//! DSL parser and the censor models compare flags constantly, so this type
//! is `Copy` and all operations are branch-light.

/// The nine TCP flag bits (including ECN's NS bit, carried in the
/// reserved area of the offset byte; Geneva does not manipulate NS but we
/// keep the low eight classic bits addressable).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgment number is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: the urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// ECE: ECN echo.
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CWR: congestion window reduced.
    pub const CWR: TcpFlags = TcpFlags(0x80);

    /// No flags set — Geneva's `tamper{TCP:flags:replace:}` ("Null
    /// Flags", paper Strategy 11).
    pub const NONE: TcpFlags = TcpFlags(0);
    /// SYN+ACK, the packet every server-side strategy triggers on.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH+ACK, the shape of a data-bearing request packet.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    /// FIN+PSH+ACK, the shape of Airtel's and Kazakhstan's block-page
    /// injection packets.
    pub const FIN_PSH_ACK: TcpFlags = TcpFlags(0x19);
    /// RST+ACK, a common censor tear-down shape.
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Is this a bare SYN (SYN set, ACK clear)?
    pub fn is_syn(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }

    /// Is this a SYN+ACK?
    pub fn is_syn_ack(self) -> bool {
        self.contains(TcpFlags::SYN) && self.contains(TcpFlags::ACK)
    }

    /// Parse Geneva's letter string (`"SA"`, `"R"`, `""`, …).
    ///
    /// Letters may appear in any order; unknown letters yield `None`.
    /// `N` maps to ECE and `C` to CWR following Geneva's conventions
    /// (Geneva uses scapy letters: F S R P A U E C).
    pub fn from_geneva(s: &str) -> Option<TcpFlags> {
        let mut flags = TcpFlags::NONE;
        for ch in s.chars() {
            flags = flags
                | match ch {
                    'F' => TcpFlags::FIN,
                    'S' => TcpFlags::SYN,
                    'R' => TcpFlags::RST,
                    'P' => TcpFlags::PSH,
                    'A' => TcpFlags::ACK,
                    'U' => TcpFlags::URG,
                    'E' => TcpFlags::ECE,
                    'C' => TcpFlags::CWR,
                    _ => return None,
                };
        }
        Some(flags)
    }

    /// Render in Geneva letter form, canonical order `FSRPAUEC`.
    pub fn to_geneva(self) -> String {
        let mut s = String::new();
        for (bit, ch) in [
            (TcpFlags::FIN, 'F'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::URG, 'U'),
            (TcpFlags::ECE, 'E'),
            (TcpFlags::CWR, 'C'),
        ] {
            if self.contains(bit) {
                s.push(ch);
            }
        }
        s
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl std::fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == 0 {
            return write!(f, "TcpFlags(∅)");
        }
        write!(f, "TcpFlags({})", self.to_geneva())
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (bit, name) in [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
            (TcpFlags::ECE, "ECE"),
            (TcpFlags::CWR, "CWR"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, "/")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(no flags)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn geneva_round_trip_all_combinations() {
        for bits in 0u16..=0xFF {
            let flags = TcpFlags(bits as u8);
            let s = flags.to_geneva();
            assert_eq!(TcpFlags::from_geneva(&s), Some(flags), "bits {bits:#04x}");
        }
    }

    #[test]
    fn parse_out_of_order_letters() {
        assert_eq!(TcpFlags::from_geneva("AS"), Some(TcpFlags::SYN_ACK));
        assert_eq!(TcpFlags::from_geneva("SA"), Some(TcpFlags::SYN_ACK));
    }

    #[test]
    fn empty_string_is_null_flags() {
        assert_eq!(TcpFlags::from_geneva(""), Some(TcpFlags::NONE));
        assert_eq!(TcpFlags::NONE.to_geneva(), "");
    }

    #[test]
    fn unknown_letter_rejected() {
        assert_eq!(TcpFlags::from_geneva("SAX"), None);
    }

    #[test]
    fn predicates() {
        assert!(TcpFlags::SYN.is_syn());
        assert!(!TcpFlags::SYN_ACK.is_syn());
        assert!(TcpFlags::SYN_ACK.is_syn_ack());
        assert!(TcpFlags::PSH_ACK.contains(TcpFlags::ACK));
        assert!(!TcpFlags::PSH_ACK.contains(TcpFlags::SYN));
        assert!(TcpFlags::FIN_PSH_ACK.intersects(TcpFlags::FIN));
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN/ACK");
        assert_eq!(TcpFlags::NONE.to_string(), "(no flags)");
    }
}
