//! UDP header: parse, build, serialize.
//!
//! UDP is carried along mostly for completeness of the Geneva field
//! space (the original Geneva supports `UDP:*` fields) and for DNS
//! experiments that contrast UDP with the paper's DNS-over-TCP focus.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::bytes::PayloadBuf;
use crate::checksum::{fold, ones_complement_sum, pseudo_sum};
use crate::{Error, Result};

/// A parsed (or constructed) UDP header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload as stored; may be tampered.
    pub length: u16,
    /// Checksum as stored; may be deliberately wrong (0 = disabled).
    pub checksum: u16,
}

impl UdpHeader {
    /// A fresh header; `length` is fixed at serialize time.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: 8,
            checksum: 0,
        }
    }

    /// Parse from the front of `data`; returns header and bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(UdpHeader, usize)> {
        if data.len() < 8 {
            return Err(Error::Truncated {
                layer: "udp",
                needed: 8,
                got: data.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length: u16::from_be_bytes([data[4], data[5]]),
                checksum: u16::from_be_bytes([data[6], data[7]]),
            },
            8,
        ))
    }

    /// Serialize with `length` and `checksum` recomputed.
    pub fn serialize(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + payload.len());
        self.serialize_into_parts(src, dst, payload, ones_complement_sum(payload), &mut out);
        out
    }

    /// [`UdpHeader::serialize`], appending to a caller-owned buffer and
    /// reusing the payload's cached checksum sum. Byte-identical output.
    pub fn serialize_into(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload: &PayloadBuf,
        out: &mut Vec<u8>,
    ) {
        self.serialize_into_parts(src, dst, payload, payload.ones_sum(), out);
    }

    fn serialize_into_parts(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload: &[u8],
        payload_sum: u16,
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        let length = (8 + payload.len()) as u16;
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum patched below
        out.extend_from_slice(payload);
        let ck = self.checksum_for(src, dst, payload_sum, payload.len());
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
    }

    /// The checksum [`UdpHeader::serialize`] would store (including the
    /// RFC 768 zero-means-disabled substitution), computed from a
    /// pre-folded payload sum without materializing the segment.
    pub fn checksum_for(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload_sum: u16,
        payload_len: usize,
    ) -> u16 {
        let length = (8 + payload_len) as u16;
        let sum = u32::from(pseudo_sum(
            src,
            dst,
            crate::ipv4::PROTO_UDP,
            8 + payload_len,
        )) + u32::from(self.src_port)
            + u32::from(self.dst_port)
            + u32::from(length)
            + u32::from(payload_sum);
        let ck = !fold(sum);
        if ck == 0 {
            0xFFFF // RFC 768: transmitted-zero means "no checksum"
        } else {
            ck
        }
    }

    /// Serialize the stored fields verbatim.
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(8);
        self.serialize_raw_into(&mut bytes);
        bytes
    }

    /// [`UdpHeader::serialize_raw`], appending to a caller-owned buffer.
    pub fn serialize_raw_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
    }

    /// Verify the stored checksum (`0` counts as valid per RFC 768).
    pub fn checksum_ok(&self, src: [u8; 4], dst: [u8; 4], payload: &[u8]) -> bool {
        self.checksum_ok_parts(src, dst, ones_complement_sum(payload), payload.len())
    }

    /// [`UdpHeader::checksum_ok`] from a pre-folded payload sum.
    pub fn checksum_ok_parts(
        &self,
        src: [u8; 4],
        dst: [u8; 4],
        payload_sum: u16,
        payload_len: usize,
    ) -> bool {
        if self.checksum == 0 {
            return true;
        }
        let sum = u32::from(pseudo_sum(
            src,
            dst,
            crate::ipv4::PROTO_UDP,
            8 + payload_len,
        )) + u32::from(self.src_port)
            + u32::from(self.dst_port)
            + u32::from(self.length)
            + u32::from(self.checksum)
            + u32::from(payload_sum);
        fold(sum) == 0xFFFF
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    const SRC: [u8; 4] = [1, 2, 3, 4];
    const DST: [u8; 4] = [5, 6, 7, 8];

    #[test]
    fn round_trip() {
        let h = UdpHeader::new(53, 40000);
        let bytes = h.serialize(SRC, DST, b"query");
        let (parsed, consumed) = UdpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 8);
        assert_eq!(parsed.src_port, 53);
        assert_eq!(parsed.length, 13);
        assert!(parsed.checksum_ok(SRC, DST, b"query"));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut h = UdpHeader::new(1, 2);
        h.checksum = 0;
        assert!(h.checksum_ok(SRC, DST, b"anything"));
    }

    #[test]
    fn wrong_checksum_rejected() {
        let h = UdpHeader::new(53, 40000);
        let bytes = h.serialize(SRC, DST, b"query");
        let (parsed, _) = UdpHeader::parse(&bytes).unwrap();
        assert!(!parsed.checksum_ok(SRC, DST, b"queryX"));
    }

    #[test]
    fn truncated_rejected() {
        assert!(UdpHeader::parse(&[0; 7]).is_err());
    }
}
