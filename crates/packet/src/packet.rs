//! The composite [`Packet`]: one IPv4 datagram carrying TCP or UDP.
//!
//! This is the unit the whole workspace passes around — the Geneva
//! engine rewrites it, the simulator routes it, endpoints and censors
//! parse it. A `Packet` keeps headers in structured form so field access
//! is cheap, and only flattens to bytes at the (simulated) wire.

use crate::flags::TcpFlags;
use crate::ipv4::{Ipv4Header, PROTO_TCP, PROTO_UDP};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::{Error, Result};

/// The transport layer of a [`Packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment header.
    Tcp(TcpHeader),
    /// A UDP datagram header.
    Udp(UdpHeader),
}

/// One IPv4 packet: network header, transport header, payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// TCP or UDP header.
    pub transport: Transport,
    /// Application payload (after the transport header).
    pub payload: Vec<u8>,
}

/// A bidirectional flow identifier: the 4-tuple with the two endpoints
/// ordered canonically so both directions map to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Lower (addr, port) endpoint.
    pub a: ([u8; 4], u16),
    /// Higher (addr, port) endpoint.
    pub b: ([u8; 4], u16),
}

impl Packet {
    /// Build a TCP packet with correct lengths/checksums-on-serialize.
    #[allow(clippy::too_many_arguments)] // a flat 4-tuple+TCP constructor reads best
    pub fn tcp(
        src: [u8; 4],
        src_port: u16,
        dst: [u8; 4],
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: Vec<u8>,
    ) -> Packet {
        let mut ip = Ipv4Header::new(src, dst, PROTO_TCP);
        let mut tcp = TcpHeader::new(src_port, dst_port, flags);
        tcp.seq = seq;
        tcp.ack = ack;
        ip.set_payload_len(tcp.real_header_len() + payload.len());
        Packet {
            ip,
            transport: Transport::Tcp(tcp),
            payload,
        }
    }

    /// Build a UDP packet.
    pub fn udp(
        src: [u8; 4],
        src_port: u16,
        dst: [u8; 4],
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Packet {
        let mut ip = Ipv4Header::new(src, dst, PROTO_UDP);
        ip.set_payload_len(8 + payload.len());
        Packet {
            ip,
            transport: Transport::Udp(UdpHeader::new(src_port, dst_port)),
            payload,
        }
    }

    /// Shared access to the TCP header, if this is a TCP packet.
    pub fn tcp_header(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Transport::Tcp(h) => Some(h),
            Transport::Udp(_) => None,
        }
    }

    /// Mutable access to the TCP header, if this is a TCP packet.
    pub fn tcp_header_mut(&mut self) -> Option<&mut TcpHeader> {
        match &mut self.transport {
            Transport::Tcp(h) => Some(h),
            Transport::Udp(_) => None,
        }
    }

    /// Shared access to the UDP header, if this is a UDP packet.
    pub fn udp_header(&self) -> Option<&UdpHeader> {
        match &self.transport {
            Transport::Udp(h) => Some(h),
            Transport::Tcp(_) => None,
        }
    }

    /// Source (addr, port).
    pub fn src(&self) -> ([u8; 4], u16) {
        (self.ip.src, self.src_port())
    }

    /// Destination (addr, port).
    pub fn dst(&self) -> ([u8; 4], u16) {
        (self.ip.dst, self.dst_port())
    }

    /// Transport source port.
    pub fn src_port(&self) -> u16 {
        match &self.transport {
            Transport::Tcp(h) => h.src_port,
            Transport::Udp(h) => h.src_port,
        }
    }

    /// Transport destination port.
    pub fn dst_port(&self) -> u16 {
        match &self.transport {
            Transport::Tcp(h) => h.dst_port,
            Transport::Udp(h) => h.dst_port,
        }
    }

    /// The canonical bidirectional flow key for this packet.
    pub fn flow_key(&self) -> FlowKey {
        let x = self.src();
        let y = self.dst();
        if x <= y {
            FlowKey { a: x, b: y }
        } else {
            FlowKey { a: y, b: x }
        }
    }

    /// TCP flags if TCP, else empty flags.
    pub fn flags(&self) -> TcpFlags {
        self.tcp_header().map(|h| h.flags).unwrap_or(TcpFlags::NONE)
    }

    /// Serialize the full packet, recomputing all derived fields
    /// (IP length/checksum, TCP offset/checksum, UDP length/checksum).
    pub fn serialize(&self) -> Vec<u8> {
        let transport_bytes = match &self.transport {
            Transport::Tcp(h) => h.serialize(self.ip.src, self.ip.dst, &self.payload),
            Transport::Udp(h) => h.serialize(self.ip.src, self.ip.dst, &self.payload),
        };
        let mut bytes = self.ip.serialize(transport_bytes.len());
        bytes.extend_from_slice(&transport_bytes);
        bytes
    }

    /// Serialize emitting every stored field verbatim — preserving
    /// deliberately broken checksums, lengths, and offsets.
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes = self.ip.serialize_raw();
        match &self.transport {
            Transport::Tcp(h) => bytes.extend_from_slice(&h.serialize_raw()),
            Transport::Udp(h) => bytes.extend_from_slice(&h.serialize_raw()),
        }
        bytes.extend_from_slice(&self.payload);
        bytes
    }

    /// Parse a full packet from wire bytes. The payload extent follows
    /// the *IP total length* when it is consistent with the buffer,
    /// mirroring what real stacks do.
    pub fn parse(data: &[u8]) -> Result<Packet> {
        let (ip, ip_len) = Ipv4Header::parse(data)?;
        let end = usize::from(ip.total_length).min(data.len()).max(ip_len);
        let rest = &data[ip_len..end];
        let (transport, consumed) = match ip.protocol {
            PROTO_TCP => {
                let (h, n) = TcpHeader::parse(rest)?;
                (Transport::Tcp(h), n)
            }
            PROTO_UDP => {
                let (h, n) = UdpHeader::parse(rest)?;
                (Transport::Udp(h), n)
            }
            _ => {
                return Err(Error::BadLength {
                    layer: "ip",
                    what: "unsupported protocol",
                })
            }
        };
        Ok(Packet {
            ip,
            transport,
            payload: rest[consumed..].to_vec(),
        })
    }

    /// Do both the IP and transport checksums verify as stored?
    ///
    /// Note this validates the *structured* representation: a packet
    /// built via [`Packet::tcp`] has zero checksums until serialized, so
    /// this is primarily meaningful for parsed packets or after a
    /// [`Packet::finalize`].
    pub fn checksums_ok(&self) -> bool {
        let ip_ok = self.ip.checksum_ok();
        let transport_ok = match &self.transport {
            Transport::Tcp(h) => h.checksum_ok(self.ip.src, self.ip.dst, &self.payload),
            Transport::Udp(h) => h.checksum_ok(self.ip.src, self.ip.dst, &self.payload),
        };
        ip_ok && transport_ok
    }

    /// Recompute every derived field *in place* (lengths, offsets,
    /// checksums), making the structured form wire-consistent. Geneva's
    /// `tamper` calls this after edits unless the tampered field is
    /// itself a checksum or length.
    pub fn finalize(&mut self) {
        let fixed = Packet::parse(&self.serialize()).expect("self-serialized packet must parse");
        *self = fixed;
    }

    /// Human-oriented one-line summary, used by trace rendering.
    pub fn summary(&self) -> String {
        let dir = format!(
            "{}.{} > {}.{}",
            fmt_addr(self.ip.src),
            self.src_port(),
            fmt_addr(self.ip.dst),
            self.dst_port()
        );
        match &self.transport {
            Transport::Tcp(h) => format!(
                "{dir} TCP {} seq={} ack={} win={} len={}",
                h.flags,
                h.seq,
                h.ack,
                h.window,
                self.payload.len()
            ),
            Transport::Udp(_) => format!("{dir} UDP len={}", self.payload.len()),
        }
    }
}

fn fmt_addr(a: [u8; 4]) -> String {
    format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn sample_tcp() -> Packet {
        Packet::tcp(
            [10, 0, 0, 1],
            44321,
            [93, 184, 216, 34],
            80,
            TcpFlags::PSH_ACK,
            1000,
            2000,
            b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n".to_vec(),
        )
    }

    #[test]
    fn serialize_parse_round_trip_tcp() {
        let p = sample_tcp();
        let bytes = p.serialize();
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, p.payload);
        assert_eq!(parsed.flags(), TcpFlags::PSH_ACK);
        assert_eq!(parsed.tcp_header().unwrap().seq, 1000);
        assert!(parsed.checksums_ok());
    }

    #[test]
    fn serialize_parse_round_trip_udp() {
        let p = Packet::udp([1, 1, 1, 1], 53, [2, 2, 2, 2], 9999, b"dns".to_vec());
        let parsed = Packet::parse(&p.serialize()).unwrap();
        assert_eq!(parsed.payload, b"dns");
        assert!(parsed.checksums_ok());
    }

    #[test]
    fn flow_key_is_direction_agnostic() {
        let fwd = sample_tcp();
        let rev = Packet::tcp(
            [93, 184, 216, 34],
            80,
            [10, 0, 0, 1],
            44321,
            TcpFlags::ACK,
            2000,
            1030,
            vec![],
        );
        assert_eq!(fwd.flow_key(), rev.flow_key());
    }

    #[test]
    fn corrupt_checksum_survives_raw_serialization() {
        let mut p = sample_tcp();
        p.finalize();
        assert!(p.checksums_ok());
        p.tcp_header_mut().unwrap().checksum ^= 0xFFFF;
        let bytes = p.serialize_raw();
        let parsed = Packet::parse(&bytes).unwrap();
        assert!(
            !parsed.checksums_ok(),
            "bad checksum must persist on the wire"
        );
    }

    #[test]
    fn finalize_recomputes_derived_fields() {
        let mut p = sample_tcp();
        p.ip.total_length = 0;
        p.tcp_header_mut().unwrap().checksum = 0xAAAA;
        p.finalize();
        assert!(p.checksums_ok());
        assert_eq!(usize::from(p.ip.total_length), 20 + 20 + p.payload.len());
    }

    #[test]
    fn parse_respects_ip_total_length() {
        // Trailing garbage beyond total_length must not leak into payload.
        let p = sample_tcp();
        let mut bytes = p.serialize();
        bytes.extend_from_slice(&[0xEE; 16]);
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, p.payload);
    }

    #[test]
    fn parse_rejects_unknown_protocol() {
        let mut p = sample_tcp();
        p.ip.protocol = 47; // GRE
        assert!(Packet::parse(&p.serialize()).is_err());
    }

    #[test]
    fn summary_mentions_flags_and_ports() {
        let s = sample_tcp().summary();
        assert!(s.contains("PSH"), "{s}");
        assert!(s.contains("80"), "{s}");
    }
}
