//! The composite [`Packet`]: one IPv4 datagram carrying TCP or UDP.
//!
//! This is the unit the whole workspace passes around — the Geneva
//! engine rewrites it, the simulator routes it, endpoints and censors
//! parse it. A `Packet` keeps headers in structured form so field access
//! is cheap, and only flattens to bytes at the (simulated) wire.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::bytes::PayloadBuf;
use crate::flags::TcpFlags;
use crate::ipv4::{Ipv4Header, PROTO_TCP, PROTO_UDP};
use crate::tcp::{TcpHeader, TcpOption};
use crate::udp::UdpHeader;
use crate::{Error, Result};

/// The transport layer of a [`Packet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment header.
    Tcp(TcpHeader),
    /// A UDP datagram header.
    Udp(UdpHeader),
}

/// One IPv4 packet: network header, transport header, payload bytes.
///
/// The payload is a copy-on-write [`PayloadBuf`]: cloning a `Packet`
/// bumps a refcount instead of copying bytes, and Geneva segment
/// splits share one backing buffer between both halves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// TCP or UDP header.
    pub transport: Transport,
    /// Application payload (after the transport header).
    pub payload: PayloadBuf,
}

/// A bidirectional flow identifier: the 4-tuple with the two endpoints
/// ordered canonically so both directions map to the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Lower (addr, port) endpoint.
    pub a: ([u8; 4], u16),
    /// Higher (addr, port) endpoint.
    pub b: ([u8; 4], u16),
}

impl Packet {
    /// Build a TCP packet with correct lengths/checksums-on-serialize.
    #[allow(clippy::too_many_arguments)] // a flat 4-tuple+TCP constructor reads best
    pub fn tcp(
        src: [u8; 4],
        src_port: u16,
        dst: [u8; 4],
        dst_port: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: Vec<u8>,
    ) -> Packet {
        let payload = PayloadBuf::from(payload);
        let mut ip = Ipv4Header::new(src, dst, PROTO_TCP);
        let mut tcp = TcpHeader::new(src_port, dst_port, flags);
        tcp.seq = seq;
        tcp.ack = ack;
        ip.set_payload_len(tcp.real_header_len() + payload.len());
        Packet {
            ip,
            transport: Transport::Tcp(tcp),
            payload,
        }
    }

    /// Build a UDP packet.
    pub fn udp(
        src: [u8; 4],
        src_port: u16,
        dst: [u8; 4],
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Packet {
        let payload = PayloadBuf::from(payload);
        let mut ip = Ipv4Header::new(src, dst, PROTO_UDP);
        ip.set_payload_len(8 + payload.len());
        Packet {
            ip,
            transport: Transport::Udp(UdpHeader::new(src_port, dst_port)),
            payload,
        }
    }

    /// Shared access to the TCP header, if this is a TCP packet.
    pub fn tcp_header(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Transport::Tcp(h) => Some(h),
            Transport::Udp(_) => None,
        }
    }

    /// Mutable access to the TCP header, if this is a TCP packet.
    pub fn tcp_header_mut(&mut self) -> Option<&mut TcpHeader> {
        match &mut self.transport {
            Transport::Tcp(h) => Some(h),
            Transport::Udp(_) => None,
        }
    }

    /// Shared access to the UDP header, if this is a UDP packet.
    pub fn udp_header(&self) -> Option<&UdpHeader> {
        match &self.transport {
            Transport::Udp(h) => Some(h),
            Transport::Tcp(_) => None,
        }
    }

    /// Source (addr, port).
    pub fn src(&self) -> ([u8; 4], u16) {
        (self.ip.src, self.src_port())
    }

    /// Destination (addr, port).
    pub fn dst(&self) -> ([u8; 4], u16) {
        (self.ip.dst, self.dst_port())
    }

    /// Transport source port.
    pub fn src_port(&self) -> u16 {
        match &self.transport {
            Transport::Tcp(h) => h.src_port,
            Transport::Udp(h) => h.src_port,
        }
    }

    /// Transport destination port.
    pub fn dst_port(&self) -> u16 {
        match &self.transport {
            Transport::Tcp(h) => h.dst_port,
            Transport::Udp(h) => h.dst_port,
        }
    }

    /// The canonical bidirectional flow key for this packet.
    pub fn flow_key(&self) -> FlowKey {
        let x = self.src();
        let y = self.dst();
        if x <= y {
            FlowKey { a: x, b: y }
        } else {
            FlowKey { a: y, b: x }
        }
    }

    /// TCP flags if TCP, else empty flags.
    pub fn flags(&self) -> TcpFlags {
        self.tcp_header().map(|h| h.flags).unwrap_or(TcpFlags::NONE)
    }

    /// Byte length of the recomputed transport segment (header plus
    /// payload), as `serialize` will emit it.
    fn transport_wire_len(&self) -> usize {
        match &self.transport {
            Transport::Tcp(h) => h.real_header_len() + self.payload.len(),
            Transport::Udp(_) => 8 + self.payload.len(),
        }
    }

    /// Serialize the full packet, recomputing all derived fields
    /// (IP length/checksum, TCP offset/checksum, UDP length/checksum).
    pub fn serialize(&self) -> Vec<u8> {
        let mut bytes =
            Vec::with_capacity(20 + self.ip.options.len() + 3 + self.transport_wire_len());
        self.serialize_into(&mut bytes);
        bytes
    }

    /// [`Packet::serialize`], appending to a caller-owned buffer so the
    /// steady-state wire path (forwarding, pcap emission) reuses one
    /// allocation. Byte-identical output.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let transport_len = self.transport_wire_len();
        self.ip.serialize_into(transport_len, out);
        match &self.transport {
            Transport::Tcp(h) => h.serialize_into(self.ip.src, self.ip.dst, &self.payload, out),
            Transport::Udp(h) => h.serialize_into(self.ip.src, self.ip.dst, &self.payload, out),
        }
    }

    /// Serialize emitting every stored field verbatim — preserving
    /// deliberately broken checksums, lengths, and offsets.
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes =
            Vec::with_capacity(20 + self.ip.options.len() + 3 + self.transport_wire_len());
        self.serialize_raw_into(&mut bytes);
        bytes
    }

    /// [`Packet::serialize_raw`], appending to a caller-owned buffer.
    pub fn serialize_raw_into(&self, out: &mut Vec<u8>) {
        self.ip.serialize_raw_into(out);
        match &self.transport {
            Transport::Tcp(h) => h.serialize_raw_into(out),
            Transport::Udp(h) => h.serialize_raw_into(out),
        }
        out.extend_from_slice(&self.payload);
    }

    /// Parse a full packet from wire bytes. The payload extent follows
    /// the *IP total length* when it is consistent with the buffer,
    /// mirroring what real stacks do.
    pub fn parse(data: &[u8]) -> Result<Packet> {
        let (ip, ip_len) = Ipv4Header::parse(data)?;
        let end = usize::from(ip.total_length).min(data.len()).max(ip_len);
        let rest = &data[ip_len..end];
        let (transport, consumed) = match ip.protocol {
            PROTO_TCP => {
                let (h, n) = TcpHeader::parse(rest)?;
                (Transport::Tcp(h), n)
            }
            PROTO_UDP => {
                let (h, n) = UdpHeader::parse(rest)?;
                (Transport::Udp(h), n)
            }
            _ => {
                return Err(Error::BadLength {
                    layer: "ip",
                    what: "unsupported protocol",
                })
            }
        };
        Ok(Packet {
            ip,
            transport,
            payload: PayloadBuf::from(&rest[consumed..]),
        })
    }

    /// Do both the IP and transport checksums verify as stored?
    ///
    /// Note this validates the *structured* representation: a packet
    /// built via [`Packet::tcp`] has zero checksums until serialized, so
    /// this is primarily meaningful for parsed packets or after a
    /// [`Packet::finalize`].
    pub fn checksums_ok(&self) -> bool {
        let ip_ok = self.ip.checksum_ok();
        let payload_sum = self.payload.ones_sum();
        let transport_ok = match &self.transport {
            Transport::Tcp(h) => {
                h.checksum_ok_parts(self.ip.src, self.ip.dst, payload_sum, self.payload.len())
            }
            Transport::Udp(h) => {
                h.checksum_ok_parts(self.ip.src, self.ip.dst, payload_sum, self.payload.len())
            }
        };
        ip_ok && transport_ok
    }

    /// Recompute every derived field *in place* (lengths, offsets,
    /// checksums), making the structured form wire-consistent. Geneva's
    /// `tamper` calls this after edits unless the tampered field is
    /// itself a checksum or length.
    ///
    /// Semantically this is `parse(serialize())`. Packets in the
    /// canonical shape real traffic takes go down an allocation-free
    /// fast path that computes the same result field-wise; anything
    /// exotic (wrong version, mismatched protocol, oversized options or
    /// lengths, opaque options) falls back to the literal round trip,
    /// preserving its exact canonicalization — and its panics.
    pub fn finalize(&mut self) {
        if self.finalize_in_place() {
            return;
        }
        let fixed = Packet::parse(&self.serialize()).expect("self-serialized packet must parse");
        *self = fixed;
    }

    /// The fast path of [`Packet::finalize`]: recompute derived fields
    /// directly when (and only when) doing so is bit-identical to the
    /// serialize/parse round trip. Returns `false` when the packet's
    /// shape requires the full fallback.
    fn finalize_in_place(&mut self) -> bool {
        // parse() rejects version != 4 and routes the transport bytes
        // by ip.protocol; ihl and data_offset are 4-bit wire fields, so
        // oversized option areas would truncate and shift the payload.
        if self.ip.version != 4 || self.ip.options.len() > 40 {
            return false;
        }
        match &self.transport {
            Transport::Tcp(h) => {
                let opaque = h
                    .options
                    .iter()
                    .any(|o| matches!(o, TcpOption::Unknown(..)));
                if self.ip.protocol != PROTO_TCP || opaque || h.real_header_len() > 60 {
                    return false;
                }
            }
            Transport::Udp(_) => {
                if self.ip.protocol != PROTO_UDP {
                    return false;
                }
            }
        }
        let transport_len = self.transport_wire_len();
        let ip_header_len = 20 + self.ip.options.len().div_ceil(4) * 4;
        if ip_header_len + transport_len > usize::from(u16::MAX) {
            // total_length would wrap on the wire and parse() would
            // truncate the payload accordingly; let the fallback do it.
            return false;
        }

        // IP: exactly what parse() reads back after serialize().
        // Options come back zero-padded to the 32-bit boundary, and the
        // 3-bit flags / 13-bit fragment offset are masked by the wire.
        while !self.ip.options.len().is_multiple_of(4) {
            self.ip.options.push(0);
        }
        self.ip.ihl = (5 + self.ip.options.len() / 4) as u8;
        self.ip.total_length = (ip_header_len + transport_len) as u16;
        self.ip.flags &= 0b111;
        self.ip.fragment_offset &= 0x1FFF;
        self.ip.checksum = 0;
        self.ip.checksum = !self.ip.raw_sum();

        let payload_sum = self.payload.ones_sum();
        let payload_len = self.payload.len();
        match &mut self.transport {
            Transport::Tcp(h) => {
                h.data_offset = (h.real_header_len() / 4) as u8;
                h.reserved &= 0x0F;
                h.checksum = h.checksum_for(self.ip.src, self.ip.dst, payload_sum, payload_len);
            }
            Transport::Udp(h) => {
                h.length = (8 + payload_len) as u16;
                h.checksum = h.checksum_for(self.ip.src, self.ip.dst, payload_sum, payload_len);
            }
        }
        true
    }

    /// True when every derived field already holds the value
    /// [`Packet::finalize`] would recompute (checksums aside): options
    /// padded to their 32-bit boundary, lengths and offsets in sync,
    /// wire-masked bits clear, and the shape inside `finalize`'s
    /// in-place gates. Under this shape — plus verifying, non-`0xFFFF`
    /// stored checksums — a single-field mutation can patch checksums
    /// with [`crate::checksum::incremental_update`] and the result is
    /// byte-identical to a full re-finalize.
    pub fn derived_fields_canonical(&self) -> bool {
        if self.ip.version != 4
            || self.ip.options.len() > 40
            || !self.ip.options.len().is_multiple_of(4)
            || usize::from(self.ip.ihl) != 5 + self.ip.options.len() / 4
            || self.ip.flags & !0b111 != 0
            || self.ip.fragment_offset & !0x1FFF != 0
        {
            return false;
        }
        let ip_header_len = 20 + self.ip.options.len();
        let total = ip_header_len + self.transport_wire_len();
        if total > usize::from(u16::MAX) || usize::from(self.ip.total_length) != total {
            return false;
        }
        match &self.transport {
            Transport::Tcp(h) => {
                self.ip.protocol == PROTO_TCP
                    && !h
                        .options
                        .iter()
                        .any(|o| matches!(o, TcpOption::Unknown(..)))
                    && h.real_header_len() <= 60
                    && usize::from(h.data_offset) * 4 == h.real_header_len()
                    && h.reserved & !0x0F == 0
            }
            Transport::Udp(h) => {
                self.ip.protocol == PROTO_UDP && usize::from(h.length) == 8 + self.payload.len()
            }
        }
    }

    /// Human-oriented one-line summary, used by trace rendering.
    pub fn summary(&self) -> String {
        let dir = format!(
            "{}.{} > {}.{}",
            fmt_addr(self.ip.src),
            self.src_port(),
            fmt_addr(self.ip.dst),
            self.dst_port()
        );
        match &self.transport {
            Transport::Tcp(h) => format!(
                "{dir} TCP {} seq={} ack={} win={} len={}",
                h.flags,
                h.seq,
                h.ack,
                h.window,
                self.payload.len()
            ),
            Transport::Udp(_) => format!("{dir} UDP len={}", self.payload.len()),
        }
    }
}

fn fmt_addr(a: [u8; 4]) -> String {
    format!("{}.{}.{}.{}", a[0], a[1], a[2], a[3])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn sample_tcp() -> Packet {
        Packet::tcp(
            [10, 0, 0, 1],
            44321,
            [93, 184, 216, 34],
            80,
            TcpFlags::PSH_ACK,
            1000,
            2000,
            b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n".to_vec(),
        )
    }

    #[test]
    fn serialize_parse_round_trip_tcp() {
        let p = sample_tcp();
        let bytes = p.serialize();
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, p.payload);
        assert_eq!(parsed.flags(), TcpFlags::PSH_ACK);
        assert_eq!(parsed.tcp_header().unwrap().seq, 1000);
        assert!(parsed.checksums_ok());
    }

    #[test]
    fn serialize_parse_round_trip_udp() {
        let p = Packet::udp([1, 1, 1, 1], 53, [2, 2, 2, 2], 9999, b"dns".to_vec());
        let parsed = Packet::parse(&p.serialize()).unwrap();
        assert_eq!(parsed.payload, b"dns");
        assert!(parsed.checksums_ok());
    }

    #[test]
    fn flow_key_is_direction_agnostic() {
        let fwd = sample_tcp();
        let rev = Packet::tcp(
            [93, 184, 216, 34],
            80,
            [10, 0, 0, 1],
            44321,
            TcpFlags::ACK,
            2000,
            1030,
            vec![],
        );
        assert_eq!(fwd.flow_key(), rev.flow_key());
    }

    #[test]
    fn corrupt_checksum_survives_raw_serialization() {
        let mut p = sample_tcp();
        p.finalize();
        assert!(p.checksums_ok());
        p.tcp_header_mut().unwrap().checksum ^= 0xFFFF;
        let bytes = p.serialize_raw();
        let parsed = Packet::parse(&bytes).unwrap();
        assert!(
            !parsed.checksums_ok(),
            "bad checksum must persist on the wire"
        );
    }

    #[test]
    fn finalize_recomputes_derived_fields() {
        let mut p = sample_tcp();
        p.ip.total_length = 0;
        p.tcp_header_mut().unwrap().checksum = 0xAAAA;
        p.finalize();
        assert!(p.checksums_ok());
        assert_eq!(usize::from(p.ip.total_length), 20 + 20 + p.payload.len());
    }

    #[test]
    fn serialize_into_appends_identical_bytes() {
        let p = sample_tcp();
        let mut out = vec![0x11, 0x22];
        p.serialize_into(&mut out);
        assert_eq!(&out[2..], &p.serialize()[..]);
        let mut raw = vec![0x33];
        p.serialize_raw_into(&mut raw);
        assert_eq!(&raw[1..], &p.serialize_raw()[..]);
    }

    #[test]
    fn in_place_finalize_matches_parse_of_serialize() {
        // Exercise both canonical shapes and shapes that force the
        // fallback; either way the result must equal the round trip.
        let mut candidates = vec![
            sample_tcp(),
            Packet::udp([1, 1, 1, 1], 53, [2, 2, 2, 2], 9999, b"dns".to_vec()),
            Packet::tcp([1; 4], 9, [2; 4], 10, TcpFlags::SYN, 0, 0, vec![]),
        ];
        // Desynchronized derived fields.
        let mut desynced = sample_tcp();
        desynced.ip.total_length = 9;
        desynced.ip.ihl = 11;
        desynced.ip.flags = 0xFF;
        desynced.ip.fragment_offset = 0xFFFF;
        desynced.tcp_header_mut().unwrap().data_offset = 13;
        desynced.tcp_header_mut().unwrap().reserved = 0xAB;
        desynced.tcp_header_mut().unwrap().checksum = 0x1234;
        candidates.push(desynced);
        // TCP options (typed) and IP options with padding.
        let mut optioned = sample_tcp();
        optioned.tcp_header_mut().unwrap().options = vec![
            crate::tcp::TcpOption::Mss(1460),
            crate::tcp::TcpOption::WindowScale(7),
            crate::tcp::TcpOption::Nop,
        ];
        optioned.ip.options = vec![0x01, 0x01, 0x01];
        candidates.push(optioned);
        // Opaque TCP option: must take the fallback and still agree.
        let mut opaque = sample_tcp();
        opaque.tcp_header_mut().unwrap().options =
            vec![crate::tcp::TcpOption::Unknown(254, vec![0xAA])];
        candidates.push(opaque);
        // Mismatched protocol: parse() restructures; fallback territory.
        let mut crossed = sample_tcp();
        crossed.ip.protocol = 17;
        candidates.push(crossed);

        for (i, pkt) in candidates.into_iter().enumerate() {
            let expect =
                Packet::parse(&pkt.serialize()).expect("self-serialized packet must parse");
            let mut fast = pkt;
            fast.finalize();
            assert_eq!(fast, expect, "candidate {i}");
            assert_eq!(
                fast.serialize_raw(),
                expect.serialize_raw(),
                "candidate {i} wire bytes"
            );
        }
    }

    #[test]
    fn clone_and_split_share_payload_storage() {
        let p = sample_tcp();
        let q = p.clone();
        assert_eq!(
            p.payload.as_slice().as_ptr(),
            q.payload.as_slice().as_ptr(),
            "clone must not copy payload bytes"
        );
    }

    #[test]
    fn parse_respects_ip_total_length() {
        // Trailing garbage beyond total_length must not leak into payload.
        let p = sample_tcp();
        let mut bytes = p.serialize();
        bytes.extend_from_slice(&[0xEE; 16]);
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload, p.payload);
    }

    #[test]
    fn parse_rejects_unknown_protocol() {
        let mut p = sample_tcp();
        p.ip.protocol = 47; // GRE
        assert!(Packet::parse(&p.serialize()).is_err());
    }

    #[test]
    fn summary_mentions_flags_and_ports() {
        let s = sample_tcp().summary();
        assert!(s.contains("PSH"), "{s}");
        assert!(s.contains("80"), "{s}");
    }
}
