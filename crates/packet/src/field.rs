//! Named field access in Geneva's `PROTO:field` style.
//!
//! Geneva strategies address packet fields by name — `TCP:flags`,
//! `TCP:ack`, `IP:ttl`, `TCP:options-wscale`, `TCP:load` — and the
//! genetic algorithm mutates those names freely. This module maps names
//! onto the structured headers, with uniform get/set semantics:
//!
//! * numeric fields read/write as [`FieldValue::Num`];
//! * `flags` reads/writes as a Geneva letter string;
//! * `load` is the payload as [`FieldValue::Bytes`];
//! * `options-*` fields are `Num` when present, [`FieldValue::Empty`]
//!   when absent; writing `Empty` *removes* the option (that is exactly
//!   how Strategy 8 strips `wscale`).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::flags::TcpFlags;
use crate::packet::{Packet, Transport};
use crate::tcp::TcpOption;
use crate::{Error, Result};

/// The protocol namespace of a field name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// `IP:*`
    Ip,
    /// `TCP:*`
    Tcp,
    /// `UDP:*`
    Udp,
    /// `DNS:*` — application-layer fields (appendix extension).
    Dns,
    /// `FTP:*` — application-layer fields (appendix extension).
    Ftp,
}

impl Proto {
    /// Parse Geneva's protocol token (case-insensitive).
    pub fn parse(s: &str) -> Option<Proto> {
        match s.to_ascii_uppercase().as_str() {
            "IP" | "IPV4" => Some(Proto::Ip),
            "TCP" => Some(Proto::Tcp),
            "UDP" => Some(Proto::Udp),
            "DNS" => Some(Proto::Dns),
            "FTP" => Some(Proto::Ftp),
            _ => None,
        }
    }

    /// Canonical token used when serializing strategies.
    pub fn token(self) -> &'static str {
        match self {
            Proto::Ip => "IP",
            Proto::Tcp => "TCP",
            Proto::Udp => "UDP",
            Proto::Dns => "DNS",
            Proto::Ftp => "FTP",
        }
    }
}

/// A value read from or written to a packet field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue {
    /// A numeric field value.
    Num(u64),
    /// A string value (TCP flag letters).
    Str(String),
    /// Raw bytes (payload).
    Bytes(Vec<u8>),
    /// Absent (option not present / empty payload / empty replacement).
    Empty,
}

impl FieldValue {
    /// Render the value in Geneva's strategy syntax.
    pub fn to_syntax(&self) -> String {
        match self {
            FieldValue::Num(n) => n.to_string(),
            FieldValue::Str(s) => s.clone(),
            FieldValue::Bytes(b) => b.iter().map(|x| format!("%{x:02x}")).collect(),
            FieldValue::Empty => String::new(),
        }
    }
}

/// The shape of a field, used by the Geneva engine to pick `corrupt`
/// replacement values of the right width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// 8-bit number.
    U8,
    /// 16-bit number.
    U16,
    /// 32-bit number.
    U32,
    /// TCP flag letters.
    Flags,
    /// Opaque byte string (payload).
    Bytes,
    /// A TCP option holding a small number (or absent).
    OptionNum,
}

/// A `(proto, field)` reference parsed from `PROTO:field`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The protocol namespace.
    pub proto: Proto,
    /// Normalized (lowercase) field name, e.g. `flags`, `options-wscale`.
    pub name: String,
}

impl FieldRef {
    /// Construct from already-split tokens; normalizes the field name.
    pub fn new(proto: Proto, name: &str) -> FieldRef {
        FieldRef {
            proto,
            name: name.to_ascii_lowercase(),
        }
    }

    /// Parse `"TCP:flags"` style references.
    pub fn parse(s: &str) -> Result<FieldRef> {
        let (proto, name) = s
            .split_once(':')
            .ok_or_else(|| Error::UnknownField(s.to_string()))?;
        let proto = Proto::parse(proto).ok_or_else(|| Error::UnknownField(s.to_string()))?;
        let field = FieldRef::new(proto, name);
        field.kind()?; // validate the name eagerly
        Ok(field)
    }

    /// Canonical `PROTO:field` form.
    pub fn to_syntax(&self) -> String {
        format!("{}:{}", self.proto.token(), self.name)
    }

    /// Every field name addressable for a protocol — the GA's mutation
    /// alphabet.
    pub fn all_for(proto: Proto) -> Vec<FieldRef> {
        let names: &[&str] = match proto {
            Proto::Ip => &[
                "version", "ihl", "tos", "len", "id", "flags", "frag", "ttl", "proto", "chksum",
            ],
            Proto::Tcp => &[
                "sport",
                "dport",
                "seq",
                "ack",
                "dataofs",
                "flags",
                "window",
                "chksum",
                "urgptr",
                "load",
                "options-mss",
                "options-wscale",
                "options-sackok",
                "options-timestamp",
            ],
            Proto::Udp => &["sport", "dport", "len", "chksum", "load"],
            Proto::Dns => &["id", "qname"],
            Proto::Ftp => &["command"],
        };
        names.iter().map(|n| FieldRef::new(proto, n)).collect()
    }

    /// The field's shape, or an error if the name is unknown.
    pub fn kind(&self) -> Result<FieldKind> {
        let kind = match (self.proto, self.name.as_str()) {
            (Proto::Ip, "version" | "ihl" | "tos" | "flags" | "ttl" | "proto") => FieldKind::U8,
            (Proto::Ip, "len" | "id" | "frag" | "chksum") => FieldKind::U16,
            (Proto::Tcp, "sport" | "dport" | "window" | "chksum" | "urgptr") => FieldKind::U16,
            (Proto::Tcp, "seq" | "ack") => FieldKind::U32,
            (Proto::Tcp, "dataofs") => FieldKind::U8,
            (Proto::Tcp, "flags") => FieldKind::Flags,
            (Proto::Tcp, "load") => FieldKind::Bytes,
            (Proto::Tcp, name) if name.starts_with("options-") => FieldKind::OptionNum,
            (Proto::Udp, "sport" | "dport" | "len" | "chksum") => FieldKind::U16,
            (Proto::Udp, "load") => FieldKind::Bytes,
            (Proto::Dns, "id") => FieldKind::U16,
            (Proto::Dns, "qname") => FieldKind::Bytes,
            (Proto::Ftp, "command") => FieldKind::Bytes,
            _ => return Err(Error::UnknownField(self.to_syntax())),
        };
        Ok(kind)
    }

    /// Is this a derived field (checksum / length / offset) whose
    /// tampering must *suppress* recomputation on serialize?
    pub fn is_derived(&self) -> bool {
        matches!(
            (self.proto, self.name.as_str()),
            (Proto::Ip, "chksum" | "len" | "ihl")
                | (Proto::Tcp, "chksum" | "dataofs")
                | (Proto::Udp, "chksum" | "len")
        )
    }

    /// Read the field from a packet.
    pub fn get(&self, packet: &Packet) -> Result<FieldValue> {
        match self.proto {
            Proto::Ip => self.get_ip(packet),
            Proto::Tcp => self.get_tcp(packet),
            Proto::Udp => self.get_udp(packet),
            Proto::Dns | Proto::Ftp => self.get_app(packet),
        }
    }

    /// Application-layer reads (`DNS:*`, `FTP:*`), best-effort: a
    /// payload that isn't the expected protocol reads as `Empty`.
    fn get_app(&self, p: &Packet) -> Result<FieldValue> {
        let value = match (self.proto, self.name.as_str()) {
            (Proto::Dns, "id") => {
                crate::appfield::dns_id(p).map(|id| FieldValue::Num(u64::from(id)))
            }
            (Proto::Dns, "qname") => crate::appfield::dns_qname(p).map(FieldValue::Str),
            (Proto::Ftp, "command") => crate::appfield::ftp_command(p).map(FieldValue::Str),
            _ => return Err(Error::UnknownField(self.to_syntax())),
        };
        Ok(value.unwrap_or(FieldValue::Empty))
    }

    fn get_ip(&self, p: &Packet) -> Result<FieldValue> {
        let ip = &p.ip;
        let v = match self.name.as_str() {
            "version" => u64::from(ip.version),
            "ihl" => u64::from(ip.ihl),
            "tos" => u64::from(ip.tos),
            "len" => u64::from(ip.total_length),
            "id" => u64::from(ip.identification),
            "flags" => u64::from(ip.flags),
            "frag" => u64::from(ip.fragment_offset),
            "ttl" => u64::from(ip.ttl),
            "proto" => u64::from(ip.protocol),
            "chksum" => u64::from(ip.checksum),
            _ => return Err(Error::UnknownField(self.to_syntax())),
        };
        Ok(FieldValue::Num(v))
    }

    fn get_tcp(&self, p: &Packet) -> Result<FieldValue> {
        let Transport::Tcp(tcp) = &p.transport else {
            return Ok(FieldValue::Empty);
        };
        let value = match self.name.as_str() {
            "sport" => FieldValue::Num(u64::from(tcp.src_port)),
            "dport" => FieldValue::Num(u64::from(tcp.dst_port)),
            "seq" => FieldValue::Num(u64::from(tcp.seq)),
            "ack" => FieldValue::Num(u64::from(tcp.ack)),
            "dataofs" => FieldValue::Num(u64::from(tcp.data_offset)),
            "flags" => FieldValue::Str(tcp.flags.to_geneva()),
            "window" => FieldValue::Num(u64::from(tcp.window)),
            "chksum" => FieldValue::Num(u64::from(tcp.checksum)),
            "urgptr" => FieldValue::Num(u64::from(tcp.urgent)),
            "load" => {
                if p.payload.is_empty() {
                    FieldValue::Empty
                } else {
                    FieldValue::Bytes(p.payload.to_vec())
                }
            }
            name => {
                let Some(option_name) = name.strip_prefix("options-") else {
                    return Err(Error::UnknownField(self.to_syntax()));
                };
                match tcp.option(option_name) {
                    Some(TcpOption::Mss(v)) => FieldValue::Num(u64::from(*v)),
                    Some(TcpOption::WindowScale(v)) => FieldValue::Num(u64::from(*v)),
                    Some(TcpOption::SackPermitted) => FieldValue::Num(1),
                    Some(TcpOption::Timestamps(tsval, _)) => FieldValue::Num(u64::from(*tsval)),
                    Some(_) | None => FieldValue::Empty,
                }
            }
        };
        Ok(value)
    }

    fn get_udp(&self, p: &Packet) -> Result<FieldValue> {
        let Transport::Udp(udp) = &p.transport else {
            return Ok(FieldValue::Empty);
        };
        let value = match self.name.as_str() {
            "sport" => FieldValue::Num(u64::from(udp.src_port)),
            "dport" => FieldValue::Num(u64::from(udp.dst_port)),
            "len" => FieldValue::Num(u64::from(udp.length)),
            "chksum" => FieldValue::Num(u64::from(udp.checksum)),
            "load" => {
                if p.payload.is_empty() {
                    FieldValue::Empty
                } else {
                    FieldValue::Bytes(p.payload.to_vec())
                }
            }
            _ => return Err(Error::UnknownField(self.to_syntax())),
        };
        Ok(value)
    }

    /// Write the field into a packet. Writing to a TCP field of a UDP
    /// packet (or vice versa) is a silent no-op, matching Geneva's
    /// permissive engine (strategies are genetic material; nonsense
    /// combinations must not crash, just do nothing).
    pub fn set(&self, packet: &mut Packet, value: &FieldValue) -> Result<()> {
        match self.proto {
            Proto::Ip => self.set_ip(packet, value),
            Proto::Tcp => self.set_tcp(packet, value),
            Proto::Udp => self.set_udp(packet, value),
            Proto::Dns | Proto::Ftp => self.set_app(packet, value),
        }
    }

    /// Application-layer writes; silent no-ops on non-matching payloads
    /// (GA-generated nonsense must not crash).
    fn set_app(&self, p: &mut Packet, value: &FieldValue) -> Result<()> {
        let text = match value {
            FieldValue::Str(s) => s.clone(),
            FieldValue::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
            FieldValue::Num(n) => n.to_string(),
            FieldValue::Empty => String::new(),
        };
        match (self.proto, self.name.as_str()) {
            (Proto::Dns, "id") => {
                crate::appfield::set_dns_id(p, numeric(value) as u16);
            }
            (Proto::Dns, "qname") => {
                crate::appfield::set_dns_qname(p, &text);
            }
            (Proto::Ftp, "command") => {
                crate::appfield::set_ftp_command(p, &text);
            }
            _ => return Err(Error::UnknownField(self.to_syntax())),
        }
        Ok(())
    }

    fn set_ip(&self, p: &mut Packet, value: &FieldValue) -> Result<()> {
        let n = numeric(value);
        let ip = &mut p.ip;
        match self.name.as_str() {
            "version" => ip.version = (n & 0x0F) as u8,
            "ihl" => ip.ihl = (n & 0x0F) as u8,
            "tos" => ip.tos = n as u8,
            "len" => ip.total_length = n as u16,
            "id" => ip.identification = n as u16,
            "flags" => ip.flags = (n & 0b111) as u8,
            "frag" => ip.fragment_offset = (n & 0x1FFF) as u16,
            "ttl" => ip.ttl = n as u8,
            "proto" => ip.protocol = n as u8,
            "chksum" => ip.checksum = n as u16,
            _ => return Err(Error::UnknownField(self.to_syntax())),
        }
        Ok(())
    }

    fn set_tcp(&self, p: &mut Packet, value: &FieldValue) -> Result<()> {
        if self.name == "load" {
            if let Transport::Tcp(_) = p.transport {
                p.payload = match value {
                    FieldValue::Bytes(b) => b.clone().into(),
                    FieldValue::Str(s) => s.clone().into_bytes().into(),
                    FieldValue::Num(n) => n.to_string().into_bytes().into(),
                    FieldValue::Empty => crate::bytes::PayloadBuf::empty(),
                };
            }
            return Ok(());
        }
        let Transport::Tcp(tcp) = &mut p.transport else {
            return Ok(());
        };
        match self.name.as_str() {
            "sport" => tcp.src_port = numeric(value) as u16,
            "dport" => tcp.dst_port = numeric(value) as u16,
            "seq" => tcp.seq = numeric(value) as u32,
            "ack" => tcp.ack = numeric(value) as u32,
            "dataofs" => tcp.data_offset = (numeric(value) & 0x0F) as u8,
            "window" => tcp.window = numeric(value) as u16,
            "chksum" => tcp.checksum = numeric(value) as u16,
            "urgptr" => tcp.urgent = numeric(value) as u16,
            "flags" => {
                tcp.flags = match value {
                    FieldValue::Str(s) => {
                        TcpFlags::from_geneva(s).unwrap_or(TcpFlags(numeric(value) as u8))
                    }
                    FieldValue::Empty => TcpFlags::NONE,
                    _ => TcpFlags(numeric(value) as u8),
                };
            }
            name => {
                let Some(option_name) = name.strip_prefix("options-") else {
                    return Err(Error::UnknownField(self.to_syntax()));
                };
                tcp.remove_option(option_name);
                if let FieldValue::Empty = value {
                    return Ok(()); // replace-with-empty == strip the option
                }
                let n = numeric(value);
                let new = match option_name {
                    "mss" => Some(TcpOption::Mss(n as u16)),
                    "wscale" => Some(TcpOption::WindowScale(n as u8)),
                    "sackok" => Some(TcpOption::SackPermitted),
                    "timestamp" => Some(TcpOption::Timestamps(n as u32, 0)),
                    _ => None,
                };
                if let Some(option) = new {
                    tcp.options.push(option);
                }
            }
        }
        Ok(())
    }

    fn set_udp(&self, p: &mut Packet, value: &FieldValue) -> Result<()> {
        if self.name == "load" {
            if let Transport::Udp(_) = p.transport {
                p.payload = match value {
                    FieldValue::Bytes(b) => b.clone().into(),
                    FieldValue::Str(s) => s.clone().into_bytes().into(),
                    FieldValue::Num(n) => n.to_string().into_bytes().into(),
                    FieldValue::Empty => crate::bytes::PayloadBuf::empty(),
                };
            }
            return Ok(());
        }
        let Transport::Udp(udp) = &mut p.transport else {
            return Ok(());
        };
        match self.name.as_str() {
            "sport" => udp.src_port = numeric(value) as u16,
            "dport" => udp.dst_port = numeric(value) as u16,
            "len" => udp.length = numeric(value) as u16,
            "chksum" => udp.checksum = numeric(value) as u16,
            _ => return Err(Error::UnknownField(self.to_syntax())),
        }
        Ok(())
    }
}

fn numeric(value: &FieldValue) -> u64 {
    match value {
        FieldValue::Num(n) => *n,
        FieldValue::Str(s) => s.parse().unwrap_or(0),
        FieldValue::Bytes(b) => {
            let mut n = 0u64;
            for byte in b.iter().take(8) {
                n = (n << 8) | u64::from(*byte);
            }
            n
        }
        FieldValue::Empty => 0,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn sample() -> Packet {
        let mut p = Packet::tcp(
            [10, 0, 0, 1],
            1234,
            [10, 0, 0, 2],
            80,
            TcpFlags::SYN_ACK,
            111,
            222,
            vec![],
        );
        p.tcp_header_mut().unwrap().options = vec![TcpOption::Mss(1460), TcpOption::WindowScale(7)];
        p
    }

    #[test]
    fn parse_and_roundtrip_reference() {
        let f = FieldRef::parse("TCP:flags").unwrap();
        assert_eq!(f.proto, Proto::Tcp);
        assert_eq!(f.name, "flags");
        assert_eq!(f.to_syntax(), "TCP:flags");
        assert!(FieldRef::parse("TCP:bogus").is_err());
        assert!(FieldRef::parse("nope").is_err());
        assert!(FieldRef::parse("GRE:ttl").is_err());
    }

    #[test]
    fn get_set_numeric_fields() {
        let mut p = sample();
        let ttl = FieldRef::parse("IP:ttl").unwrap();
        assert_eq!(ttl.get(&p).unwrap(), FieldValue::Num(64));
        ttl.set(&mut p, &FieldValue::Num(3)).unwrap();
        assert_eq!(p.ip.ttl, 3);

        let ack = FieldRef::parse("TCP:ack").unwrap();
        ack.set(&mut p, &FieldValue::Num(0xDEADBEEF)).unwrap();
        assert_eq!(p.tcp_header().unwrap().ack, 0xDEADBEEF);
    }

    #[test]
    fn flags_round_trip_via_strings() {
        let mut p = sample();
        let flags = FieldRef::parse("TCP:flags").unwrap();
        assert_eq!(flags.get(&p).unwrap(), FieldValue::Str("SA".into()));
        flags.set(&mut p, &FieldValue::Str("R".into())).unwrap();
        assert_eq!(p.flags(), TcpFlags::RST);
        flags.set(&mut p, &FieldValue::Empty).unwrap();
        assert_eq!(p.flags(), TcpFlags::NONE);
    }

    #[test]
    fn load_set_and_get() {
        let mut p = sample();
        let load = FieldRef::parse("TCP:load").unwrap();
        assert_eq!(load.get(&p).unwrap(), FieldValue::Empty);
        load.set(&mut p, &FieldValue::Bytes(b"abc".to_vec()))
            .unwrap();
        assert_eq!(p.payload, b"abc");
        assert_eq!(load.get(&p).unwrap(), FieldValue::Bytes(b"abc".to_vec()));
    }

    #[test]
    fn option_remove_via_empty_replacement() {
        let mut p = sample();
        let wscale = FieldRef::parse("TCP:options-wscale").unwrap();
        assert_eq!(wscale.get(&p).unwrap(), FieldValue::Num(7));
        wscale.set(&mut p, &FieldValue::Empty).unwrap();
        assert_eq!(wscale.get(&p).unwrap(), FieldValue::Empty);
        assert!(p.tcp_header().unwrap().option("wscale").is_none());
        // Setting a value re-adds it.
        wscale.set(&mut p, &FieldValue::Num(2)).unwrap();
        assert_eq!(wscale.get(&p).unwrap(), FieldValue::Num(2));
    }

    #[test]
    fn tcp_field_on_udp_packet_is_noop() {
        let mut p = Packet::udp([1, 1, 1, 1], 53, [2, 2, 2, 2], 5353, b"x".to_vec());
        let flags = FieldRef::parse("TCP:flags").unwrap();
        assert_eq!(flags.get(&p).unwrap(), FieldValue::Empty);
        flags.set(&mut p, &FieldValue::Str("R".into())).unwrap();
        assert_eq!(p.payload, b"x"); // untouched
    }

    #[test]
    fn derived_field_classification() {
        assert!(FieldRef::parse("TCP:chksum").unwrap().is_derived());
        assert!(FieldRef::parse("IP:len").unwrap().is_derived());
        assert!(!FieldRef::parse("TCP:ack").unwrap().is_derived());
        assert!(!FieldRef::parse("TCP:load").unwrap().is_derived());
    }

    #[test]
    fn all_fields_have_valid_kinds() {
        for proto in [Proto::Ip, Proto::Tcp, Proto::Udp] {
            for field in FieldRef::all_for(proto) {
                field
                    .kind()
                    .expect("every advertised field must have a kind");
            }
        }
    }

    #[test]
    fn get_set_round_trip_all_fields() {
        // Setting a field to the value just read must be a fixed point.
        let p = sample();
        for field in FieldRef::all_for(Proto::Tcp)
            .into_iter()
            .chain(FieldRef::all_for(Proto::Ip))
        {
            let mut q = p.clone();
            let v = field.get(&q).unwrap();
            field.set(&mut q, &v).unwrap();
            assert_eq!(field.get(&q).unwrap(), v, "field {}", field.to_syntax());
        }
    }
}
