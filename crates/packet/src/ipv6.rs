//! IPv6 header codec.
//!
//! The paper's appendix notes that their extended Geneva `tamper`
//! supports IPv6 — even though every §4.2 experiment runs over IPv4
//! ("all over IPv4"). We mirror that situation exactly: this module is
//! a complete fixed-header IPv6 codec with named field access (the
//! tamper surface), while the simulator and all experiments stay IPv4.
//! Extension headers are out of scope (as they are for Geneva's
//! tamper, which addresses fixed header fields).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::checksum::ones_complement_sum;
use crate::{Error, Result};

/// A parsed (or constructed) IPv6 fixed header (RFC 8200 §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Version nibble; always 6 for packets we build, but tamperable.
    pub version: u8,
    /// Traffic class (DSCP/ECN).
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length in bytes (everything after the fixed header).
    pub payload_length: u16,
    /// Next header (protocol) number.
    pub next_header: u8,
    /// Hop limit (IPv6's TTL).
    pub hop_limit: u8,
    /// Source address.
    pub src: [u8; 16],
    /// Destination address.
    pub dst: [u8; 16],
}

impl Ipv6Header {
    /// A fresh header with sane defaults (hop limit 64).
    pub fn new(src: [u8; 16], dst: [u8; 16], next_header: u8) -> Self {
        Ipv6Header {
            version: 6,
            traffic_class: 0,
            flow_label: 0,
            payload_length: 0,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Parse from the front of `data`; returns the header and the 40
    /// bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Ipv6Header, usize)> {
        if data.len() < 40 {
            return Err(Error::Truncated {
                layer: "ipv6",
                needed: 40,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 6 {
            return Err(Error::BadVersion(version));
        }
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        dst.copy_from_slice(&data[24..40]);
        Ok((
            Ipv6Header {
                version,
                traffic_class: (data[0] << 4) | (data[1] >> 4),
                flow_label: (u32::from(data[1] & 0x0F) << 16)
                    | (u32::from(data[2]) << 8)
                    | u32::from(data[3]),
                payload_length: u16::from_be_bytes([data[4], data[5]]),
                next_header: data[6],
                hop_limit: data[7],
                src,
                dst,
            },
            40,
        ))
    }

    /// Serialize with `payload_length` recomputed from `payload_len`.
    pub fn serialize(&self, payload_len: usize) -> Vec<u8> {
        let mut h = self.clone();
        h.payload_length = payload_len as u16;
        h.serialize_raw()
    }

    /// Serialize the stored fields verbatim (IPv6 has no header
    /// checksum, so raw vs derived only differs in `payload_length`).
    pub fn serialize_raw(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(40);
        bytes.push((self.version << 4) | (self.traffic_class >> 4));
        bytes.push(((self.traffic_class & 0x0F) << 4) | ((self.flow_label >> 16) as u8 & 0x0F));
        bytes.push((self.flow_label >> 8) as u8);
        bytes.push(self.flow_label as u8);
        bytes.extend_from_slice(&self.payload_length.to_be_bytes());
        bytes.push(self.next_header);
        bytes.push(self.hop_limit);
        bytes.extend_from_slice(&self.src);
        bytes.extend_from_slice(&self.dst);
        bytes
    }

    /// Router behavior: decrement the hop limit. IPv6 has no header
    /// checksum to maintain, so this is a plain saturating decrement.
    pub fn decrement_hop_limit(&mut self, hops: u8) {
        self.hop_limit = self.hop_limit.saturating_sub(hops);
    }

    /// TCP/UDP checksum over the IPv6 pseudo-header (RFC 8200 §8.1)
    /// plus the transport segment.
    pub fn transport_checksum(&self, segment: &[u8]) -> u16 {
        let mut pseudo = Vec::with_capacity(40);
        pseudo.extend_from_slice(&self.src);
        pseudo.extend_from_slice(&self.dst);
        pseudo.extend_from_slice(&(segment.len() as u32).to_be_bytes());
        pseudo.extend_from_slice(&[0, 0, 0, self.next_header]);
        let sum = u32::from(ones_complement_sum(&pseudo)) + u32::from(ones_complement_sum(segment));
        let mut folded = sum;
        while folded > 0xFFFF {
            folded = (folded & 0xFFFF) + (folded >> 16);
        }
        !(folded as u16)
    }

    /// Geneva-style named field read (`version`, `tc`, `fl`, `plen`,
    /// `nh`, `hlim`).
    pub fn get_field(&self, name: &str) -> Result<u64> {
        Ok(match name {
            "version" => u64::from(self.version),
            "tc" => u64::from(self.traffic_class),
            "fl" => u64::from(self.flow_label),
            "plen" => u64::from(self.payload_length),
            "nh" => u64::from(self.next_header),
            "hlim" => u64::from(self.hop_limit),
            _ => return Err(Error::UnknownField(format!("IP6:{name}"))),
        })
    }

    /// Geneva-style named field write.
    pub fn set_field(&mut self, name: &str, value: u64) -> Result<()> {
        match name {
            "version" => self.version = (value & 0x0F) as u8,
            "tc" => self.traffic_class = value as u8,
            "fl" => self.flow_label = (value & 0xF_FFFF) as u32,
            "plen" => self.payload_length = value as u16,
            "nh" => self.next_header = value as u8,
            "hlim" => self.hop_limit = value as u8,
            _ => return Err(Error::UnknownField(format!("IP6:{name}"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn sample() -> Ipv6Header {
        let mut h = Ipv6Header::new([0x20; 16], [0xfd; 16], crate::ipv4::PROTO_TCP);
        h.traffic_class = 0xA5;
        h.flow_label = 0x5_1234;
        h
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let bytes = h.serialize(100);
        assert_eq!(bytes.len(), 40);
        let (parsed, consumed) = Ipv6Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 40);
        assert_eq!(parsed.version, 6);
        assert_eq!(parsed.traffic_class, 0xA5);
        assert_eq!(parsed.flow_label, 0x5_1234);
        assert_eq!(parsed.payload_length, 100);
        assert_eq!(parsed.hop_limit, 64);
        assert_eq!(parsed.src, [0x20; 16]);
    }

    #[test]
    fn rejects_v4_and_short_buffers() {
        assert!(matches!(
            Ipv6Header::parse(&[0x45; 40]),
            Err(Error::BadVersion(4))
        ));
        assert!(Ipv6Header::parse(&[0x60; 39]).is_err());
    }

    #[test]
    fn hop_limit_decrement_saturates() {
        let mut h = sample();
        h.hop_limit = 3;
        h.decrement_hop_limit(2);
        assert_eq!(h.hop_limit, 1);
        h.decrement_hop_limit(9);
        assert_eq!(h.hop_limit, 0);
    }

    #[test]
    fn transport_checksum_round_trips() {
        let h = sample();
        let mut seg = vec![0u8; 20];
        seg[0..2].copy_from_slice(&443u16.to_be_bytes());
        let ck = h.transport_checksum(&seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(h.transport_checksum(&seg), 0, "inserting the sum zeroes it");
    }

    #[test]
    fn named_field_access() {
        let mut h = sample();
        assert_eq!(h.get_field("hlim").unwrap(), 64);
        h.set_field("hlim", 9).unwrap();
        assert_eq!(h.hop_limit, 9);
        h.set_field("fl", 0xFFFF_FFFF).unwrap();
        assert_eq!(h.flow_label, 0xF_FFFF, "flow label masked to 20 bits");
        assert!(h.get_field("bogus").is_err());
        assert!(h.set_field("bogus", 1).is_err());
    }

    #[test]
    fn every_field_bit_survives_serialization() {
        // Exhaustive-ish: mutate each field, round-trip, compare.
        for (name, value) in [
            ("tc", 0x3Cu64),
            ("fl", 0x0_BEEF),
            ("plen", 1280),
            ("nh", 17),
            ("hlim", 1),
        ] {
            let mut h = sample();
            h.set_field(name, value).unwrap();
            let (parsed, _) = Ipv6Header::parse(&h.serialize_raw()).unwrap();
            assert_eq!(parsed.get_field(name).unwrap(), value, "{name}");
        }
    }
}
