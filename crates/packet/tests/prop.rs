#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property-based tests for the packet codec.
//!
//! Invariants:
//! 1. serialize → parse is the identity on structured packets (after
//!    `finalize`, which canonicalizes derived fields).
//! 2. serialized packets always carry verifying checksums.
//! 3. the parser never panics on arbitrary bytes.
//! 4. named field get/set round-trips for arbitrary field values.

use packet::field::{FieldKind, FieldRef, FieldValue, Proto};
use packet::{Packet, TcpFlags, TcpOption};
use proptest::prelude::*;

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop::collection::vec(
        prop_oneof![
            Just(TcpOption::Nop),
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps(a, b)),
        ],
        0..5,
    )
}

fn arb_tcp_packet() -> impl Strategy<Value = Packet> {
    (
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        arb_flags(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..600),
        arb_options(),
    )
        .prop_map(|(src, sp, dst, dp, flags, seq, ack, payload, options)| {
            let mut p = Packet::tcp(src, sp, dst, dp, flags, seq, ack, payload);
            p.tcp_header_mut().unwrap().options = options;
            p
        })
}

proptest! {
    #[test]
    fn serialize_parse_identity(p in arb_tcp_packet()) {
        let mut canonical = p.clone();
        canonical.finalize();
        let parsed = Packet::parse(&canonical.serialize()).unwrap();
        prop_assert_eq!(parsed, canonical);
    }

    #[test]
    fn serialized_checksums_always_verify(p in arb_tcp_packet()) {
        let parsed = Packet::parse(&p.serialize()).unwrap();
        prop_assert!(parsed.checksums_ok());
    }

    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::parse(&bytes); // must not panic; Err is fine
    }

    #[test]
    fn udp_round_trip(
        src in any::<[u8;4]>(), sp in any::<u16>(),
        dst in any::<[u8;4]>(), dp in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let p = Packet::udp(src, sp, dst, dp, payload);
        let parsed = Packet::parse(&p.serialize()).unwrap();
        prop_assert!(parsed.checksums_ok());
        prop_assert_eq!(parsed.payload, p.payload);
    }

    #[test]
    fn field_set_then_get_is_stored_value(
        p in arb_tcp_packet(),
        field_idx in 0usize..14,
        raw in any::<u64>(),
    ) {
        let fields = FieldRef::all_for(Proto::Tcp);
        let field = &fields[field_idx % fields.len()];
        let mut q = p.clone();
        // Build a value of the right kind from the raw entropy.
        let value = match field.kind().unwrap() {
            FieldKind::U8 => FieldValue::Num(raw & 0x0F), // dataofs keeps low nibble
            FieldKind::U16 => FieldValue::Num(raw & 0xFFFF),
            FieldKind::U32 => FieldValue::Num(raw & 0xFFFF_FFFF),
            FieldKind::Flags => FieldValue::Str(TcpFlags(raw as u8).to_geneva()),
            FieldKind::Bytes => FieldValue::Bytes(raw.to_be_bytes().to_vec()),
            FieldKind::OptionNum => FieldValue::Num(raw & 0xFF),
        };
        field.set(&mut q, &value).unwrap();
        let read_back = field.get(&q).unwrap();
        // `options-sackok` collapses all values to presence (Num(1)),
        // and timestamps only store 32 bits; accept those projections.
        match (&value, &read_back) {
            (FieldValue::Num(_), FieldValue::Num(_)) if field.name == "options-sackok" => {}
            _ => prop_assert_eq!(&read_back, &value, "field {}", field.to_syntax()),
        }
    }

    #[test]
    fn corrupted_byte_never_verifies_silently(
        p in arb_tcp_packet(),
        flip_byte in 0usize..40,
        bit in 0u8..8,
    ) {
        let bytes = p.serialize();
        let idx = flip_byte % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        if corrupted == bytes { return Ok(()); }
        if let Ok(parsed) = Packet::parse(&corrupted) {
            // If it still parses, then either a checksum now fails, or the
            // flip landed in bytes that are outside both checksums' course
            // (can't happen for IPv4+TCP: every header byte and payload
            // byte is covered), or the flip changed a checksum field to
            // the complementary correct value (possible only when it hit
            // the checksum bytes themselves AND the original was wrong —
            // excluded since we serialize with correct checksums).
            prop_assert!(!parsed.checksums_ok(), "flip at byte {idx} bit {bit} undetected");
        }
    }
}
