#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property-based tests for the packet codec.
//!
//! Invariants:
//! 1. serialize → parse is the identity on structured packets (after
//!    `finalize`, which canonicalizes derived fields).
//! 2. serialized packets always carry verifying checksums.
//! 3. the parser never panics on arbitrary bytes.
//! 4. named field get/set round-trips for arbitrary field values.

use packet::field::{FieldKind, FieldRef, FieldValue, Proto};
use packet::{Packet, TcpFlags, TcpOption};
use proptest::prelude::*;

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop::collection::vec(
        prop_oneof![
            Just(TcpOption::Nop),
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps(a, b)),
        ],
        0..5,
    )
}

fn arb_tcp_packet() -> impl Strategy<Value = Packet> {
    (
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        arb_flags(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..600),
        arb_options(),
    )
        .prop_map(|(src, sp, dst, dp, flags, seq, ack, payload, options)| {
            let mut p = Packet::tcp(src, sp, dst, dp, flags, seq, ack, payload);
            p.tcp_header_mut().unwrap().options = options;
            p
        })
}

proptest! {
    #[test]
    fn serialize_parse_identity(p in arb_tcp_packet()) {
        let mut canonical = p.clone();
        canonical.finalize();
        let parsed = Packet::parse(&canonical.serialize()).unwrap();
        prop_assert_eq!(parsed, canonical);
    }

    #[test]
    fn serialized_checksums_always_verify(p in arb_tcp_packet()) {
        let parsed = Packet::parse(&p.serialize()).unwrap();
        prop_assert!(parsed.checksums_ok());
    }

    #[test]
    fn parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::parse(&bytes); // must not panic; Err is fine
    }

    #[test]
    fn udp_round_trip(
        src in any::<[u8;4]>(), sp in any::<u16>(),
        dst in any::<[u8;4]>(), dp in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let p = Packet::udp(src, sp, dst, dp, payload);
        let parsed = Packet::parse(&p.serialize()).unwrap();
        prop_assert!(parsed.checksums_ok());
        prop_assert_eq!(parsed.payload, p.payload);
    }

    #[test]
    fn field_set_then_get_is_stored_value(
        p in arb_tcp_packet(),
        field_idx in 0usize..14,
        raw in any::<u64>(),
    ) {
        let fields = FieldRef::all_for(Proto::Tcp);
        let field = &fields[field_idx % fields.len()];
        let mut q = p.clone();
        // Build a value of the right kind from the raw entropy.
        let value = match field.kind().unwrap() {
            FieldKind::U8 => FieldValue::Num(raw & 0x0F), // dataofs keeps low nibble
            FieldKind::U16 => FieldValue::Num(raw & 0xFFFF),
            FieldKind::U32 => FieldValue::Num(raw & 0xFFFF_FFFF),
            FieldKind::Flags => FieldValue::Str(TcpFlags(raw as u8).to_geneva()),
            FieldKind::Bytes => FieldValue::Bytes(raw.to_be_bytes().to_vec()),
            FieldKind::OptionNum => FieldValue::Num(raw & 0xFF),
        };
        field.set(&mut q, &value).unwrap();
        let read_back = field.get(&q).unwrap();
        // `options-sackok` collapses all values to presence (Num(1)),
        // and timestamps only store 32 bits; accept those projections.
        match (&value, &read_back) {
            (FieldValue::Num(_), FieldValue::Num(_)) if field.name == "options-sackok" => {}
            _ => prop_assert_eq!(&read_back, &value, "field {}", field.to_syntax()),
        }
    }

    #[test]
    fn corrupted_byte_never_verifies_silently(
        p in arb_tcp_packet(),
        flip_byte in 0usize..40,
        bit in 0u8..8,
    ) {
        let bytes = p.serialize();
        let idx = flip_byte % bytes.len();
        let mut corrupted = bytes.clone();
        corrupted[idx] ^= 1 << bit;
        if corrupted == bytes { return Ok(()); }
        if let Ok(parsed) = Packet::parse(&corrupted) {
            // If it still parses, then either a checksum now fails, or the
            // flip landed in bytes that are outside both checksums' course
            // (can't happen for IPv4+TCP: every header byte and payload
            // byte is covered), or the flip changed a checksum field to
            // the complementary correct value (possible only when it hit
            // the checksum bytes themselves AND the original was wrong —
            // excluded since we serialize with correct checksums).
            prop_assert!(!parsed.checksums_ok(), "flip at byte {idx} bit {bit} undetected");
        }
    }
}

// Invariants added with the copy-on-write payload representation:
// 5. serialize / serialize_into / parse agree with each other and with
//    a packet whose payload was rebuilt as a fresh owned buffer, so the
//    COW representation is unobservable on the wire.
// 6. mutating a cloned payload never leaks into the original, slices
//    see exactly the windowed bytes, and the memoized ones'-complement
//    sum always matches direct computation.
// 7. the RFC 1624 incremental checksum update equals a full recompute
//    for every mutated word (16- and 32-bit), under the one condition
//    real IP/TCP checksums always satisfy: some untouched word of the
//    covered data is nonzero.
proptest! {
    #[test]
    fn cow_serialize_paths_and_owned_rebuild_agree(p in arb_tcp_packet()) {
        let mut canonical = p.clone();
        canonical.finalize();
        let bytes = canonical.serialize();
        // serialize_into appends after any existing bytes.
        let mut buf = vec![0xA5u8, 0x5A];
        canonical.serialize_into(&mut buf);
        prop_assert_eq!(&buf[2..], &bytes[..]);
        // Rebuilding the payload as a freshly-owned buffer (the
        // pre-COW representation) changes nothing on the wire.
        let mut owned = canonical.clone();
        owned.payload = owned.payload.to_vec().into();
        prop_assert_eq!(owned.serialize(), bytes.clone());
        prop_assert_eq!(Packet::parse(&bytes).unwrap(), canonical);
    }

    #[test]
    fn cow_clone_isolation_and_slices(
        payload in prop::collection::vec(any::<u8>(), 1..300),
        cut_a in 0usize..400,
        cut_b in 0usize..400,
        poke in 0usize..400,
    ) {
        let buf: packet::PayloadBuf = payload.clone().into();
        let a = cut_a % (payload.len() + 1);
        let b = cut_b % (payload.len() + 1);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert_eq!(buf.slice(lo..hi).to_vec(), payload[lo..hi].to_vec());
        // Mutating a clone must not leak into the original.
        let mut cloned = buf.clone();
        let at = poke % payload.len();
        cloned.make_mut()[at] ^= 0xFF;
        prop_assert_eq!(buf.to_vec(), payload.clone());
        prop_assert_eq!(cloned[at], payload[at] ^ 0xFF);
        // The memoized checksum term tracks the bytes on both sides.
        use packet::checksum::ones_complement_sum;
        prop_assert_eq!(buf.ones_sum(), ones_complement_sum(&payload));
        prop_assert_eq!(cloned.ones_sum(), ones_complement_sum(&cloned.to_vec()));
    }

    #[test]
    fn incremental_update_matches_full_recompute(
        mut words in prop::collection::vec(any::<u16>(), 2..24),
        anchor in any::<u16>(),
        pick in 0usize..32,
        new in any::<u16>(),
    ) {
        use packet::checksum::{incremental_update, internet_checksum};
        // Real IP/TCP checksums always cover nonzero fixed words
        // (version/IHL, protocol); word 0 stands in for those, which
        // pins both the old and new checksum to the canonical
        // representative of their ones'-complement class.
        words[0] = anchor | 1;
        let idx = 1 + pick % (words.len() - 1);
        let checksum_of = |ws: &[u16]| {
            let bytes: Vec<u8> = ws.iter().flat_map(|w| w.to_be_bytes()).collect();
            internet_checksum(&bytes)
        };
        let before = checksum_of(&words);
        let old = words[idx];
        words[idx] = new;
        prop_assert_eq!(incremental_update(before, old, new), checksum_of(&words));
    }

    #[test]
    fn incremental_update32_matches_full_recompute(
        mut words in prop::collection::vec(any::<u16>(), 3..24),
        anchor in any::<u16>(),
        pick in 0usize..32,
        new in any::<u32>(),
    ) {
        use packet::checksum::{incremental_update32, internet_checksum};
        words[0] = anchor | 1;
        let idx = 1 + pick % (words.len() - 2);
        let checksum_of = |ws: &[u16]| {
            let bytes: Vec<u8> = ws.iter().flat_map(|w| w.to_be_bytes()).collect();
            internet_checksum(&bytes)
        };
        let before = checksum_of(&words);
        let old = (u32::from(words[idx]) << 16) | u32::from(words[idx + 1]);
        words[idx] = (new >> 16) as u16;
        words[idx + 1] = new as u16;
        prop_assert_eq!(incremental_update32(before, old, new), checksum_of(&words));
    }
}
