//! The proof gate over real programs: every built-in strategy's
//! compiled program discharges its proof obligations, the proved
//! emission bound agrees with the tree-level bound the
//! `dup-amplification` lint uses, and the static checksum-validity
//! facts place `TamperHint::TrustedValid` exactly where the dynamic
//! fast-path precondition holds.

use dplane::{lower_ops, Op, Program, ProgramCache};
use geneva::engine::TamperHint;
use geneva::library;
use geneva::Strategy;
use std::sync::Arc;
use strata::{canonicalize_strategy, verify_ops};

fn all_library() -> Vec<(String, Strategy)> {
    library::server_side()
        .iter()
        .chain(library::variants().iter())
        .map(|named| (named.name.to_string(), named.strategy()))
        .collect()
}

#[test]
fn every_library_program_verifies() {
    for (name, strategy) in all_library() {
        let program = Program::compile(&strategy)
            .unwrap_or_else(|e| panic!("{name} failed verification: {e}"));
        let proof = program.proof.expect("checked compile carries its proof");
        assert!(proof.max_stack >= 1, "{name}: degenerate stack bound");
    }
}

/// Satellite cross-check: the abstract interpreter's per-part emission
/// bound must equal the tree-level `absint::max_emission` the
/// `dup-amplification` lint consumes — two independent derivations of
/// the same worst case (one over compiled ops, one over the AST). A
/// disagreement means one of them is unsound.
#[test]
fn proved_emission_bound_matches_tree_bound() {
    for (name, strategy) in all_library() {
        // Compile canonicalizes first; compare against the same tree.
        let canonical = canonicalize_strategy(&strategy);
        let program = Program::compile(&strategy).expect("library verifies");
        for (direction, compiled, parts) in [
            ("outbound", &program.outbound, &canonical.outbound),
            ("inbound", &program.inbound, &canonical.inbound),
        ] {
            assert_eq!(compiled.len(), parts.len(), "{name} {direction}");
            for (i, (part, source)) in compiled.iter().zip(parts).enumerate() {
                let proof = verify_ops(&lower_ops(&part.ops))
                    .unwrap_or_else(|e| panic!("{name} {direction} part {i}: {e}"));
                let tree = strata::absint::max_emission(&source.action);
                assert_eq!(
                    proof.max_emit, tree,
                    "{name} {direction} part {i}: ops proof {} != tree bound {}",
                    proof.max_emit, tree
                );
            }
        }
    }
}

/// The abstract interpreter starts every body with the input packet
/// `Unknown` (the data plane makes no promise about wire packets'
/// checksums), so the first tamper of a chain runs Checked; every
/// tamper downstream of a refinalizing tamper is provably `Valid` and
/// carries the fast-path license — until a checksum corruption
/// poisons the trust again.
#[test]
fn trusted_valid_hints_follow_the_static_proof() {
    let chain = geneva::parse_strategy(
        "[TCP:flags:SA]-tamper{TCP:window:replace:9}(tamper{IP:ttl:replace:7}(tamper{TCP:chksum:corrupt}(tamper{TCP:urgptr:replace:3},)),)-| \\/ ",
    )
    .expect("parses");
    let program = Program::compile(&chain).expect("verifies");
    let hints: Vec<(String, TamperHint)> = program.outbound[0]
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Tamper { field, hint, .. } => Some((field.to_syntax(), *hint)),
            _ => None,
        })
        .collect();
    assert_eq!(hints.len(), 4, "{hints:?}");
    // Ops execute in compile order: window, ttl, chksum, urgptr.
    // The first tamper sees the raw wire packet: no promise.
    assert_eq!(hints[0], ("TCP:window".into(), TamperHint::Checked));
    // Downstream of a refinalizing tamper the packet is provably Valid.
    assert_eq!(hints[1], ("IP:ttl".into(), TamperHint::TrustedValid));
    // The corrupt itself still sees a valid packet...
    assert_eq!(hints[2], ("TCP:chksum".into(), TamperHint::TrustedValid));
    // ...but everything after it must re-check at run time.
    assert_eq!(hints[3], ("TCP:urgptr".into(), TamperHint::Checked));
}

#[test]
fn unverifiable_strategies_are_refused_and_counted() {
    // 13 nested duplicates: 2^13 = 8192 emitted packets per trigger,
    // over the 4096 amplification ceiling.
    let mut text = String::from("duplicate");
    for _ in 0..12 {
        text = format!("duplicate({text},{text})");
    }
    let bomb = geneva::parse_strategy(&format!("[TCP:flags:SA]-{text}-| \\/ ")).expect("parses");
    let err = Program::compile(&bomb).expect_err("amplification bomb must be refused");
    assert!(
        err.to_string().contains("exceeds the cap"),
        "unexpected error: {err}"
    );

    let cache = ProgramCache::new();
    assert!(cache.get_or_verify(&Arc::new(bomb.clone())).is_err());
    assert_eq!(cache.verify_rejects(), 1);
    // The escape hatch still compiles it — with no proof attached.
    let unchecked = Program::compile_unchecked(&bomb);
    assert!(unchecked.proof.is_none());
}
