//! Threaded-vs-single-thread equivalence over generated strategies:
//! for arbitrary (strategy, seed base, worker count, batch size), the
//! run-to-completion threaded plane must emit **byte-identical packets
//! in identical order** to the single-threaded `Dplane::pump`, with
//! identical aggregate metrics — the generated-strategy analog of the
//! hand-picked workloads in `threaded.rs`'s unit tests, mirroring the
//! generators of the interpreter differential suite.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code

use dplane::{
    pump_threaded, Dplane, DplaneConfig, FixedClassifier, FlowConfig, SeedMode, ThreadedConfig,
    VecIo,
};
use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use geneva::Strategy as GenevaStrategy;
use packet::field::{FieldRef, FieldValue};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;
use std::sync::Arc;

const SERVER: [u8; 4] = [93, 184, 216, 34];

/// A multi-flow bidirectional workload: per flow a client SYN
/// (inbound), server SYN+ACK and data (outbound), and a client FIN
/// (inbound), plus one UDP flow — every packet shape the compiled
/// triggers can fire on, spread over enough flows to occupy every
/// worker.
fn workload(flows: u8) -> Vec<(u64, Packet)> {
    let mut packets = Vec::new();
    let mut t = 0u64;
    for n in 1..=flows {
        let client = [10, 7, n % 3, n];
        let port = 40000 + u16::from(n);
        let mut syn = Packet::tcp(client, port, SERVER, 80, TcpFlags::SYN, 100, 0, vec![]);
        syn.finalize();
        let mut syn_ack = Packet::tcp(
            SERVER,
            80,
            client,
            port,
            TcpFlags::SYN_ACK,
            9000,
            101,
            vec![],
        );
        syn_ack.tcp_header_mut().unwrap().options = vec![
            packet::TcpOption::Mss(1460),
            packet::TcpOption::WindowScale(7),
        ];
        syn_ack.finalize();
        let mut data = Packet::tcp(
            SERVER,
            80,
            client,
            port,
            TcpFlags::PSH_ACK,
            9001,
            101,
            b"HTTP/1.1 200 OK\r\n\r\nforbidden fruit".to_vec(),
        );
        data.finalize();
        let mut fin = Packet::tcp(
            client,
            port,
            SERVER,
            80,
            TcpFlags::RST_ACK,
            150,
            9002,
            vec![],
        );
        fin.finalize();
        for pkt in [syn, syn_ack, data, fin] {
            packets.push((t, pkt));
            t += 50;
        }
    }
    let mut udp = Packet::udp(
        [10, 7, 0, 200],
        5353,
        SERVER,
        53,
        b"\x12\x34\x01\x00".to_vec(),
    );
    udp.finalize();
    packets.push((t, udp));
    packets
}

// ---- compact strategy generators (mirroring tests/differential.rs) --

const FIELDS: &[&str] = &[
    "TCP:flags",
    "TCP:seq",
    "TCP:ack",
    "TCP:window",
    "TCP:chksum",
    "TCP:load",
    "IP:ttl",
];

fn arb_value(field: &'static str) -> BoxedStrategy<FieldValue> {
    match field {
        "TCP:flags" => prop::sample::select(vec!["S", "SA", "R", "RA", "PA"])
            .prop_map(|s| FieldValue::Str(s.to_string()))
            .boxed(),
        "TCP:load" => prop_oneof![
            Just(FieldValue::Empty),
            prop::collection::vec(any::<u8>(), 1..6).prop_map(FieldValue::Bytes),
        ]
        .boxed(),
        _ => (0u64..65536).prop_map(FieldValue::Num).boxed(),
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![4 => Just(Action::Send), 1 => Just(Action::Drop)].boxed();
    leaf.prop_recursive(2, 12, 3, |inner| {
        let tamper_next = inner.clone();
        prop_oneof![
            prop::sample::select(FIELDS.to_vec()).prop_flat_map(move |field| {
                let next = tamper_next.clone();
                prop_oneof![
                    Just(TamperMode::Corrupt),
                    arb_value(field).prop_map(TamperMode::Replace),
                ]
                .prop_flat_map(move |mode| {
                    let mode = mode.clone();
                    next.clone().prop_map(move |n| Action::Tamper {
                        field: FieldRef::parse(field).expect("valid"),
                        mode: mode.clone(),
                        next: Box::new(n),
                    })
                })
            }),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Action::Duplicate(Box::new(a), Box::new(b))),
        ]
        .boxed()
    })
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    let field = prop::sample::select(vec!["TCP:flags", "TCP:window", "IP:ttl"]);
    let value = prop::sample::select(vec!["SA", "S", "PA", "R", "9000", "64", ""]);
    (field, value).prop_map(|(f, v)| Trigger {
        field: FieldRef::parse(f).expect("valid"),
        value: v.to_string(),
    })
}

fn arb_strategy() -> impl Strategy<Value = GenevaStrategy> {
    (
        prop::collection::vec((arb_trigger(), arb_action()), 1..3),
        prop::collection::vec((arb_trigger(), arb_action()), 0..2),
    )
        .prop_map(|(out, inb)| GenevaStrategy {
            outbound: out
                .into_iter()
                .map(|(trigger, action)| StrategyPart { trigger, action })
                .collect(),
            inbound: inb
                .into_iter()
                .map(|(trigger, action)| StrategyPart { trigger, action })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threaded_equals_single_for_generated_strategies(
        strategy in arb_strategy(),
        seed_base in any::<u64>(),
        workers in 1usize..9,
        batch in 1usize..80,
    ) {
        let strategy = Arc::new(strategy);
        let packets = workload(30);
        let dcfg = DplaneConfig {
            flow: FlowConfig::default(),
            seed: SeedMode::PerFlow(seed_base),
            unchecked: false,
        };

        let mut single_io = VecIo::new(packets.clone());
        let mut dp = Dplane::new(
            DplaneConfig {
                flow: FlowConfig { shards: workers, ..FlowConfig::default() },
                ..dcfg
            },
            FixedClassifier(Some(Arc::clone(&strategy))),
        );
        let single_n = dp.pump(&mut single_io, SERVER);
        let single = dp.metrics();

        let mut io = VecIo::new(packets);
        let (n, threaded) = pump_threaded(
            &mut io,
            SERVER,
            dcfg,
            ThreadedConfig { workers, batch, ring_slots: 3 },
            |_| FixedClassifier(Some(Arc::clone(&strategy))),
        );

        prop_assert_eq!(n, single_n);
        prop_assert_eq!(io.output.len(), single_io.output.len());
        for ((tw, pw), (ts, ps)) in io.output.iter().zip(&single_io.output) {
            prop_assert_eq!(tw, ts);
            prop_assert_eq!(pw.serialize_raw(), ps.serialize_raw());
        }
        // Same shard placement ⇒ identical per-shard metrics, shared
        // cache ⇒ identical compile counters: equal reports render
        // equal JSON bytes.
        prop_assert_eq!(threaded.to_json(), single.to_json());
    }
}
