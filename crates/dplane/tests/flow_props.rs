#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property tests for the sharded flow table's determinism contract:
//!
//! 1. the live flow count never exceeds the configured capacity;
//! 2. an evicted flow that returns re-classifies to exactly the state
//!    it lost — same program, same seed, same rewritten packets;
//! 3. the shard count changes *where* flows live and nothing else:
//!    emitted packets and aggregate metrics are bit-identical for any
//!    shard count.

use dplane::{Classifier, Dplane, DplaneConfig, FlowConfig, SeedMode};
use geneva::library;
use packet::{Packet, TcpFlags};
use proptest::prelude::*;
use std::sync::Arc;

const SERVER: [u8; 4] = [93, 184, 216, 34];

/// A deterministic classifier that is a pure function of the client
/// address: clients 0/4/8/… pass through, everyone else gets a library
/// strategy picked by address byte.
struct ByAddr;

impl Classifier for ByAddr {
    fn classify(&mut self, first_pkt: &Packet) -> Option<Arc<geneva::Strategy>> {
        let client = if first_pkt.ip.src == SERVER {
            first_pkt.ip.dst
        } else {
            first_pkt.ip.src
        };
        let idx = usize::from(client[3]);
        if idx % 4 == 0 {
            return None;
        }
        let named = library::server_side()[idx % 11];
        Some(Arc::new(named.strategy()))
    }
}

/// One workload event: which client, which direction, how much
/// simulated time passes first.
#[derive(Debug, Clone, Copy)]
struct Event {
    client: u8,
    outbound: bool,
    dt: u64,
}

fn packet_for(e: Event) -> Packet {
    let client = [10, 7, 0, e.client];
    let port = 40_000 + u16::from(e.client);
    let mut pkt = if e.outbound {
        Packet::tcp(
            SERVER,
            80,
            client,
            port,
            TcpFlags::SYN_ACK,
            9000,
            101,
            vec![],
        )
    } else {
        Packet::tcp(client, port, SERVER, 80, TcpFlags::SYN, 100, 0, vec![])
    };
    pkt.finalize();
    pkt
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u8..24, any::<bool>(), 0u64..5_000), 1..120).prop_map(|v| {
        v.into_iter()
            .map(|(client, outbound, dt)| Event {
                client,
                outbound,
                dt,
            })
            .collect()
    })
}

fn run_workload(
    events: &[Event],
    shards: usize,
    capacity: usize,
) -> (Vec<Vec<u8>>, Dplane<ByAddr>) {
    let cfg = DplaneConfig {
        flow: FlowConfig {
            shards,
            capacity,
            idle_timeout: 50_000,
        },
        seed: SeedMode::PerFlow(0xF10),
        unchecked: false,
    };
    let mut dp = Dplane::new(cfg, ByAddr);
    let mut now = 0u64;
    let mut emitted = Vec::new();
    let mut out = Vec::new();
    for &e in events {
        now += e.dt;
        out.clear();
        let pkt = packet_for(e);
        if e.outbound {
            dp.process_outbound(&pkt, now, &mut out);
        } else {
            dp.process_inbound(&pkt, now, &mut out);
        }
        for p in &out {
            emitted.push(p.serialize_raw());
        }
    }
    (emitted, dp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn live_flows_never_exceed_capacity(events in arb_events(), capacity in 1usize..8) {
        let cfg = DplaneConfig {
            flow: FlowConfig { shards: 3, capacity, idle_timeout: 50_000 },
            seed: SeedMode::PerFlow(0xF10),
            unchecked: false,
        };
        let mut dp = Dplane::new(cfg, ByAddr);
        let mut now = 0u64;
        let mut out = Vec::new();
        for &e in &events {
            now += e.dt;
            out.clear();
            dp.process_outbound(&packet_for(e), now, &mut out);
            prop_assert!(dp.flows_live() <= capacity,
                "{} live flows with capacity {capacity}", dp.flows_live());
        }
        // With more clients than capacity the LRU must actually fire.
        let distinct = events.iter().map(|e| e.client).collect::<std::collections::HashSet<_>>();
        if distinct.len() > capacity {
            prop_assert!(dp.metrics().totals().evicted_lru > 0);
        }
    }

    #[test]
    fn evicted_flows_reclassify_identically(events in arb_events()) {
        // Tiny capacity: most flows get evicted and return. A flow's
        // rewrite of a given packet is a pure function of its key, so
        // processing the same packet first and last must agree even
        // though the flow state was destroyed and rebuilt in between.
        let capacity = 2;
        let probe = packet_for(Event { client: 1, outbound: true, dt: 0 });
        let cfg = DplaneConfig {
            flow: FlowConfig { shards: 2, capacity, idle_timeout: u64::MAX },
            seed: SeedMode::PerFlow(0xF10),
            unchecked: false,
        };
        let mut dp = Dplane::new(cfg, ByAddr);
        let mut first = Vec::new();
        dp.process_outbound(&probe, 1, &mut first);
        let mut now = 1u64;
        let mut out = Vec::new();
        for &e in &events {
            now += e.dt + 1;
            out.clear();
            dp.process_outbound(&packet_for(e), now, &mut out);
        }
        let mut again = Vec::new();
        dp.process_outbound(&probe, now + 1, &mut again);
        let first_bytes: Vec<_> = first.iter().map(Packet::serialize_raw).collect();
        let again_bytes: Vec<_> = again.iter().map(Packet::serialize_raw).collect();
        prop_assert_eq!(first_bytes, again_bytes,
            "rewrites changed after eviction + return");
    }

    #[test]
    fn shard_count_never_changes_outputs(events in arb_events(), capacity in 1usize..12) {
        let (base_out, base_dp) = run_workload(&events, 1, capacity);
        let base_totals = base_dp.metrics().totals();
        let base_report = base_dp.metrics();
        for shards in [2usize, 3, 8] {
            let (out, dp) = run_workload(&events, shards, capacity);
            prop_assert_eq!(&out, &base_out, "emitted packets changed at {} shards", shards);
            let report = dp.metrics();
            prop_assert_eq!(&report.totals(), &base_totals,
                "aggregate metrics changed at {} shards", shards);
            prop_assert_eq!(&report.strategies, &base_report.strategies);
            prop_assert_eq!(report.flows_live, base_report.flows_live);
            prop_assert_eq!(report.cache_misses, base_report.cache_misses);
        }
    }
}

/// Idle expiry is part of the same purity contract: a flow that times
/// out and returns is recreated, visible in the metrics, with the same
/// state.
#[test]
fn idle_flows_expire_and_rebuild() {
    let cfg = DplaneConfig {
        flow: FlowConfig {
            shards: 2,
            capacity: 64,
            idle_timeout: 1_000,
        },
        seed: SeedMode::PerFlow(0xF10),
        unchecked: false,
    };
    let mut dp = Dplane::new(cfg, ByAddr);
    let probe = packet_for(Event {
        client: 1,
        outbound: true,
        dt: 0,
    });
    let mut first = Vec::new();
    dp.process_outbound(&probe, 1, &mut first);
    // Long after the idle timeout: the entry is stale, expired on
    // touch, and rebuilt.
    let mut again = Vec::new();
    dp.process_outbound(&probe, 10_000, &mut again);
    let totals = dp.metrics().totals();
    assert!(totals.evicted_idle >= 1, "idle expiry never fired");
    assert_eq!(totals.flows_created, 2, "flow must be recreated");
    let a: Vec<_> = first.iter().map(Packet::serialize_raw).collect();
    let b: Vec<_> = again.iter().map(Packet::serialize_raw).collect();
    assert_eq!(a, b, "rebuilt flow rewrote differently");
}
