//! Weave model test for [`dplane::ProgramCache`]: a rejected hot
//! reload stays counter-neutral while flow-creation lookups race it on
//! the read lock, in every (preemption-bounded) interleaving.
//!
//! Run with `cargo test -p dplane --features weave`. Without the
//! feature this file compiles to nothing.
#![cfg(feature = "weave")]

use std::sync::Arc;

use dplane::program::ProgramCache;
use geneva::Strategy;

/// 13 nested duplicates: 2^13 = 8192 emitted packets per trigger,
/// over the 4096 amplification ceiling — the canonical strategy the
/// proof gate refuses (same exemplar as `tests/verify.rs`).
fn amplification_bomb() -> Strategy {
    let mut text = String::from("duplicate");
    for _ in 0..12 {
        text = format!("duplicate({text},{text})");
    }
    geneva::parse_strategy(&format!("[TCP:flags:SA]-{text}-| \\/ ")).expect("bomb parses")
}

/// Whatever order the verify-reject and the flow-creation lookups land
/// in, the counters read exactly like a single-threaded run: one miss
/// (first compile), one hit (second lookup), one reject (the bomb),
/// one cached program. A reject that leaked a miss, double-counted a
/// hit, or left a half-installed entry shows up as a panic in some
/// schedule.
#[test]
fn rejected_reload_is_counter_neutral_under_racing_lookups() {
    let bomb = Arc::new(amplification_bomb());
    let flow =
        Arc::new(geneva::parse_strategy("[TCP:flags:SA]-duplicate(,)-| \\/ ").expect("parses"));
    let cfg = weave::Config {
        preemption_bound: Some(2),
        ..weave::Config::default()
    };
    let report = weave::check(cfg, move || {
        let cache = Arc::new(ProgramCache::new());
        let reloader = {
            let cache = Arc::clone(&cache);
            let bomb = Arc::clone(&bomb);
            weave::thread::spawn(move || {
                cache
                    .get_or_verify(&bomb)
                    .expect_err("amplification bomb must be refused")
            })
        };
        let first = cache.get_or_compile(&flow);
        let second = cache.get_or_compile(&flow);
        assert_eq!(first.key, second.key, "same equivalence class");
        reloader.join().expect("reloader panicked");
        assert_eq!(cache.len(), 1, "reject must not install anything");
        assert_eq!(
            (cache.hits(), cache.misses(), cache.verify_rejects()),
            (1, 1, 1),
            "counters must match a single-threaded run"
        );
    });
    eprintln!(
        "weave[cache_reject_neutral]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.schedules > 1, "model must actually branch");
}
