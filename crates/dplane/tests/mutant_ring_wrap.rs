//! Bug-injection self-test: the seeded wraparound off-by-one in
//! `RingBuf::push` (tail computed one slot past the correct position)
//! must be caught by weave as a panicking counterexample, with a
//! deterministically replaying token.
//!
//! One mutant per test binary: the toggles are process-global.
#![cfg(all(feature = "weave", feature = "mutants"))]

use std::sync::atomic::Ordering;

use dplane::ring::{channel, mutants};

/// Three items through a capacity-2 ring. With the off-by-one, the
/// first push lands one slot ahead of the head, so either the consumer
/// receives out of order (FIFO assertion) or a later push lands on an
/// occupied slot ("tail slot occupied") — both panics weave reports
/// with the schedule that gets there.
fn model() {
    let (tx, rx) = channel::<u32>(2);
    let producer = weave::thread::spawn(move || {
        for i in 1..=3 {
            tx.send(i).expect("receiver alive");
        }
    });
    let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
    producer.join().expect("producer panicked");
    assert_eq!(got, vec![1, 2, 3], "ring must stay FIFO without loss");
}

#[test]
fn weave_detects_mutant_wrap_off_by_one_with_replayable_token() {
    mutants::RING_WRAP_OFF_BY_ONE.store(true, Ordering::SeqCst);
    let cfg = weave::Config::default();
    let report = weave::explore(cfg.clone(), model);
    eprintln!(
        "weave[mutant_ring_wrap]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    let failure = report.failure.expect("weave must catch the wraparound bug");
    assert_eq!(failure.kind, weave::FailureKind::Panic);
    eprintln!("counterexample: {} — {}", failure.token, failure.message);
    for _ in 0..2 {
        let again = weave::replay(cfg.clone(), &failure.token, model)
            .expect("replaying the counterexample must fail again");
        assert_eq!(again.kind, failure.kind);
        assert_eq!(again.token, failure.token, "replay must be deterministic");
    }
}
