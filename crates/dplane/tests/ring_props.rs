//! Property tests for the SPSC ring ([`dplane::ring`]): FIFO order
//! survives arbitrary interleavings of pushes and pops (wraparound),
//! full/empty boundaries reject and report correctly, and the blocking
//! channel round-trips whole streams through tiny rings.

#![allow(clippy::unwrap_used)] // test code

use dplane::ring::{channel, RingBuf};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential against `VecDeque`: an arbitrary push/pop script
    /// drives the ring through every wraparound and boundary state,
    /// and each step must agree with the unbounded reference — pushes
    /// rejected exactly at capacity (returning the item), pops
    /// yielding exactly the FIFO front, len/is_empty/is_full tracking
    /// throughout.
    #[test]
    fn ring_agrees_with_vecdeque_reference(
        capacity in 1usize..9,
        script in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut ring = RingBuf::with_capacity(capacity);
        let mut reference: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for push in script {
            if push {
                match ring.push(next) {
                    Ok(()) => {
                        prop_assert!(reference.len() < capacity, "push succeeded past capacity");
                        reference.push_back(next);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, next, "rejected push must return the item");
                        prop_assert_eq!(reference.len(), capacity, "push rejected below capacity");
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(ring.pop(), reference.pop_front());
            }
            prop_assert_eq!(ring.len(), reference.len());
            prop_assert_eq!(ring.is_empty(), reference.is_empty());
            prop_assert_eq!(ring.is_full(), reference.len() == capacity);
        }
        // Drain: remaining items come out in FIFO order.
        while let Some(want) = reference.pop_front() {
            prop_assert_eq!(ring.pop(), Some(want));
        }
        prop_assert_eq!(ring.pop(), None);
    }

    /// The blocking channel delivers every item exactly once, in
    /// order, for any (ring size, stream length) — including rings of
    /// one slot, where every send waits on the previous recv.
    #[test]
    fn channel_round_trips_any_stream(
        slots in 1usize..6,
        n in 0u32..400,
    ) {
        let (tx, rx) = channel::<u32>(slots);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..n {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
            prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
            Ok(())
        })?;
    }
}
