//! Weave model tests for the SPSC ring channel: FIFO delivery without
//! loss or duplication through full, empty, and close, in **every**
//! interleaving of producer and consumer.
//!
//! Run with `cargo test -p dplane --features weave`. Without the
//! feature this file compiles to nothing.
#![cfg(feature = "weave")]

use dplane::ring::channel;

/// Three items through a capacity-1 ring: the producer hits
/// backpressure (full), the consumer hits empty, and the close-drain
/// path runs — every wait/notify edge of the channel is exercised.
#[test]
fn ring_fifo_through_full_empty_close() {
    let report = weave::check(weave::Config::default(), || {
        let (tx, rx) = channel::<u32>(1);
        let producer = weave::thread::spawn(move || {
            for i in 1..=3 {
                tx.send(i).expect("receiver alive");
            }
            // tx drops here: ring closes, consumer drains then ends.
        });
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
        producer.join().expect("producer panicked");
        assert_eq!(got, vec![1, 2, 3], "items lost, duplicated, or reordered");
    });
    eprintln!(
        "weave[ring_fifo]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.schedules > 1, "model must actually branch");
}

/// Closing with items still queued: the consumer drains what remains
/// and then — and only then — sees end-of-stream, regardless of where
/// the drop lands relative to the receives.
#[test]
fn close_drains_before_end_of_stream() {
    let report = weave::check(weave::Config::default(), || {
        let (tx, rx) = channel::<u32>(2);
        let producer = weave::thread::spawn(move || {
            tx.send(1).expect("receiver alive");
            tx.send(2).expect("receiver alive");
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None, "closed after drain");
        producer.join().expect("producer panicked");
    });
    eprintln!(
        "weave[ring_close]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    assert!(report.failure.is_none());
    assert!(report.exhausted, "small model must be fully explored");
}
