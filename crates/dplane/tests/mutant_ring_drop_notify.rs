//! Bug-injection self-test: the seeded lost wakeup in `Sender::send`
//! (push without `items.notify_one`) must be caught by weave as a
//! deadlock, and the counterexample token must replay deterministically.
//!
//! One mutant per test binary: the toggles are process-global.
#![cfg(all(feature = "weave", feature = "mutants"))]

use std::sync::atomic::Ordering;

use dplane::ring::{channel, mutants};

/// A consumer that parks on the empty ring before the producer's push
/// never learns the item arrived: the consumer blocks forever on the
/// items condvar and the producer blocks forever in `join` — the
/// classic lost wakeup, observed as a deadlock. (The sender must stay
/// alive across the join: dropping it closes the ring, and the close
/// path's own notify would mask the missing one.)
fn model() {
    let (tx, rx) = channel::<u32>(1);
    let consumer = weave::thread::spawn(move || rx.recv());
    tx.send(7).expect("receiver alive");
    assert_eq!(consumer.join().expect("consumer panicked"), Some(7));
    drop(tx);
}

#[test]
fn weave_detects_mutant_dropped_notify_with_replayable_token() {
    mutants::RING_DROP_NOTIFY.store(true, Ordering::SeqCst);
    let cfg = weave::Config::default();
    let report = weave::explore(cfg.clone(), model);
    eprintln!(
        "weave[mutant_ring_drop_notify]: {} schedules explored ({} pruned)",
        report.schedules, report.pruned
    );
    let failure = report.failure.expect("weave must catch the lost wakeup");
    assert_eq!(failure.kind, weave::FailureKind::Deadlock);
    eprintln!("counterexample: {} — {}", failure.token, failure.message);
    for _ in 0..2 {
        let again = weave::replay(cfg.clone(), &failure.token, model)
            .expect("replaying the counterexample must fail again");
        assert_eq!(again.kind, failure.kind);
        assert_eq!(again.token, failure.token, "replay must be deterministic");
    }
}
