#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Differential suite: the compiled program must agree with the
//! `geneva::Engine` interpreter, packet-for-packet, on
//!
//! 1. every strategy the paper names (the full library: the 11
//!    server-side strategies, the §5 variant species, the client-side
//!    strategies, and the client-side→server-side analogs), and
//! 2. hundreds of generated strategies (arbitrary triggers, tamper
//!    chains, duplicates, fragments), mirroring the `geneva` crate's
//!    own property generators.
//!
//! Engine corruption is seeded per (packet, field) site, so the
//! comparison is exact — not statistical.

use dplane::Program;
use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use geneva::{library, Engine, Strategy as GenevaStrategy};
use packet::field::{FieldRef, FieldValue};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;

/// The packet shapes the paper's strategies trigger on (and a few they
/// must not).
fn shapes() -> Vec<Packet> {
    let mut syn_ack = Packet::tcp(
        [93, 184, 216, 34],
        80,
        [10, 7, 0, 2],
        40000,
        TcpFlags::SYN_ACK,
        9000,
        1001,
        vec![],
    );
    syn_ack.tcp_header_mut().unwrap().options = vec![
        packet::TcpOption::Mss(1460),
        packet::TcpOption::WindowScale(7),
    ];
    syn_ack.finalize();

    let mut data = Packet::tcp(
        [93, 184, 216, 34],
        80,
        [10, 7, 0, 2],
        40000,
        TcpFlags::PSH_ACK,
        9001,
        1001,
        b"HTTP/1.1 200 OK\r\n\r\nforbidden fruit".to_vec(),
    );
    data.finalize();

    let mut syn = Packet::tcp(
        [10, 7, 0, 2],
        40000,
        [93, 184, 216, 34],
        80,
        TcpFlags::SYN,
        100,
        0,
        vec![],
    );
    syn.finalize();

    let mut fin = Packet::tcp(
        [93, 184, 216, 34],
        80,
        [10, 7, 0, 2],
        40000,
        TcpFlags::RST_ACK,
        9050,
        1002,
        vec![],
    );
    fin.finalize();

    let mut udp = Packet::udp(
        [10, 7, 0, 2],
        5353,
        [93, 184, 216, 34],
        53,
        b"\x12\x34\x01\x00".to_vec(),
    );
    udp.finalize();

    vec![syn_ack, data, syn, fin, udp]
}

/// Interpreter vs. compiled, both directions, one (strategy, seed).
fn assert_equivalent(strategy: &GenevaStrategy, seed: u64, label: &str) {
    let mut engine = Engine::new(strategy.clone(), seed);
    let program = Program::compile(strategy).expect("library programs verify");
    for (i, pkt) in shapes().iter().enumerate() {
        let want_out = engine.apply_outbound(pkt);
        let got_out = program.run_outbound(pkt, seed);
        assert_eq!(
            want_out, got_out,
            "{label} seed {seed} shape {i}: outbound diverged"
        );
        let want_in = engine.apply_inbound(pkt);
        let got_in = program.run_inbound(pkt, seed);
        assert_eq!(
            want_in, got_in,
            "{label} seed {seed} shape {i}: inbound diverged"
        );
        // Wire bytes too: raw-faithful vs finalized must match exactly.
        for (w, g) in want_out.iter().zip(&got_out) {
            assert_eq!(w.serialize_raw(), g.serialize_raw(), "{label} bytes");
        }
    }
}

#[test]
fn full_library_is_equivalent() {
    let mut checked = 0;
    for named in library::server_side() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            assert_equivalent(&named.strategy(), seed, named.name);
            checked += 1;
        }
    }
    for named in library::variants().iter().chain(&library::client_side()) {
        for seed in [0u64, 7] {
            assert_equivalent(&named.strategy(), seed, named.name);
            checked += 1;
        }
    }
    for (name, _pos, strategy) in library::server_side_analogs() {
        for seed in [0u64, 7] {
            assert_equivalent(&strategy, seed, &name);
            checked += 1;
        }
    }
    assert!(checked > 60, "library sweep too small: {checked}");
}

// ---- generated strategies, mirroring geneva/tests/prop.rs ----------

const FIELDS: &[&str] = &[
    "TCP:flags",
    "TCP:seq",
    "TCP:ack",
    "TCP:window",
    "TCP:chksum",
    "TCP:load",
    "TCP:urgptr",
    "TCP:options-wscale",
    "TCP:options-mss",
    "IP:ttl",
    "IP:tos",
];

fn arb_value(field: &'static str) -> BoxedStrategy<FieldValue> {
    match field {
        "TCP:flags" => prop_oneof![
            Just(FieldValue::Empty),
            prop::sample::select(vec!["S", "SA", "R", "RA", "F", "A", "PA"])
                .prop_map(|s| FieldValue::Str(s.to_string())),
        ]
        .boxed(),
        "TCP:load" => prop_oneof![
            Just(FieldValue::Empty),
            Just(FieldValue::Str("GET / HTTP1.".to_string())),
            prop::collection::vec(any::<u8>(), 1..6).prop_map(FieldValue::Bytes),
        ]
        .boxed(),
        "TCP:options-wscale" | "TCP:options-mss" => prop_oneof![
            Just(FieldValue::Empty),
            (1u64..1400).prop_map(FieldValue::Num),
        ]
        .boxed(),
        _ => (0u64..65536).prop_map(FieldValue::Num).boxed(),
    }
}

fn arb_tamper(next: BoxedStrategy<Action>) -> BoxedStrategy<Action> {
    prop::sample::select(FIELDS.to_vec())
        .prop_flat_map(move |field| {
            let next = next.clone();
            prop_oneof![
                Just(TamperMode::Corrupt),
                arb_value(field).prop_map(TamperMode::Replace),
            ]
            .prop_flat_map(move |mode| {
                let field = field;
                let mode = mode.clone();
                next.clone().prop_map(move |n| Action::Tamper {
                    field: FieldRef::parse(field).expect("valid"),
                    mode: mode.clone(),
                    next: Box::new(n),
                })
            })
        })
        .boxed()
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![4 => Just(Action::Send), 1 => Just(Action::Drop)].boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            arb_tamper(inner.clone()),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Action::Duplicate(Box::new(a), Box::new(b))),
            (1usize..20, any::<bool>(), inner.clone(), inner).prop_map(
                |(offset, in_order, a, b)| Action::Fragment {
                    proto: packet::Proto::Tcp,
                    offset,
                    in_order,
                    first: Box::new(a),
                    second: Box::new(b),
                }
            ),
        ]
        .boxed()
    })
}

/// Arbitrary triggers, including values that must compile to the
/// `Never` matcher (non-canonical flag spellings, zero-padded numbers)
/// and empty-value triggers on option fields.
fn arb_trigger() -> impl Strategy<Value = Trigger> {
    let field = prop::sample::select(vec![
        "TCP:flags",
        "TCP:window",
        "TCP:seq",
        "TCP:urgptr",
        "TCP:options-wscale",
        "IP:ttl",
    ]);
    let value = prop::sample::select(vec![
        "SA", "S", "PA", "A", "AS", "R", "9000", "080", "", "10", "64", "7",
    ]);
    (field, value).prop_map(|(f, v)| Trigger {
        field: FieldRef::parse(f).expect("valid"),
        value: v.to_string(),
    })
}

fn arb_strategy() -> impl Strategy<Value = GenevaStrategy> {
    // 1–2 outbound parts and 0–1 inbound parts: exercises first-match-
    // wins ordering and the inbound program.
    (
        prop::collection::vec((arb_trigger(), arb_action()), 1..3),
        prop::collection::vec((arb_trigger(), arb_action()), 0..2),
    )
        .prop_map(|(out, inb)| GenevaStrategy {
            outbound: out
                .into_iter()
                .map(|(trigger, action)| StrategyPart { trigger, action })
                .collect(),
            inbound: inb
                .into_iter()
                .map(|(trigger, action)| StrategyPart { trigger, action })
                .collect(),
        })
}

proptest! {
    // The issue's floor is 256 generated strategies; run a few more.
    #![proptest_config(ProptestConfig::with_cases(320))]

    #[test]
    fn generated_strategies_are_equivalent(strategy in arb_strategy(), seed in any::<u64>()) {
        let mut engine = Engine::new(strategy.clone(), seed);
        // Checked compile doubles as a soundness property: programs the
        // compiler builds always discharge their own proof obligations.
        let program = Program::compile(&strategy).expect("compiled programs verify");
        for pkt in shapes() {
            prop_assert_eq!(engine.apply_outbound(&pkt), program.run_outbound(&pkt, seed));
            prop_assert_eq!(engine.apply_inbound(&pkt), program.run_inbound(&pkt, seed));
        }
    }
}
