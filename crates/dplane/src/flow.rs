//! The sharded flow table: per-flow strategy state keyed by 4-tuple.
//!
//! ## The shard contract
//!
//! Sharding here mirrors the `harness::pool` contract: parallel
//! *structure* must never change *results*. Concretely, for a fixed
//! packet sequence the set of flows created, the set and order of
//! evictions, every flow's (program, seed) state, and therefore the
//! aggregate metrics are bit-identical for **any** shard count —
//! proptested in `tests/flow_props.rs`. Three mechanisms make it hold:
//!
//! * **Deterministic placement** — a flow's shard is an FNV-1a hash of
//!   its canonical [`FlowKey`] modulo the shard count, not an insertion
//!   order or a runtime-salted hash.
//! * **Global LRU clock, per-shard index** — every touch stamps the
//!   entry with a monotonic tick from a table-wide counter. Capacity
//!   eviction removes the globally least-recent entry (ticks are
//!   unique, so the victim is unambiguous) wherever it lives, rather
//!   than the least-recent entry of the incoming packet's shard. The
//!   victim is found in O(shards): each shard keeps a lazy tick-ordered
//!   journal of its touches whose front (after skipping stale entries)
//!   is that shard's least-recent live flow, and the global victim is
//!   the minimum over shard fronts — no scan of the flow maps, and the
//!   eviction is attributed to the shard that owns the victim.
//! * **Pure re-classification** — a flow's state is a pure function of
//!   its key (the classifier consults a static geo table; the seed is
//!   derived from the key), so an evicted flow that returns rebuilds
//!   the exact state it lost.
//!
//! Idle expiry is exact per flow: a packet arriving after the timeout
//! finds its stale entry expired and re-classifies, regardless of when
//! the periodic sweep last ran. The sweep only reclaims memory for
//! flows that never return.

use crate::metrics::ShardMetrics;
use crate::program::Program;
use packet::FlowKey;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// FNV-1a for the per-shard flow maps. The default SipHash costs more
/// than the rest of the steady-state lookup combined, and its
/// DoS-resistant random keying is exactly what the shard contract must
/// avoid (plus iteration order is never observable here: eviction picks
/// victims by tick, not by map order).
#[derive(Clone)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> FnvHasher {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

type FnvBuild = BuildHasherDefault<FnvHasher>;

/// Sizing and expiry knobs for a [`FlowTable`].
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Number of shards (clamped to ≥ 1).
    pub shards: usize,
    /// Maximum live flows across all shards (clamped to ≥ 1).
    pub capacity: usize,
    /// Idle expiry in simulated microseconds: a flow unseen for longer
    /// than this re-classifies on return.
    pub idle_timeout: u64,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            shards: 1,
            capacity: 65_536,
            idle_timeout: 120_000_000, // 120 s
        }
    }
}

/// Per-flow state: the compiled program (or `None` = pass-through) and
/// the corrupt seed, plus bookkeeping for LRU and idle expiry.
#[derive(Debug, Clone)]
struct FlowEntry {
    program: Option<Arc<Program>>,
    seed: u64,
    last_seen: u64,
    last_tick: u64,
    packets: u64,
}

struct Shard {
    flows: HashMap<FlowKey, FlowEntry, FnvBuild>,
    metrics: ShardMetrics,
    /// Lazy LRU journal: one `(tick, key)` record per touch, in tick
    /// order. A record is *current* iff the flow is live and its
    /// `last_tick` still equals the recorded tick; anything else is a
    /// stale leftover from an earlier touch, skipped (and discarded)
    /// when the front is consulted. The front current record is this
    /// shard's least-recently-used live flow — which makes global LRU
    /// eviction a min over shard fronts instead of a scan over every
    /// flow in the table.
    lru_log: VecDeque<(u64, FlowKey)>,
}

impl Shard {
    /// Record a touch in the journal, compacting stale records once
    /// the journal outgrows the live-flow count by 2× (amortized O(1)
    /// per touch, zero steady-state allocation).
    fn log_touch(&mut self, tick: u64, key: FlowKey) {
        self.lru_log.push_back((tick, key));
        if self.lru_log.len() > self.flows.len() * 2 + 8 {
            let flows = &self.flows;
            self.lru_log
                .retain(|&(t, k)| flows.get(&k).is_some_and(|e| e.last_tick == t));
        }
    }

    /// Drop stale records until the front is current (or the journal
    /// is empty), then return the front: `(tick, key)` of this shard's
    /// least-recently-used live flow.
    fn lru_front(&mut self) -> Option<(u64, FlowKey)> {
        while let Some(&(tick, key)) = self.lru_log.front() {
            if self.flows.get(&key).is_some_and(|e| e.last_tick == tick) {
                return Some((tick, key));
            }
            self.lru_log.pop_front();
        }
        None
    }
}

/// What a lookup returned: the flow's strategy state plus where it
/// lives (for metric attribution).
#[derive(Debug, Clone)]
pub struct Touch {
    /// The flow's compiled program, if any.
    pub program: Option<Arc<Program>>,
    /// The flow's corrupt seed.
    pub seed: u64,
    /// The shard the flow lives on.
    pub shard: usize,
    /// True when this packet created (or re-created) the flow.
    pub created: bool,
}

/// The sharded flow table. See the module docs for the determinism
/// contract.
pub struct FlowTable {
    shards: Vec<Shard>,
    cfg: FlowConfig,
    tick: u64,
    len: usize,
    next_sweep: u64,
}

impl FlowTable {
    /// Build an empty table. Shard count and capacity are clamped to
    /// at least 1.
    pub fn new(cfg: FlowConfig) -> FlowTable {
        let cfg = FlowConfig {
            shards: cfg.shards.max(1),
            capacity: cfg.capacity.max(1),
            idle_timeout: cfg.idle_timeout,
        };
        FlowTable {
            shards: (0..cfg.shards)
                .map(|_| Shard {
                    flows: HashMap::default(),
                    metrics: ShardMetrics::default(),
                    lru_log: VecDeque::new(),
                })
                .collect(),
            cfg,
            tick: 0,
            len: 0,
            next_sweep: 0,
        }
    }

    /// Live flow count across all shards.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flows are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Deterministic shard placement: FNV-1a of the canonical key.
    pub fn shard_of(&self, key: &FlowKey) -> usize {
        shard_index(key, self.shards.len())
    }

    /// Look up (creating if needed) the flow for `key` at time `now`.
    /// `classify` runs only on creation and returns the flow's
    /// (program, seed) — it must be a pure function of the key for the
    /// shard contract to hold.
    pub fn touch<F>(&mut self, key: FlowKey, now: u64, classify: F) -> Touch
    where
        F: FnOnce() -> (Option<Arc<Program>>, u64),
    {
        self.maybe_sweep(now);
        let shard = self.shard_of(&key);
        self.tick += 1;
        let tick = self.tick;

        // Steady-state fast path: a live, fresh entry costs exactly one
        // map lookup. A stale entry expires here (exact idle expiry for
        // this key, independent of sweep timing) and falls through to
        // the creation path.
        let timeout = self.cfg.idle_timeout;
        let s = &mut self.shards[shard];
        match s.flows.get_mut(&key) {
            Some(entry) if now.saturating_sub(entry.last_seen) <= timeout => {
                entry.last_seen = now;
                entry.last_tick = tick;
                entry.packets += 1;
                let touch = Touch {
                    program: entry.program.clone(),
                    seed: entry.seed,
                    shard,
                    created: false,
                };
                s.metrics.packets += 1;
                s.log_touch(tick, key);
                return touch;
            }
            Some(_) => {
                s.flows.remove(&key);
                s.metrics.evicted_idle += 1;
                self.len -= 1;
            }
            None => {}
        }

        if self.len >= self.cfg.capacity {
            self.evict_lru();
        }
        let (program, seed) = classify();
        let touch = Touch {
            program: program.clone(),
            seed,
            shard,
            created: true,
        };
        let s = &mut self.shards[shard];
        s.flows.insert(
            key,
            FlowEntry {
                program,
                seed,
                last_seen: now,
                last_tick: tick,
                packets: 1,
            },
        );
        s.metrics.flows_created += 1;
        s.metrics.packets += 1;
        s.log_touch(tick, key);
        self.len += 1;
        touch
    }

    /// Count one strategy application against `shard`.
    pub fn note_apply(&mut self, shard: usize, key: strata::CanonKey) {
        if let Some(s) = self.shards.get_mut(shard) {
            *s.metrics.applies.entry(key).or_insert(0) += 1;
        }
    }

    /// Count one pass-through packet against `shard`.
    pub fn note_pass(&mut self, shard: usize) {
        if let Some(s) = self.shards.get_mut(shard) {
            s.metrics.pass_through += 1;
        }
    }

    /// Per-shard metrics, in shard order.
    pub fn metrics(&self) -> Vec<ShardMetrics> {
        self.shards.iter().map(|s| s.metrics.clone()).collect()
    }

    /// Evict the globally least-recently-used flow. Ticks are unique,
    /// so the victim — and thus the whole eviction sequence — does not
    /// depend on shard count or hash-map iteration order.
    ///
    /// Cost is O(shards · amortized O(1)), not a scan of every flow:
    /// each shard's LRU journal front is its per-shard minimum, the
    /// global victim is the minimum over those fronts, and the eviction
    /// is charged to the shard the victim actually lives on.
    fn evict_lru(&mut self) {
        let mut victim: Option<(usize, u64)> = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some((tick, _)) = shard.lru_front() {
                if victim.is_none_or(|(_, t)| tick < t) {
                    victim = Some((i, tick));
                }
            }
        }
        if let Some((i, _)) = victim {
            let shard = &mut self.shards[i];
            let (_, key) = shard
                .lru_log
                .pop_front()
                .expect("lru_front found a victim here");
            shard.flows.remove(&key);
            shard.metrics.evicted_lru += 1;
            self.len -= 1;
        }
    }

    /// Periodic reclaim of flows that went idle and never returned.
    /// Runs at most every `idle_timeout / 2` of simulated time; the set
    /// of removed flows is a pure function of packet timestamps.
    fn maybe_sweep(&mut self, now: u64) {
        if now < self.next_sweep {
            return;
        }
        let interval = (self.cfg.idle_timeout / 2).max(1);
        self.next_sweep = now.saturating_add(interval);
        let timeout = self.cfg.idle_timeout;
        for shard in &mut self.shards {
            let before = shard.flows.len();
            shard
                .flows
                .retain(|_, e| now.saturating_sub(e.last_seen) <= timeout);
            let removed = before - shard.flows.len();
            shard.metrics.evicted_idle += removed as u64;
            self.len -= removed;
        }
    }
}

/// Deterministic shard placement for `key` among `shards` shards:
/// FNV-1a of the canonical flow key, modulo the shard count. (With one
/// shard there is nothing to place — skip the hash.)
///
/// A free function so the threaded data plane's dispatcher can route
/// packets to per-worker single-shard tables with exactly the placement
/// a single `FlowTable` with that many shards would use — the property
/// the threaded-vs-single-thread metrics equivalence tests rely on.
pub fn shard_index(key: &FlowKey, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&key.a.0);
    eat(&key.a.1.to_be_bytes());
    eat(&key.b.0);
    eat(&key.b.1.to_be_bytes());
    usize::try_from(hash % shards as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    fn key(n: u8) -> FlowKey {
        FlowKey {
            a: ([10, 0, 0, n], 1000),
            b: ([93, 184, 216, 34], 80),
        }
    }

    fn table(shards: usize, capacity: usize, idle: u64) -> FlowTable {
        FlowTable::new(FlowConfig {
            shards,
            capacity,
            idle_timeout: idle,
        })
    }

    #[test]
    fn capacity_evicts_least_recent_globally() {
        let mut t = table(4, 2, u64::MAX);
        t.touch(key(1), 0, || (None, 1));
        t.touch(key(2), 1, || (None, 2));
        t.touch(key(1), 2, || (None, 1)); // refresh 1: victim is now 2
        t.touch(key(3), 3, || (None, 3));
        assert_eq!(t.len(), 2);
        let evicted: u64 = t.metrics().iter().map(|m| m.evicted_lru).sum();
        assert_eq!(evicted, 1);
        // Flow 2 was the victim: touching it again re-creates it.
        let touch = t.touch(key(2), 4, || (None, 2));
        assert!(touch.created);
    }

    #[test]
    fn idle_flows_expire_exactly() {
        let mut t = table(2, 16, 100);
        t.touch(key(1), 0, || (None, 1));
        // 100 µs later: exactly at the timeout, still alive.
        assert!(!t.touch(key(1), 100, || (None, 1)).created);
        // 101 µs of silence: expired, re-created.
        let touch = t.touch(key(1), 201, || (None, 9));
        assert!(touch.created);
        assert_eq!(touch.seed, 9, "re-classified state");
        let idle: u64 = t.metrics().iter().map(|m| m.evicted_idle).sum();
        assert_eq!(idle, 1);
    }

    #[test]
    fn sweep_reclaims_flows_that_never_return() {
        let mut t = table(2, 16, 100);
        t.touch(key(1), 0, || (None, 1));
        t.touch(key(2), 0, || (None, 2));
        // Much later, a third flow's packet triggers the sweep.
        t.touch(key(3), 10_000, || (None, 3));
        assert_eq!(t.len(), 1, "idle flows reclaimed");
    }

    #[test]
    fn churn_pins_per_shard_eviction_counts_across_shard_counts() {
        // A churn workload (more distinct flows than capacity, with
        // refreshes so victims aren't simply FIFO) replayed at several
        // shard counts. Two properties pin the eviction semantics:
        //
        // * the *total* evicted_lru is shard-count-invariant (victim =
        //   globally least-recent flow, wherever it lives);
        // * each shard's evicted_lru equals the number of victims that
        //   *live* on it per an independent global-LRU reference model
        //   — i.e. evictions are attributed to the owning shard, not
        //   whichever loop index found the victim.
        const CAPACITY: usize = 8;
        let workload: Vec<(u8, u64)> = (0..300u64)
            .map(|step| ((step * 7 % 41) as u8, step))
            .collect();

        let mut totals = Vec::new();
        for shards in [1usize, 2, 3, 8] {
            let mut t = table(shards, CAPACITY, u64::MAX);

            // Reference: a flat global LRU over (key, tick), with each
            // eviction charged to shard_of(victim) for this topology.
            let mut live: Vec<(FlowKey, u64)> = Vec::new();
            let mut expect_evicted = vec![0u64; shards];
            let mut tick = 0u64;

            for &(n, now) in &workload {
                let k = key(n);
                tick += 1;
                if let Some(slot) = live.iter_mut().find(|(lk, _)| *lk == k) {
                    slot.1 = tick;
                } else {
                    if live.len() >= CAPACITY {
                        let oldest = live
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, lt))| *lt)
                            .map(|(i, _)| i)
                            .unwrap();
                        let (victim, _) = live.swap_remove(oldest);
                        expect_evicted[t.shard_of(&victim)] += 1;
                    }
                    live.push((k, tick));
                }
                t.touch(k, now, || (None, u64::from(n)));
            }

            let got: Vec<u64> = t.metrics().iter().map(|m| m.evicted_lru).collect();
            assert_eq!(got, expect_evicted, "shards={shards}");
            totals.push(got.iter().sum::<u64>());
        }
        assert!(totals[0] > 0, "churn workload must actually evict");
        assert!(
            totals.iter().all(|&n| n == totals[0]),
            "total evictions vary with shard count: {totals:?}"
        );
    }

    #[test]
    fn classify_runs_once_per_flow() {
        let mut t = table(1, 16, u64::MAX);
        let mut calls = 0;
        for now in 0..5 {
            t.touch(key(1), now, || {
                calls += 1;
                (None, 0)
            });
        }
        assert_eq!(calls, 1);
    }
}
