//! `dplane` — a compiled, sharded server-side evasion data plane.
//!
//! The paper's deployment story (§8) is an ESNI-style provider applying
//! evasion strategies *server-side* for millions of unmodified clients,
//! choosing a strategy per client from the SYN alone. The per-trial
//! interpreter (`geneva::Engine`) is the semantics; this crate is the
//! production-shaped path:
//!
//! * [`Program`] — strategies canonicalized through `strata` and
//!   lowered to flat, allocation-free instruction programs
//!   ([`program`]).
//! * [`FlowTable`] — a sharded, 4-tuple-keyed flow table with idle
//!   timeout and capacity LRU, deterministic under any shard count
//!   ([`flow`]).
//! * [`PacketIo`] — the packet boundary, with in-sim
//!   ([`sim::DplaneEndpoint`]) and pcap-replay ([`io::PcapReplay`])
//!   backends.
//! * [`MetricsReport`] — per-shard counters exported as JSON
//!   (`cay dplane`).
//!
//! [`Dplane`] ties them together: classify a new flow's client (via any
//! [`Classifier`], e.g. `harness::deploy::pick_for_client` behind a
//! closure), compile-or-reuse its strategy, and rewrite its packets.
//! Everything is deterministic: same packets in, same packets and same
//! aggregate metrics out, for any shard count — byte-identical to the
//! interpreter.

pub mod flow;
pub mod io;
pub mod metrics;
pub mod program;
pub mod ring;
pub mod sim;
pub(crate) mod sync_shim;
pub mod threaded;

pub use flow::{shard_index, FlowConfig, FlowTable, Touch};
pub use io::{PacketIo, PcapReplay, VecIo};
pub use metrics::{MetricsReport, ShardMetrics};
pub use program::{
    lower_ops, CompiledPart, Matcher, Op, Program, ProgramCache, ProgramProof, VerifyError,
};
pub use sim::DplaneEndpoint;
pub use threaded::{pump_threaded, ThreadedConfig};

use geneva::Strategy;
use packet::{FlowKey, Packet};
use std::sync::Arc;

/// Decides the strategy for a newly seen flow. Runs once per flow
/// (on the first packet — the client's SYN in every experiment); must
/// be a pure function of the packet's flow identity so that evicted
/// flows re-classify identically on return.
pub trait Classifier: Send {
    /// The strategy for the flow `first_pkt` opened, or `None` for
    /// pass-through.
    fn classify(&mut self, first_pkt: &Packet) -> Option<Arc<Strategy>>;
}

impl<F> Classifier for F
where
    F: FnMut(&Packet) -> Option<Arc<Strategy>> + Send,
{
    fn classify(&mut self, first_pkt: &Packet) -> Option<Arc<Strategy>> {
        self(first_pkt)
    }
}

/// The trivial classifier: every flow gets the same strategy (or
/// none). This is how a single-strategy trial routes through the data
/// plane.
pub struct FixedClassifier(pub Option<Arc<Strategy>>);

impl Classifier for FixedClassifier {
    fn classify(&mut self, _first_pkt: &Packet) -> Option<Arc<Strategy>> {
        self.0.clone()
    }
}

/// How per-flow corrupt seeds are derived.
#[derive(Debug, Clone, Copy)]
pub enum SeedMode {
    /// Every flow uses this exact seed — the interpreter-equivalence
    /// mode (a trial's engine has one seed).
    Fixed(u64),
    /// Each flow's seed is a splitmix64 mix of this base with the flow
    /// key, so corruption differs across clients but is reproducible
    /// per flow (and identical after eviction + return).
    PerFlow(u64),
}

/// Data-plane configuration.
#[derive(Debug, Clone, Copy)]
pub struct DplaneConfig {
    /// Flow-table sizing and expiry.
    pub flow: FlowConfig,
    /// Corrupt-seed derivation.
    pub seed: SeedMode,
    /// Skip the compile-time proof gate. Checked mode (the default)
    /// refuses to install a program that fails
    /// `strata::absint::verify_ops` — the flow passes through
    /// unmodified and `verify_rejects` counts it. Unchecked mode
    /// installs it anyway (the `--unchecked` escape hatch).
    pub unchecked: bool,
}

impl Default for DplaneConfig {
    fn default() -> DplaneConfig {
        DplaneConfig {
            flow: FlowConfig::default(),
            seed: SeedMode::PerFlow(0),
            unchecked: false,
        }
    }
}

/// The assembled data plane: classifier → program cache → flow table →
/// compiled execution, with per-shard metrics.
///
/// The program cache is shared by reference and internally
/// synchronized (see [`ProgramCache`]): a single-threaded plane owns
/// its cache alone, while [`threaded::pump_threaded`] hands one cache
/// to every shard worker so each canonical strategy compiles exactly
/// once no matter which worker sees it first — keeping `cache_hits`/
/// `cache_misses` identical to the single-threaded plane. Flow
/// creation takes only the cache's read lock once a strategy is
/// compiled, so workers racing to create flows never serialize.
pub struct Dplane<C: Classifier> {
    classifier: C,
    programs: Arc<ProgramCache>,
    flows: FlowTable,
    scratch: Vec<Packet>,
    seed_mode: SeedMode,
    unchecked: bool,
}

impl<C: Classifier> Dplane<C> {
    /// Build a data plane with its own program cache.
    pub fn new(cfg: DplaneConfig, classifier: C) -> Dplane<C> {
        Dplane::with_cache(cfg, classifier, Arc::new(ProgramCache::new()))
    }

    /// Build a data plane over a shared program cache (the threaded
    /// plane's workers all compile into one cache).
    pub fn with_cache(cfg: DplaneConfig, classifier: C, cache: Arc<ProgramCache>) -> Dplane<C> {
        Dplane {
            classifier,
            programs: cache,
            flows: FlowTable::new(cfg.flow),
            scratch: Vec::new(),
            seed_mode: cfg.seed,
            unchecked: cfg.unchecked,
        }
    }

    /// Rewrite one packet the server is sending; emissions append to
    /// `out`.
    pub fn process_outbound(&mut self, pkt: &Packet, now: u64, out: &mut Vec<Packet>) {
        self.process(pkt, now, out, true);
    }

    /// Rewrite one packet arriving at the server; emissions append to
    /// `out`.
    pub fn process_inbound(&mut self, pkt: &Packet, now: u64, out: &mut Vec<Packet>) {
        self.process(pkt, now, out, false);
    }

    fn process(&mut self, pkt: &Packet, now: u64, out: &mut Vec<Packet>, outbound: bool) {
        let key = pkt.flow_key();
        let seed_mode = self.seed_mode;
        let unchecked = self.unchecked;
        let Dplane {
            classifier,
            programs,
            flows,
            scratch,
            ..
        } = self;
        // Seed derivation happens inside the creation closure: it is a
        // pure function of the key, and the steady-state path (flow
        // already live) never needs it.
        let touch = flows.touch(key, now, || {
            let seed = match seed_mode {
                SeedMode::Fixed(seed) => seed,
                SeedMode::PerFlow(base) => flow_seed(base, &key),
            };
            // Checked mode refuses unverifiable programs: the flow
            // passes through unmodified (fail-safe — clients keep
            // working, they just get no evasion) and the reject is
            // counted in metrics.
            let program = classifier.classify(pkt).and_then(|s| {
                if unchecked {
                    Some(programs.get_or_compile(&s))
                } else {
                    programs.get_or_verify(&s).ok()
                }
            });
            (program, seed)
        });
        match touch.program {
            Some(program) => {
                flows.note_apply(touch.shard, program.key);
                if outbound {
                    program.apply_outbound(pkt, touch.seed, out, scratch);
                } else {
                    program.apply_inbound(pkt, touch.seed, out, scratch);
                }
            }
            None => {
                flows.note_pass(touch.shard);
                out.push(pkt.clone());
            }
        }
    }

    /// Drain a [`PacketIo`] source through the data plane. Packets
    /// whose IPv4 source is `server_addr` take the outbound ruleset;
    /// everything else is inbound. Returns the number of packets
    /// processed.
    pub fn pump<I: PacketIo>(&mut self, io: &mut I, server_addr: [u8; 4]) -> u64 {
        let mut out = Vec::new();
        let mut processed = 0;
        while let Some((now, pkt)) = io.recv() {
            out.clear();
            if pkt.ip.src == server_addr {
                self.process_outbound(&pkt, now, &mut out);
            } else {
                self.process_inbound(&pkt, now, &mut out);
            }
            for emitted in out.drain(..) {
                io.emit(now, emitted);
            }
            processed += 1;
        }
        io.flush();
        processed
    }

    /// Live flow count.
    pub fn flows_live(&self) -> usize {
        self.flows.len()
    }

    /// This plane's flow-table counters, in shard order (no
    /// program-cache fields — the threaded plane assembles a combined
    /// report from many workers sharing one cache).
    pub fn flow_metrics(&self) -> Vec<ShardMetrics> {
        self.flows.metrics()
    }

    /// Export all counters.
    pub fn metrics(&self) -> MetricsReport {
        MetricsReport {
            shards: self.flows.metrics(),
            flows_live: self.flows.len(),
            cache_hits: self.programs.hits(),
            cache_misses: self.programs.misses(),
            verify_rejects: self.programs.verify_rejects(),
            strategies: self.programs.strategies(),
            ..MetricsReport::default()
        }
    }
}

/// Per-flow seed: splitmix64 over the base XOR an FNV-1a hash of the
/// canonical flow key. Pure in (base, key), so eviction and return
/// rebuild the same seed.
fn flow_seed(base: u64, key: &FlowKey) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&key.a.0);
    eat(&key.a.1.to_be_bytes());
    eat(&key.b.0);
    eat(&key.b.1.to_be_bytes());
    let mut z = (base ^ hash).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use packet::TcpFlags;

    fn syn(client: [u8; 4]) -> Packet {
        let mut p = Packet::tcp(
            client,
            40000,
            [93, 184, 216, 34],
            80,
            TcpFlags::SYN,
            1,
            0,
            vec![],
        );
        p.finalize();
        p
    }

    fn syn_ack(client: [u8; 4]) -> Packet {
        let mut p = Packet::tcp(
            [93, 184, 216, 34],
            80,
            client,
            40000,
            TcpFlags::SYN_ACK,
            100,
            2,
            vec![],
        );
        p.finalize();
        p
    }

    #[test]
    fn classifies_once_and_rewrites_outbound() {
        let strategy = Arc::new(geneva::library::STRATEGY_1.strategy());
        let mut dp = Dplane::new(DplaneConfig::default(), FixedClassifier(Some(strategy)));
        let client = [10, 7, 0, 2];
        let mut out = Vec::new();
        dp.process_inbound(&syn(client), 0, &mut out);
        assert_eq!(out.len(), 1, "no inbound rules: SYN passes");
        out.clear();
        dp.process_outbound(&syn_ack(client), 10, &mut out);
        assert_eq!(out.len(), 2, "strategy 1 emits RST then SYN");
        assert_eq!(out[0].flags(), TcpFlags::RST);
        let m = dp.metrics();
        assert_eq!(m.totals().flows_created, 1, "one flow, both directions");
        assert_eq!((m.cache_hits, m.cache_misses), (0, 1));
    }

    #[test]
    fn per_flow_seeds_are_stable_across_eviction() {
        let key = syn([10, 7, 0, 2]).flow_key();
        assert_eq!(flow_seed(42, &key), flow_seed(42, &key));
        assert_ne!(flow_seed(42, &key), flow_seed(43, &key));
        // Both directions share the canonical key, hence the seed.
        assert_eq!(
            syn([10, 7, 0, 2]).flow_key(),
            syn_ack([10, 7, 0, 2]).flow_key()
        );
    }

    #[test]
    fn pump_splits_directions_by_server_addr() {
        let strategy = Arc::new(geneva::library::STRATEGY_1.strategy());
        let mut dp = Dplane::new(DplaneConfig::default(), FixedClassifier(Some(strategy)));
        let client = [10, 7, 0, 2];
        let mut io = VecIo::new([(0, syn(client)), (10, syn_ack(client))]);
        let processed = dp.pump(&mut io, [93, 184, 216, 34]);
        assert_eq!(processed, 2);
        // SYN passed through + RST & SYN from the rewritten SYN+ACK.
        assert_eq!(io.output.len(), 3);
    }
}
