//! The `PacketIo` boundary: where the data plane meets packets.
//!
//! Two backends ship with the crate:
//!
//! * **In-sim** — [`crate::sim::DplaneEndpoint`] adapts a [`crate::Dplane`]
//!   onto `netsim`'s `Endpoint` trait, so any paper experiment can route
//!   the server's traffic through the compiled data plane (asserted
//!   bit-identical to the interpreter path by `harness` tests).
//! * **Pcap replay** — [`PcapReplay`] feeds a `netsim::pcap` capture
//!   through [`PacketIo`] for offline throughput benchmarking
//!   (`cay bench` → `BENCH_dplane.json`, `cay dplane <file.pcap>`).
//!
//! [`VecIo`] is the trivial in-memory backend for tests and synthetic
//! benchmarks.

use packet::Packet;
use std::collections::VecDeque;

/// A source/sink of timestamped packets. `recv` pulls the next packet
/// to process (time in simulated/captured microseconds); `emit` takes
/// every packet the data plane produced for it.
pub trait PacketIo {
    /// Next packet to process, or `None` when drained.
    fn recv(&mut self) -> Option<(u64, Packet)>;
    /// Accept one packet the data plane emitted at time `now`.
    fn emit(&mut self, now: u64, pkt: Packet);
    /// End-of-pump hook: a batching backend (the live socket bridge)
    /// pushes its queued emissions to the kernel here, in one
    /// `sendmmsg` where it can. In-memory backends need nothing — the
    /// default is a no-op, so emission ordering and bytes are
    /// unchanged for every existing `PacketIo`.
    fn flush(&mut self) {}
}

/// In-memory backend: feed a queue, collect the output.
#[derive(Default)]
pub struct VecIo {
    /// Packets waiting to be processed.
    pub input: VecDeque<(u64, Packet)>,
    /// Packets the data plane emitted.
    pub output: Vec<(u64, Packet)>,
}

impl VecIo {
    /// Build from any (time, packet) sequence.
    pub fn new(packets: impl IntoIterator<Item = (u64, Packet)>) -> VecIo {
        VecIo {
            input: packets.into_iter().collect(),
            output: Vec::new(),
        }
    }
}

impl PacketIo for VecIo {
    fn recv(&mut self) -> Option<(u64, Packet)> {
        self.input.pop_front()
    }

    fn emit(&mut self, now: u64, pkt: Packet) {
        self.output.push((now, pkt));
    }
}

/// Offline replay of a libpcap capture (as written by
/// `netsim::pcap::to_pcap`). Unparseable records are skipped and
/// counted; emissions are counted and discarded — throughput
/// benchmarks measure the data plane, not a sink.
pub struct PcapReplay {
    records: std::vec::IntoIter<(u64, Packet)>,
    /// Packets the data plane emitted during the replay.
    pub emitted: u64,
    /// Capture records that did not parse as IPv4 packets.
    pub skipped: usize,
}

impl PcapReplay {
    /// Parse a pcap byte stream. Returns `None` when the header is not
    /// a little-endian microsecond pcap.
    pub fn from_bytes(data: &[u8]) -> Option<PcapReplay> {
        let (_linktype, raw) = netsim::pcap::parse_pcap(data)?;
        let mut records = Vec::with_capacity(raw.len());
        let mut skipped = 0;
        for (t, bytes) in raw {
            match Packet::parse(&bytes) {
                Ok(pkt) => records.push((t, pkt)),
                Err(_) => skipped += 1,
            }
        }
        Some(PcapReplay {
            records: records.into_iter(),
            emitted: 0,
            skipped,
        })
    }

    /// Replay the same parsed packets again (fresh iterator, counters
    /// reset) — benchmarks loop over one parse.
    pub fn from_packets(packets: Vec<(u64, Packet)>) -> PcapReplay {
        PcapReplay {
            records: packets.into_iter(),
            emitted: 0,
            skipped: 0,
        }
    }
}

impl PacketIo for PcapReplay {
    fn recv(&mut self) -> Option<(u64, Packet)> {
        self.records.next()
    }

    fn emit(&mut self, _now: u64, _pkt: Packet) {
        self.emitted += 1;
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use packet::TcpFlags;

    #[test]
    fn pcap_replay_round_trips_a_capture() {
        let mut trace = netsim::Trace::default();
        let mut syn = Packet::tcp(
            [10, 0, 0, 1],
            1,
            [2, 2, 2, 2],
            80,
            TcpFlags::SYN,
            5,
            0,
            vec![],
        );
        syn.finalize();
        trace.push(netsim::TraceEvent::Sent {
            t: 1_000,
            side: netsim::Side::Client,
            pkt: syn.clone(),
        });
        let bytes = netsim::pcap::to_pcap(&trace, netsim::pcap::CaptureAt::Client);
        let mut replay = PcapReplay::from_bytes(&bytes).unwrap();
        let (t, pkt) = replay.recv().unwrap();
        assert_eq!(t, 1_000);
        assert_eq!(pkt.flags(), TcpFlags::SYN);
        assert!(replay.recv().is_none());
        assert_eq!(replay.skipped, 0);
    }
}
