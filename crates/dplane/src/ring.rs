//! Bounded SPSC rings: the packet handoff between the threaded data
//! plane's dispatcher and its run-to-completion shard workers.
//!
//! Two layers:
//!
//! * [`RingBuf`] — the storage: a fixed-capacity circular buffer over
//!   `Vec<Option<T>>` with explicit head/len wraparound. Safe code
//!   only (no `UnsafeCell` slots), so the thread sanitizer and miri
//!   have nothing to object to; the single-producer/single-consumer
//!   discipline is enforced by the channel layer, not by `unsafe`.
//! * [`channel`] — a blocking bounded channel around one `RingBuf`:
//!   the producer blocks when the ring is full (backpressure instead
//!   of unbounded queuing), the consumer blocks when it is empty, and
//!   dropping the [`Sender`] closes the ring so consumers drain what
//!   remains and then see `None`.
//!
//! Throughput comes from *batching*, not from lock-free slots: the
//! threaded data plane moves `Vec`-batches of ~64 packets per ring
//! slot, so the mutex/condvar cost is amortized across a whole batch
//! (two orders of magnitude below per-packet handoff) and recycled
//! batch buffers keep the steady state allocation-free.

use std::sync::{Arc, PoisonError};

use crate::sync_shim::{lock_unpoisoned, Condvar, Mutex};

/// Runtime-toggleable seeded bugs for weave's bug-injection
/// self-test (`--features weave,mutants`). Toggles default to off so
/// the correct paths stay in force; each mutant test runs in its own
/// test binary so the process-global toggles cannot bleed across
/// tests.
#[cfg(feature = "mutants")]
pub mod mutants {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// BUG(seeded): `Sender::send` forgets `items.notify_one()` after
    /// a successful push — the classic lost wakeup. A consumer that
    /// went to sleep on an empty ring never learns the item arrived.
    pub static RING_DROP_NOTIFY: AtomicBool = AtomicBool::new(false);

    /// BUG(seeded): `RingBuf::push` computes the tail slot one past
    /// the correct wraparound position, clobbering or colliding with
    /// a queued item once the ring wraps.
    pub static RING_WRAP_OFF_BY_ONE: AtomicBool = AtomicBool::new(false);

    pub(crate) fn drop_notify() -> bool {
        RING_DROP_NOTIFY.load(Ordering::Relaxed)
    }

    pub(crate) fn wrap_off_by_one() -> bool {
        RING_WRAP_OFF_BY_ONE.load(Ordering::Relaxed)
    }
}

/// A fixed-capacity single-threaded circular buffer. Push fails (and
/// returns the item) when full; pop returns `None` when empty.
#[derive(Debug)]
pub struct RingBuf<T> {
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> RingBuf<T> {
    /// A ring holding up to `capacity` items (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> RingBuf<T> {
        let capacity = capacity.max(1);
        RingBuf {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when a push would fail.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Append `item` at the tail, or hand it back when full.
    // The tail-slot assert below is an internal-corruption tripwire
    // (and the wraparound mutant's detection point in the weave
    // self-test), not a recoverable condition the Err arm could carry.
    #[allow(clippy::panic_in_result_fn)]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        #[allow(unused_mut)]
        let mut tail = (self.head + self.len) % self.capacity();
        #[cfg(feature = "mutants")]
        if mutants::wrap_off_by_one() {
            tail = (self.head + self.len + 1) % self.capacity();
        }
        assert!(self.slots[tail].is_none(), "tail slot occupied");
        self.slots[tail] = Some(item);
        self.len += 1;
        Ok(())
    }

    /// Remove and return the head item (FIFO).
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.slots[self.head].take();
        debug_assert!(item.is_some(), "head slot empty");
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        item
    }
}

struct Shared<T> {
    ring: Mutex<State<T>>,
    /// Signaled when space frees up (producer waits here).
    space: Condvar,
    /// Signaled when an item arrives or the ring closes (consumer
    /// waits here).
    items: Condvar,
}

struct State<T> {
    buf: RingBuf<T>,
    closed: bool,
}

/// The producing half of a bounded SPSC ring. Dropping it closes the
/// ring.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded SPSC ring.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Build a bounded SPSC ring of `capacity` slots.
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        ring: Mutex::new(State {
            buf: RingBuf::with_capacity(capacity),
            closed: false,
        }),
        space: Condvar::new(),
        items: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue `item`, blocking while the ring is full (backpressure).
    /// Returns the item back if the receiver is gone.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut item = item;
        let mut state = lock_unpoisoned(&self.shared.ring);
        loop {
            // Receiver dropped: nothing will ever drain the ring. The
            // periodic timeout below exists purely to re-run this
            // check — a receiver that dies mid-backpressure never
            // signals `space`.
            if Arc::strong_count(&self.shared) == 1 {
                return Err(item);
            }
            match state.buf.push(item) {
                Ok(()) => {
                    drop(state);
                    #[cfg(feature = "mutants")]
                    if mutants::drop_notify() {
                        return Ok(());
                    }
                    self.shared.items.notify_one();
                    return Ok(());
                }
                Err(back) => {
                    item = back;
                    state = self
                        .shared
                        .space
                        .wait_timeout(state, std::time::Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Recover from poison so a panicking producer still closes the
        // ring — otherwise the consumer blocks forever on a channel
        // that can never fill.
        lock_unpoisoned(&self.shared.ring).closed = true;
        self.shared.items.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next item, blocking while the ring is empty.
    /// Returns `None` once the ring is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        let mut state = lock_unpoisoned(&self.shared.ring);
        loop {
            if let Some(item) = state.buf.pop() {
                drop(state);
                self.shared.space.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .shared
                .items
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    #[test]
    fn ring_fifo_with_wraparound() {
        let mut r = RingBuf::with_capacity(3);
        // Fill, half-drain, refill — head wraps past the end.
        assert!(r.push(1).is_ok());
        assert!(r.push(2).is_ok());
        assert_eq!(r.pop(), Some(1));
        assert!(r.push(3).is_ok());
        assert!(r.push(4).is_ok());
        assert!(r.is_full());
        assert_eq!(r.push(5), Err(5));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(4));
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuf::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        assert!(r.push(9).is_ok());
        assert_eq!(r.push(10), Err(10));
        assert_eq!(r.pop(), Some(9));
    }

    /// Producer/consumer across threads: every item arrives exactly
    /// once, in order, through a ring far smaller than the stream —
    /// the concurrent test the TSan CI job runs.
    #[test]
    fn channel_round_trips_in_order_under_backpressure() {
        // Miri interprets every instruction: keep the contract, shrink
        // the stream.
        #[cfg(miri)]
        const N: u32 = 64;
        #[cfg(not(miri))]
        const N: u32 = 10_000;
        let (tx, rx) = channel::<u32>(4);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).collect();
            assert_eq!(got, (0..N).collect::<Vec<_>>());
        });
    }

    #[test]
    fn close_drains_remaining_items() {
        let (tx, rx) = channel::<u32>(8);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed stays closed");
    }
}
