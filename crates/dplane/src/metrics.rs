//! Per-shard counters and their JSON export.
//!
//! Shard counters are plain integers bumped on the packet path — no
//! atomics, because a [`crate::FlowTable`] is driven from one thread
//! and determinism is the contract. The *aggregate* over all shards is
//! bit-identical for any shard count (asserted by proptest and by
//! `cay bench`); the per-shard split is what changes.

use std::collections::BTreeMap;
use strata::CanonKey;

/// Counters for one shard of the flow table.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Packets routed through flows on this shard (both directions).
    pub packets: u64,
    /// Flow entries created.
    pub flows_created: u64,
    /// Flow entries evicted by the capacity LRU.
    pub evicted_lru: u64,
    /// Flow entries evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Packets that passed through untouched (flow has no strategy).
    pub pass_through: u64,
    /// Strategy applications, keyed by compiled-program identity.
    pub applies: BTreeMap<CanonKey, u64>,
}

impl ShardMetrics {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.packets += other.packets;
        self.flows_created += other.flows_created;
        self.evicted_lru += other.evicted_lru;
        self.evicted_idle += other.evicted_idle;
        self.pass_through += other.pass_through;
        for (key, n) in &other.applies {
            *self.applies.entry(*key).or_insert(0) += n;
        }
    }
}

/// A point-in-time export of a data plane's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Live flow count at export time.
    pub flows_live: usize,
    /// Program-cache hits (a new flow reused a compiled program).
    pub cache_hits: u64,
    /// Program-cache misses (a new flow compiled a program).
    pub cache_misses: u64,
    /// Strategies refused by the compile-time proof gate (the flow
    /// passed through unmodified).
    pub verify_rejects: u64,
    /// Canonical DSL text per program key — labels for `applies`.
    pub strategies: BTreeMap<CanonKey, String>,
}

impl MetricsReport {
    /// Fold all shards into one totals row.
    pub fn totals(&self) -> ShardMetrics {
        let mut total = ShardMetrics::default();
        for shard in &self.shards {
            total.merge(shard);
        }
        total
    }

    /// Hand-rolled JSON (the workspace has no serde); keys are stable
    /// and maps are ordered, so equal reports render equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"shards\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            shard_json(&mut out, i, shard);
        }
        out.push_str("],\"totals\":");
        shard_json(&mut out, usize::MAX, &self.totals());
        out.push_str(&format!(
            ",\"flows_live\":{},\"program_cache\":{{\"hits\":{},\"misses\":{},\"verify_rejects\":{}}}",
            self.flows_live, self.cache_hits, self.cache_misses, self.verify_rejects
        ));
        out.push_str(",\"strategies\":{");
        for (i, (key, text)) in self.strategies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":\"{}\"", escape_json(text)));
        }
        out.push_str("}}");
        out
    }
}

fn shard_json(out: &mut String, index: usize, m: &ShardMetrics) {
    out.push('{');
    if index != usize::MAX {
        out.push_str(&format!("\"shard\":{index},"));
    }
    out.push_str(&format!(
        "\"packets\":{},\"flows_created\":{},\"evicted_lru\":{},\"evicted_idle\":{},\"pass_through\":{},\"applies\":{{",
        m.packets, m.flows_created, m.evicted_lru, m.evicted_idle, m.pass_through
    ));
    for (i, (key, n)) in m.applies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{n}"));
    }
    out.push_str("}}");
}

/// Minimal JSON string escaping — strategy DSL text contains `\` and
/// could contain `"` via replace values.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_fold_all_shards() {
        let mut a = ShardMetrics {
            packets: 3,
            ..ShardMetrics::default()
        };
        a.applies.insert(CanonKey(1), 2);
        let mut b = ShardMetrics {
            packets: 4,
            ..ShardMetrics::default()
        };
        b.applies.insert(CanonKey(1), 1);
        b.applies.insert(CanonKey(2), 5);
        let report = MetricsReport {
            shards: vec![a, b],
            flows_live: 0,
            cache_hits: 0,
            cache_misses: 0,
            verify_rejects: 0,
            strategies: BTreeMap::new(),
        };
        let totals = report.totals();
        assert_eq!(totals.packets, 7);
        assert_eq!(totals.applies[&CanonKey(1)], 3);
        assert_eq!(totals.applies[&CanonKey(2)], 5);
    }

    #[test]
    fn json_escapes_dsl_backslashes() {
        assert_eq!(escape_json("a\\/b \"q\""), "a\\\\/b \\\"q\\\"");
        let report = MetricsReport {
            shards: vec![ShardMetrics::default()],
            flows_live: 1,
            cache_hits: 2,
            cache_misses: 3,
            verify_rejects: 1,
            strategies: [(CanonKey(0xAB), "x \\/ y".to_string())].into(),
        };
        let json = report.to_json();
        assert!(json.contains("\"00000000000000ab\":\"x \\\\/ y\""));
        assert!(json.contains("\"program_cache\":{\"hits\":2,\"misses\":3,\"verify_rejects\":1}"));
    }
}
