//! Per-shard counters and their JSON export.
//!
//! Shard counters are plain integers bumped on the packet path — no
//! atomics, because a [`crate::FlowTable`] is driven from one thread
//! and determinism is the contract. The *aggregate* over all shards is
//! bit-identical for any shard count (asserted by proptest and by
//! `cay bench`); the per-shard split is what changes.

use std::collections::BTreeMap;
use strata::CanonKey;

/// Counters for one shard of the flow table.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Packets routed through flows on this shard (both directions).
    pub packets: u64,
    /// Flow entries created.
    pub flows_created: u64,
    /// Flow entries evicted by the capacity LRU.
    pub evicted_lru: u64,
    /// Flow entries evicted by the idle timeout.
    pub evicted_idle: u64,
    /// Packets that passed through untouched (flow has no strategy).
    pub pass_through: u64,
    /// Strategy applications, keyed by compiled-program identity.
    pub applies: BTreeMap<CanonKey, u64>,
}

impl ShardMetrics {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.packets += other.packets;
        self.flows_created += other.flows_created;
        self.evicted_lru += other.evicted_lru;
        self.evicted_idle += other.evicted_idle;
        self.pass_through += other.pass_through;
        for (key, n) in &other.applies {
            *self.applies.entry(*key).or_insert(0) += n;
        }
    }
}

/// A point-in-time export of a data plane's counters.
///
/// ## JSON compatibility rule (additive, presence-based)
///
/// [`MetricsReport::to_json`] is a public interface consumed by
/// monitoring (`cay dplane`, `cay serve`, the `/metrics` endpoint).
/// Fields are **never renamed or removed**; new facts are added as new
/// keys, and facts that do not apply to a run are **omitted**, not
/// rendered as `null`/`0` — consumers test key presence, not value
/// sentinels. `uptime_ms`/`ingest_pps` exist only on the service path
/// (a live process has a monotonic clock; an offline replay does not),
/// so offline reports render without them and stay byte-comparable
/// across versions. The stable field set is pinned by
/// `json_field_set_is_stable` below.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Live flow count at export time.
    pub flows_live: usize,
    /// Program-cache hits (a new flow reused a compiled program).
    pub cache_hits: u64,
    /// Program-cache misses (a new flow compiled a program).
    pub cache_misses: u64,
    /// Strategies refused by the compile-time proof gate (the flow
    /// passed through unmodified).
    pub verify_rejects: u64,
    /// Canonical DSL text per program key — labels for `applies`.
    pub strategies: BTreeMap<CanonKey, String>,
    /// Milliseconds since the serving process started, derived from a
    /// monotonic clock. `Some` only on the service path (`cay serve`);
    /// offline runs have no uptime and omit the JSON key.
    pub uptime_ms: Option<u64>,
    /// Ingest rate in milli-packets-per-second (integer so the report
    /// stays `Eq`; rendered as a decimal `ingest_pps`). `Some` only on
    /// the service path, like [`MetricsReport::uptime_ms`].
    pub ingest_pps_milli: Option<u64>,
}

impl MetricsReport {
    /// Fold all shards into one totals row.
    pub fn totals(&self) -> ShardMetrics {
        let mut total = ShardMetrics::default();
        for shard in &self.shards {
            total.merge(shard);
        }
        total
    }

    /// Hand-rolled JSON (the workspace has no serde); keys are stable
    /// and maps are ordered, so equal reports render equal bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"shards\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            shard_json(&mut out, i, shard);
        }
        out.push_str("],\"totals\":");
        shard_json(&mut out, usize::MAX, &self.totals());
        out.push_str(&format!(
            ",\"flows_live\":{},\"program_cache\":{{\"hits\":{},\"misses\":{},\"verify_rejects\":{}}}",
            self.flows_live, self.cache_hits, self.cache_misses, self.verify_rejects
        ));
        out.push_str(",\"strategies\":{");
        for (i, (key, text)) in self.strategies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":\"{}\"", escape_json(text)));
        }
        out.push('}');
        // Service-path facts are presence-based: omitted entirely when
        // absent (see the compatibility rule on the type).
        if let Some(uptime) = self.uptime_ms {
            out.push_str(&format!(",\"uptime_ms\":{uptime}"));
        }
        if let Some(milli) = self.ingest_pps_milli {
            out.push_str(&format!(
                ",\"ingest_pps\":{}.{:03}",
                milli / 1000,
                milli % 1000
            ));
        }
        out.push('}');
        out
    }
}

fn shard_json(out: &mut String, index: usize, m: &ShardMetrics) {
    out.push('{');
    if index != usize::MAX {
        out.push_str(&format!("\"shard\":{index},"));
    }
    out.push_str(&format!(
        "\"packets\":{},\"flows_created\":{},\"evicted_lru\":{},\"evicted_idle\":{},\"pass_through\":{},\"applies\":{{",
        m.packets, m.flows_created, m.evicted_lru, m.evicted_idle, m.pass_through
    ));
    for (i, (key, n)) in m.applies.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{key}\":{n}"));
    }
    out.push_str("}}");
}

/// Minimal JSON string escaping — strategy DSL text contains `\` and
/// could contain `"` via replace values.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_fold_all_shards() {
        let mut a = ShardMetrics {
            packets: 3,
            ..ShardMetrics::default()
        };
        a.applies.insert(CanonKey(1), 2);
        let mut b = ShardMetrics {
            packets: 4,
            ..ShardMetrics::default()
        };
        b.applies.insert(CanonKey(1), 1);
        b.applies.insert(CanonKey(2), 5);
        let report = MetricsReport {
            shards: vec![a, b],
            ..MetricsReport::default()
        };
        let totals = report.totals();
        assert_eq!(totals.packets, 7);
        assert_eq!(totals.applies[&CanonKey(1)], 3);
        assert_eq!(totals.applies[&CanonKey(2)], 5);
    }

    #[test]
    fn json_escapes_dsl_backslashes() {
        assert_eq!(escape_json("a\\/b \"q\""), "a\\\\/b \\\"q\\\"");
        let report = MetricsReport {
            shards: vec![ShardMetrics::default()],
            flows_live: 1,
            cache_hits: 2,
            cache_misses: 3,
            verify_rejects: 1,
            strategies: [(CanonKey(0xAB), "x \\/ y".to_string())].into(),
            ..MetricsReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"00000000000000ab\":\"x \\\\/ y\""));
        assert!(json.contains("\"program_cache\":{\"hits\":2,\"misses\":3,\"verify_rejects\":1}"));
    }

    /// Extract the top-level keys of a flat-ish JSON object the way a
    /// presence-testing consumer would (depth-1 keys only).
    fn top_level_keys(json: &str) -> Vec<String> {
        let mut keys = Vec::new();
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        let mut current = String::new();
        let mut collecting = false;
        let mut expect_key = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                    if collecting {
                        keys.push(current.clone());
                        collecting = false;
                    }
                } else if collecting {
                    current.push(c);
                }
                continue;
            }
            match c {
                '{' | '[' => {
                    depth += 1;
                    expect_key = depth == 1 && c == '{';
                }
                '}' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 1 => expect_key = true,
                '"' => {
                    in_str = true;
                    if depth == 1 && expect_key {
                        current.clear();
                        collecting = true;
                        expect_key = false;
                    }
                }
                _ => {}
            }
        }
        keys
    }

    /// The additive-JSON compatibility contract: offline reports render
    /// exactly the historical field set; the service-path fields appear
    /// only when populated, and nothing is ever renamed or removed.
    #[test]
    fn json_field_set_is_stable() {
        let offline = MetricsReport {
            shards: vec![ShardMetrics::default()],
            ..MetricsReport::default()
        };
        assert_eq!(
            top_level_keys(&offline.to_json()),
            [
                "shards",
                "totals",
                "flows_live",
                "program_cache",
                "strategies"
            ],
            "offline field set must never change"
        );
        let service = MetricsReport {
            shards: vec![ShardMetrics::default()],
            uptime_ms: Some(1234),
            ingest_pps_milli: Some(2500),
            ..MetricsReport::default()
        };
        assert_eq!(
            top_level_keys(&service.to_json()),
            [
                "shards",
                "totals",
                "flows_live",
                "program_cache",
                "strategies",
                "uptime_ms",
                "ingest_pps"
            ],
            "service fields are additive and presence-based"
        );
        assert!(service.to_json().contains("\"ingest_pps\":2.500"));
        assert!(!offline.to_json().contains("uptime_ms"));
        assert!(!offline.to_json().contains("ingest_pps"));
    }
}
