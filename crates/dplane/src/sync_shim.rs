//! Cfg-gated sync facade: `std::sync` in production, `weave::sync`
//! under the `weave` feature so model tests can explore every
//! interleaving of the ring channels and the program cache.
//!
//! Production builds never see weave — the aliases below *are*
//! `std::sync` types (zero cost, identical codegen). With
//! `--features weave` the same source compiles against the
//! model-checker shims, which fall through to std outside a
//! `weave::explore` run.
//!
//! The `*_unpoisoned` helpers replace `.expect("ring poisoned")` /
//! `.expect("program cache poisoned")` cascades: a panicking shard
//! worker used to take every peer down with secondary `PoisonError`
//! panics, burying the original backtrace. Recovering the guard is
//! sound for these structures — every critical section leaves the
//! ring/cache structurally valid (no partial states are published
//! across an unwind), so peers can keep draining and the real panic
//! surfaces alone.

#[cfg(feature = "weave")]
pub(crate) use weave::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(feature = "weave")]
pub(crate) use weave::sync::atomic;

#[cfg(not(feature = "weave"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "weave"))]
pub(crate) use std::sync::atomic;

use std::sync::PoisonError;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Take a read lock, recovering from poison.
pub(crate) fn read_unpoisoned<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Take the write lock, recovering from poison.
pub(crate) fn write_unpoisoned<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}
