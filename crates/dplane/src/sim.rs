//! The in-sim `PacketIo` backend: a data plane bolted onto a
//! `netsim::Endpoint`.
//!
//! [`DplaneEndpoint`] plays the same role as
//! `geneva::StrategicEndpoint`, but routes the wrapped host's traffic
//! through a [`Dplane`] — flow table, compiled programs, metrics and
//! all — instead of a per-trial interpreter. With a
//! [`FixedClassifier`] carrying the trial's strategy and a fixed seed
//! equal to the trial's engine seed, the emitted packet sequence is
//! bit-identical to the interpreter path; `harness` asserts this for
//! the full Table 2 experiment.

use crate::{Classifier, Dplane};
use netsim::{Endpoint, Io};
use packet::Packet;

/// An endpoint whose wire interface is a [`Dplane`].
pub struct DplaneEndpoint<E, C: Classifier> {
    /// The unmodified inner host.
    pub inner: E,
    /// The data plane in front of it.
    pub dplane: Dplane<C>,
    /// Rewritten-inbound scratch (reused across packets).
    rewritten: Vec<Packet>,
    /// Outbound-emission scratch: the host's packets are swapped in
    /// here while the data plane writes the transformed stream back
    /// into `io.out`, so steady-state forwarding reuses both buffers.
    emitted: Vec<Packet>,
}

impl<E: Endpoint, C: Classifier> DplaneEndpoint<E, C> {
    /// Put `dplane` in front of `inner`.
    pub fn new(inner: E, dplane: Dplane<C>) -> Self {
        DplaneEndpoint {
            inner,
            dplane,
            rewritten: Vec::new(),
            emitted: Vec::new(),
        }
    }

    fn transform_out(&mut self, now: u64, io: &mut Io) {
        std::mem::swap(&mut io.out, &mut self.emitted);
        io.out.clear();
        for pkt in self.emitted.drain(..) {
            self.dplane.process_outbound(&pkt, now, &mut io.out);
        }
    }
}

impl<E: Endpoint, C: Classifier> Endpoint for DplaneEndpoint<E, C> {
    fn on_start(&mut self, now: u64, io: &mut Io) {
        self.inner.on_start(now, io);
        self.transform_out(now, io);
    }

    fn on_packet(&mut self, pkt: Packet, now: u64, io: &mut Io) {
        self.rewritten.clear();
        let mut rewritten = std::mem::take(&mut self.rewritten);
        self.dplane.process_inbound(&pkt, now, &mut rewritten);
        for p in rewritten.drain(..) {
            self.inner.on_packet(p, now, io);
        }
        self.rewritten = rewritten;
        self.transform_out(now, io);
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        self.inner.on_wake(now, io);
        self.transform_out(now, io);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use crate::{DplaneConfig, FixedClassifier, SeedMode};
    use packet::TcpFlags;
    use std::sync::Arc;

    /// An endpoint that replies to any packet with a SYN+ACK.
    struct SynAcker;

    impl Endpoint for SynAcker {
        fn on_start(&mut self, _now: u64, _io: &mut Io) {}
        fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
            let mut sa = Packet::tcp(
                pkt.ip.dst,
                pkt.dst_port(),
                pkt.ip.src,
                pkt.src_port(),
                TcpFlags::SYN_ACK,
                100,
                pkt.tcp_header().map(|t| t.seq + 1).unwrap_or(0),
                vec![],
            );
            sa.finalize();
            io.send(sa);
        }
        fn on_wake(&mut self, _now: u64, _io: &mut Io) {}
    }

    #[test]
    fn matches_strategic_endpoint_byte_for_byte() {
        let strategy = geneva::library::STRATEGY_1.strategy();
        let seed = 7;

        let mut interpreted =
            geneva::StrategicEndpoint::new(SynAcker, geneva::Engine::new(strategy.clone(), seed));
        let mut compiled = DplaneEndpoint::new(
            SynAcker,
            Dplane::new(
                DplaneConfig {
                    seed: SeedMode::Fixed(seed),
                    ..DplaneConfig::default()
                },
                FixedClassifier(Some(Arc::new(strategy))),
            ),
        );

        let mut syn = Packet::tcp(
            [10, 7, 0, 2],
            1111,
            [2; 4],
            80,
            TcpFlags::SYN,
            50,
            0,
            vec![],
        );
        syn.finalize();
        let (mut io_a, mut io_b) = (Io::default(), Io::default());
        interpreted.on_packet(syn.clone(), 0, &mut io_a);
        compiled.on_packet(syn, 0, &mut io_b);
        assert_eq!(io_a.out, io_b.out);
        assert_eq!(io_b.out.len(), 2, "strategy 1 emits RST then SYN");
    }

    #[test]
    fn inbound_rules_shield_the_inner_host() {
        let strategy = geneva::parse_strategy(" \\/ [TCP:flags:R]-drop-|").unwrap();
        let mut wrapped = DplaneEndpoint::new(
            SynAcker,
            Dplane::new(
                DplaneConfig::default(),
                FixedClassifier(Some(Arc::new(strategy))),
            ),
        );
        let mut rst = Packet::tcp([1; 4], 1, [2; 4], 2, TcpFlags::RST, 0, 0, vec![]);
        rst.finalize();
        let mut io = Io::default();
        wrapped.on_packet(rst, 0, &mut io);
        assert!(io.out.is_empty(), "inner never saw the RST");
    }
}
