//! Run-to-completion threaded data plane: per-shard worker threads fed
//! by batched packet handoff over bounded SPSC rings.
//!
//! ## Topology
//!
//! ```text
//!            ┌────────────── worker 0: Dplane(1 shard) ──┐
//! dispatcher ┼─ ring ──────► worker 1: Dplane(1 shard)   ├─► ordered merge
//!            └────────────── worker k: Dplane(1 shard) ──┘
//! ```
//!
//! The dispatcher (the calling thread) pulls packets from the
//! [`PacketIo`] source, routes each by [`shard_index`]`(flow_key,
//! workers)`, and hands them to workers in `Vec`-batches over bounded
//! SPSC rings ([`crate::ring`]). Each worker owns a complete
//! single-shard [`Dplane`] — flow table, scratch buffers, classifier —
//! and runs every packet **to completion** (classify → compile-or-hit
//! → rewrite → stage emissions) with no further cross-thread handoff;
//! flow state is partitioned, never shared, so the packet path takes
//! no locks. The only shared state is the [`ProgramCache`] (read-
//! mostly: flow creation takes a read lock, and the write lock is held
//! only while compiling a strategy the cache has never seen, so each
//! canonical strategy compiles exactly once process-wide) and the
//! batch-buffer free list (locked once per ~`batch` packets).
//!
//! ## Determinism contract
//!
//! Emitted packets are **bit-identical to the single-threaded
//! [`Dplane::pump`]** in content *and order*: every input carries its
//! global input index, a flow's packets all land on one worker (which
//! processes them in input order), and the final merge stably sorts
//! staged emissions by input index — so the interleaving of worker
//! execution is unobservable. Per-flow corrupt seeds and
//! classification are pure functions of the flow key, so *where* a
//! flow runs never changes *what* it computes.
//!
//! Aggregate metrics match the single-threaded plane whenever the
//! capacity LRU does not fire (each worker's table holds
//! `capacity/workers` flows, so eviction *timing* can differ near
//! capacity even though packet outputs stay identical thanks to pure
//! re-classification). Routing equals single-threaded shard placement,
//! so worker `w`'s metrics equal shard `w`'s metrics of a
//! `shards = workers` single-threaded table — asserted by the threaded
//! equivalence tests.

use crate::flow::shard_index;
use crate::ring::{channel, Sender};
use crate::{
    Classifier, Dplane, DplaneConfig, FlowConfig, MetricsReport, PacketIo, ProgramCache,
    ShardMetrics,
};
use packet::Packet;
use std::sync::{Arc, Mutex};

/// One staged input packet: (global input index, receive time, packet).
type Staged = (u64, u64, Packet);
/// A batch of staged packets — the unit of ring handoff.
type Batch = Vec<Staged>;

/// Threaded-plane knobs.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedConfig {
    /// Worker (shard) threads (clamped to ≥ 1).
    pub workers: usize,
    /// Packets per handoff batch: amortizes the ring's mutex/condvar
    /// cost across a whole batch.
    pub batch: usize,
    /// Ring capacity in *batches* per worker: bounds in-flight memory
    /// and applies backpressure to the dispatcher.
    pub ring_slots: usize,
}

impl Default for ThreadedConfig {
    fn default() -> ThreadedConfig {
        ThreadedConfig {
            workers: 8,
            batch: 64,
            ring_slots: 16,
        }
    }
}

/// Drain a [`PacketIo`] source through `workers` run-to-completion
/// shard threads. Packets whose IPv4 source is `server_addr` take the
/// outbound ruleset; everything else is inbound — the same split as
/// [`Dplane::pump`], with bit-identical output (see module docs).
///
/// `make_classifier` builds one classifier per worker (workers own
/// their classifier; classification must be a pure function of the
/// first packet's flow identity, same contract as [`Classifier`]).
/// Returns the processed-packet count and the combined metrics report
/// (one shard entry per worker, program-cache totals from the shared
/// cache).
pub fn pump_threaded<I, C, F>(
    io: &mut I,
    server_addr: [u8; 4],
    cfg: DplaneConfig,
    tcfg: ThreadedConfig,
    mut make_classifier: F,
) -> (u64, MetricsReport)
where
    I: PacketIo,
    C: Classifier,
    F: FnMut(usize) -> C,
{
    let workers = tcfg.workers.max(1);
    let batch_size = tcfg.batch.max(1);
    let cache = Arc::new(ProgramCache::new());

    // Each worker's table is single-shard with its slice of the global
    // capacity: run-to-completion sharding — the worker *is* the shard.
    let worker_cfg = DplaneConfig {
        flow: FlowConfig {
            shards: 1,
            capacity: cfg.flow.capacity.div_ceil(workers).max(1),
            idle_timeout: cfg.flow.idle_timeout,
        },
        ..cfg
    };
    let planes: Vec<Dplane<C>> = (0..workers)
        .map(|w| Dplane::with_cache(worker_cfg, make_classifier(w), Arc::clone(&cache)))
        .collect();

    // Recycled batch buffers: workers return drained Vecs here, the
    // dispatcher reuses them — steady state allocates nothing per
    // batch, let alone per packet.
    let free: Mutex<Vec<Batch>> = Mutex::new(Vec::new());

    let mut processed = 0u64;
    let mut worker_out: Vec<(Vec<Staged>, Vec<ShardMetrics>, usize)> = Vec::with_capacity(workers);

    std::thread::scope(|scope| {
        let mut senders: Vec<Sender<Batch>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for mut dp in planes {
            let (tx, rx) = channel::<Batch>(tcfg.ring_slots);
            senders.push(tx);
            let free = &free;
            handles.push(scope.spawn(move || {
                let mut staged: Vec<Staged> = Vec::new();
                let mut out: Vec<Packet> = Vec::new();
                while let Some(mut batch) = rx.recv() {
                    for (idx, now, pkt) in batch.drain(..) {
                        out.clear();
                        if pkt.ip.src == server_addr {
                            dp.process_outbound(&pkt, now, &mut out);
                        } else {
                            dp.process_inbound(&pkt, now, &mut out);
                        }
                        for emitted in out.drain(..) {
                            staged.push((idx, now, emitted));
                        }
                    }
                    free.lock().expect("free list poisoned").push(batch);
                }
                (staged, dp.flow_metrics(), dp.flows_live())
            }));
        }

        // Dispatch: route by the same FNV placement a single-threaded
        // `shards = workers` table would use, batching per worker.
        let take_buf = || {
            free.lock()
                .expect("free list poisoned")
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(batch_size))
        };
        let mut building: Vec<Batch> = (0..workers).map(|_| take_buf()).collect();
        let mut idx = 0u64;
        'dispatch: while let Some((now, pkt)) = io.recv() {
            let w = shard_index(&pkt.flow_key(), workers);
            building[w].push((idx, now, pkt));
            idx += 1;
            processed += 1;
            if building[w].len() >= batch_size {
                let full = std::mem::replace(&mut building[w], take_buf());
                if senders[w].send(full).is_err() {
                    break 'dispatch; // worker died; join() will re-panic
                }
            }
        }
        for (w, partial) in building.into_iter().enumerate() {
            if !partial.is_empty() {
                let _ = senders[w].send(partial);
            }
        }
        drop(senders); // close every ring: workers drain and exit

        for handle in handles {
            worker_out.push(handle.join().expect("dplane worker panicked"));
        }
    });

    // Index-ordered merge: concatenate per-worker emissions and stably
    // sort by input index. Each input's emissions live on exactly one
    // worker, already in emission order, so the merged stream is the
    // single-threaded emission order exactly.
    let mut shards = Vec::with_capacity(workers);
    let mut flows_live = 0;
    let mut merged: Vec<Staged> = Vec::new();
    for (staged, metrics, live) in worker_out {
        merged.extend(staged);
        shards.extend(metrics);
        flows_live += live;
    }
    merged.sort_by_key(|&(idx, _, _)| idx);
    for (_, now, pkt) in merged {
        io.emit(now, pkt);
    }
    io.flush();

    let report = MetricsReport {
        shards,
        flows_live,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        verify_rejects: cache.verify_rejects(),
        strategies: cache.strategies(),
        ..MetricsReport::default()
    };
    (processed, report)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use crate::{FixedClassifier, VecIo};
    use packet::TcpFlags;
    use std::sync::Arc as StdArc;

    const SERVER: [u8; 4] = [93, 184, 216, 34];

    fn workload(flows: u8, rounds: u16) -> Vec<(u64, Packet)> {
        let mut packets = Vec::new();
        let mut t = 0u64;
        for round in 0..rounds {
            for client in 1..=flows {
                let addr = [10, 7, u8::from(round % 2 == 1), client];
                let mut syn_ack = Packet::tcp(
                    SERVER,
                    80,
                    addr,
                    40000,
                    TcpFlags::SYN_ACK,
                    9000 + u32::from(round),
                    1001,
                    vec![],
                );
                syn_ack.finalize();
                packets.push((t, syn_ack));
                t += 100;
                let mut data = Packet::tcp(
                    SERVER,
                    80,
                    addr,
                    40000,
                    TcpFlags::PSH_ACK,
                    9100 + u32::from(round),
                    1001,
                    b"HTTP/1.1 200 OK\r\n\r\nsecret".to_vec(),
                );
                data.finalize();
                packets.push((t, data));
                t += 100;
            }
        }
        packets
    }

    #[test]
    fn threaded_output_is_bit_identical_to_single_threaded() {
        let strategy = StdArc::new(geneva::library::STRATEGY_1.strategy());
        let packets = workload(24, 6);

        let mut single_io = VecIo::new(packets.clone());
        let mut dp = Dplane::new(
            DplaneConfig {
                flow: FlowConfig {
                    shards: 4,
                    ..FlowConfig::default()
                },
                ..DplaneConfig::default()
            },
            FixedClassifier(Some(StdArc::clone(&strategy))),
        );
        let single_n = dp.pump(&mut single_io, SERVER);

        for (workers, batch) in [(1usize, 64usize), (4, 7), (4, 1), (8, 64)] {
            let mut io = VecIo::new(packets.clone());
            let (n, _report) = pump_threaded(
                &mut io,
                SERVER,
                DplaneConfig::default(),
                ThreadedConfig {
                    workers,
                    batch,
                    ring_slots: 2,
                },
                |_| FixedClassifier(Some(StdArc::clone(&strategy))),
            );
            assert_eq!(n, single_n, "workers={workers}");
            assert_eq!(
                io.output.len(),
                single_io.output.len(),
                "workers={workers} batch={batch}"
            );
            for (i, ((tw, pw), (ts, ps))) in io.output.iter().zip(&single_io.output).enumerate() {
                assert_eq!(tw, ts, "workers={workers} emission {i}: time");
                assert_eq!(
                    pw.serialize_raw(),
                    ps.serialize_raw(),
                    "workers={workers} batch={batch} emission {i}: bytes"
                );
            }
        }
    }

    #[test]
    fn worker_metrics_match_single_threaded_shards() {
        let strategy = StdArc::new(geneva::library::STRATEGY_1.strategy());
        let packets = workload(16, 4);
        let workers = 4;

        let mut single_io = VecIo::new(packets.clone());
        let mut dp = Dplane::new(
            DplaneConfig {
                flow: FlowConfig {
                    shards: workers,
                    ..FlowConfig::default()
                },
                ..DplaneConfig::default()
            },
            FixedClassifier(Some(StdArc::clone(&strategy))),
        );
        dp.pump(&mut single_io, SERVER);
        let single = dp.metrics();

        let mut io = VecIo::new(packets);
        let (_, threaded) = pump_threaded(
            &mut io,
            SERVER,
            DplaneConfig::default(),
            ThreadedConfig {
                workers,
                batch: 16,
                ring_slots: 4,
            },
            |_| FixedClassifier(Some(StdArc::clone(&strategy))),
        );

        // Same placement → worker w's counters are shard w's counters,
        // and the cache compiled each strategy exactly once despite
        // four workers racing to create flows.
        assert_eq!(threaded.shards, single.shards);
        assert_eq!(threaded.flows_live, single.flows_live);
        assert_eq!(threaded.cache_misses, single.cache_misses);
        assert_eq!(threaded.cache_hits, single.cache_hits);
        assert_eq!(threaded.verify_rejects, single.verify_rejects);
        assert_eq!(threaded.totals(), single.totals());
        assert_eq!(threaded.to_json(), single.to_json());
    }
}
