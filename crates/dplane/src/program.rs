//! The strategy compiler: Geneva action trees lowered to flat programs.
//!
//! The interpreter (`geneva::Engine`) walks the strategy AST for every
//! packet: each trigger test renders the packet field *and* the trigger
//! value to fresh `String`s, every application allocates a fresh output
//! `Vec`, and the recursive tree walk touches cold `Box`ed nodes. At
//! data-plane rates that is the whole budget. A [`Program`] pays those
//! costs once, at compile time:
//!
//! * Triggers become [`Matcher`]s — the common cases (`TCP:flags:SA`,
//!   numeric equality) compile to branch-and-compare with **zero**
//!   allocation; impossible triggers (a non-canonical value spelling
//!   that the engine's string comparison can never produce) compile to
//!   [`Matcher::Never`] and cost one enum discriminant test.
//! * Action trees become a flat instruction vector for a small stack
//!   machine ([`Op`]). Each compiled subtree consumes exactly the
//!   top-of-stack packet; `fragment`'s runtime "nothing to split" case
//!   is a conditional jump to a duplicated copy of the `first` body.
//!
//! Compilation goes through `strata::canonicalize_strategy`, so the
//! program executes the *canonical* form and [`CanonKey`] is the cache
//! identity. Equivalence with the interpreter is structural, not
//! hopeful: the tamper/corrupt/split primitives are the exported
//! `geneva::engine` functions themselves, and the per-site corrupt PRNG
//! makes their output independent of execution order. A differential
//! proptest (`tests/differential.rs`) pins `compiled(pkt) ==
//! Engine::apply_*(pkt)` byte-for-byte across the strategy library and
//! generated strategies.

use geneva::ast::{Action, StrategyPart, TamperMode, Trigger};
use geneva::engine::TamperHint;
use geneva::Strategy;
use packet::field::{FieldKind, FieldRef, FieldValue};
use packet::{Packet, Proto, TcpFlags};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::sync_shim::atomic::{AtomicU64, Ordering};
use crate::sync_shim::{read_unpoisoned, write_unpoisoned, RwLock};
use strata::absint::{AbsOp, TamperKind};
use strata::censor_model::{check_all, CensorId, Verdict};
use strata::CanonKey;

/// One instruction of the packet stack machine.
///
/// The machine's invariant: the compiled body of an action consumes
/// exactly one stack packet (net) and appends its emissions to the
/// output vector. Jump targets are absolute indices into the program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Pop the top packet and append it to the output (`send`).
    Emit,
    /// Pop the top packet and discard it (`drop`).
    Pop,
    /// Push a copy of the top packet (`duplicate` — the copy is
    /// processed first, exactly like the engine's left branch).
    Dup,
    /// Rewrite one field of the top packet via
    /// `geneva::engine::tamper_hinted`.
    Tamper {
        /// The field to rewrite.
        field: FieldRef,
        /// Replace-with-value or corrupt-with-site-PRNG.
        mode: TamperMode,
        /// Static validity of the packet this op receives, proved by
        /// `strata::absint::verify_ops` during compilation.
        /// `TrustedValid` lets the tamper skip the runtime
        /// canonicality scans guarding the incremental-checksum patch.
        hint: TamperHint,
    },
    /// Try to split the top packet (`fragment`). On a successful split
    /// the two pieces replace it — execution-order piece on top — and
    /// control falls through. When the packet is too small to split it
    /// stays put and control jumps to `nosplit`, which addresses a
    /// duplicated compilation of the `first` subtree (the engine runs
    /// `first` on the unsplit packet).
    Split {
        /// Split layer (`TCP` segmentation or `IP` fragmentation).
        proto: Proto,
        /// Byte offset of the cut.
        offset: usize,
        /// Paper's `in_order` flag: `false` swaps emission order, i.e.
        /// the `second` piece is processed first.
        in_order: bool,
        /// Jump target for the nothing-to-split case.
        nosplit: usize,
    },
    /// Unconditional jump (skips the duplicated no-split tail).
    Jump(usize),
}

/// A compiled trigger. Variants are ordered hottest-first: the paper's
/// strategies trigger on `TCP:flags`, so the data plane's per-packet
/// cost is one `Option` test and a byte compare.
#[derive(Debug, Clone)]
pub enum Matcher {
    /// `TCP:flags` equality against a canonical flag set. Non-TCP
    /// packets read the field as `Empty` (renders `""`), so they match
    /// exactly when the expected set is empty.
    Flags(TcpFlags),
    /// Numeric field equality. Only canonical decimal spellings can
    /// ever match the engine's string compare, so the comparison is
    /// `u64 == u64` with no rendering.
    Num(FieldRef, u64),
    /// The empty value `""` on a numeric/option field: matches exactly
    /// when the field reads [`FieldValue::Empty`] (absent option, or a
    /// transport mismatch).
    Empty(FieldRef),
    /// Statically impossible: the trigger value is a spelling the
    /// field's renderer never produces (e.g. `TCP:seq:007`).
    Never,
    /// Fallback for cold field kinds (payload bytes, app-layer): the
    /// engine's own string comparison.
    Generic(Trigger),
}

impl Matcher {
    /// Compile one trigger. Equivalence contract: for every packet,
    /// `compile(t).matches(pkt) == t.matches(pkt)`.
    fn compile(trigger: &Trigger) -> Matcher {
        let value = trigger.value.as_str();
        match trigger.field.kind() {
            Ok(FieldKind::Flags) => match TcpFlags::from_geneva(value) {
                // The engine compares against `to_geneva` output, so a
                // non-canonical letter order (`AS`) can never match.
                Some(flags) if flags.to_geneva() == value => Matcher::Flags(flags),
                _ => Matcher::Never,
            },
            Ok(FieldKind::U8 | FieldKind::U16 | FieldKind::U32 | FieldKind::OptionNum) => {
                if value.is_empty() {
                    return Matcher::Empty(trigger.field.clone());
                }
                match value.parse::<u64>() {
                    Ok(n) if n.to_string() == value => Matcher::Num(trigger.field.clone(), n),
                    _ => Matcher::Never,
                }
            }
            _ => Matcher::Generic(trigger.clone()),
        }
    }

    /// Does the packet satisfy this trigger?
    pub fn matches(&self, pkt: &Packet) -> bool {
        match self {
            Matcher::Flags(expect) => match pkt.tcp_header() {
                Some(tcp) => tcp.flags == *expect,
                None => *expect == TcpFlags::NONE,
            },
            Matcher::Num(field, n) => {
                matches!(field.get(pkt), Ok(FieldValue::Num(m)) if m == *n)
            }
            Matcher::Empty(field) => matches!(field.get(pkt), Ok(FieldValue::Empty)),
            Matcher::Never => false,
            Matcher::Generic(trigger) => trigger.matches(pkt),
        }
    }
}

/// One compiled `trigger => ops` rule.
#[derive(Debug, Clone)]
pub struct CompiledPart {
    /// The compiled trigger.
    pub matcher: Matcher,
    /// The flat action body.
    pub ops: Vec<Op>,
}

/// A verification failure pinned to the part that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// `"outbound"` or `"inbound"`.
    pub direction: &'static str,
    /// Zero-based part index within that ruleset.
    pub part: usize,
    /// The abstract interpreter's complaint.
    pub error: strata::absint::VerifyError,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} part {}: {}", self.direction, self.part, self.error)
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The aggregated proof obligations of a verified program: every part
/// of both rulesets passed `strata::absint::verify_ops`, and these are
/// the worst bounds over all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramProof {
    /// Maximum packet-stack depth any part can reach.
    pub max_stack: usize,
    /// Worst-case packets emitted per trigger packet.
    pub max_emit: usize,
}

/// Mirror a compiled body into the neutral form `strata`'s abstract
/// interpreter consumes. Field facts collapse to [`TamperKind`]: what
/// the tamper does to checksum validity is the only per-op fact the
/// stack-domain verifier needs.
pub fn lower_ops(ops: &[Op]) -> Vec<AbsOp> {
    ops.iter()
        .map(|op| match op {
            Op::Emit => AbsOp::Emit,
            Op::Pop => AbsOp::Pop,
            Op::Dup => AbsOp::Dup,
            Op::Tamper { field, .. } => AbsOp::Tamper(if field.name == "chksum" {
                TamperKind::BreaksChecksum
            } else if field.is_derived() {
                TamperKind::OtherDerived
            } else {
                TamperKind::Refinalizing
            }),
            Op::Split { nosplit, .. } => AbsOp::Split { nosplit: *nosplit },
            Op::Jump(target) => AbsOp::Jump(*target),
        })
        .collect()
}

/// A whole strategy lowered to flat form: two rulesets plus the
/// canonical identity that names it in caches and metrics.
#[derive(Debug, Clone)]
pub struct Program {
    /// Compiled outbound ruleset (first match wins, no match = pass).
    pub outbound: Vec<CompiledPart>,
    /// Compiled inbound ruleset.
    pub inbound: Vec<CompiledPart>,
    /// Equivalence-class key of the canonical strategy.
    pub key: CanonKey,
    /// The canonical DSL text (metrics/debug labels).
    pub canonical_text: String,
    /// Discharged proof obligations. `Some` whenever every part
    /// verified — which includes everything this compiler emits itself
    /// (its jump targets are forward by construction). `None` only
    /// when [`Program::compile_unchecked`] swallowed a failure.
    pub proof: Option<ProgramProof>,
    /// Per-censor static verdicts from the product model checker,
    /// computed once at compile time. Programs are cached per
    /// [`CanonKey`], so the verdicts ride the cache: a genome that
    /// canonicalizes to a known class never re-runs the checker.
    pub verdicts: Vec<(CensorId, Verdict)>,
}

impl Program {
    /// Canonicalize, compile, and *verify* a strategy: every compiled
    /// body must discharge the stack-discipline, termination, and
    /// bounded-amplification obligations, or the program is refused.
    pub fn compile(strategy: &Strategy) -> Result<Program, VerifyError> {
        Program::build(strategy, true)
    }

    /// [`Program::compile`] without the proof gate: a body that fails
    /// verification is installed anyway (and `proof` is `None`). The
    /// `--unchecked` escape hatch; the compiler's own output always
    /// verifies, so this differs only for hand-fed op sequences or a
    /// future compiler bug.
    pub fn compile_unchecked(strategy: &Strategy) -> Program {
        match Program::build(strategy, false) {
            Ok(program) => program,
            Err(_) => unreachable!("build never fails when checked=false"),
        }
    }

    fn build(strategy: &Strategy, checked: bool) -> Result<Program, VerifyError> {
        let canonical = strata::canonicalize_strategy(strategy);
        let key = CanonKey::of(&canonical);
        let canonical_text = canonical.to_string();
        let verdicts = check_all(&strata::summarize(&canonical));
        let mut outbound: Vec<CompiledPart> = canonical.outbound.iter().map(compile_part).collect();
        let mut inbound: Vec<CompiledPart> = canonical.inbound.iter().map(compile_part).collect();
        let mut proof = Some(ProgramProof {
            max_stack: 0,
            max_emit: 0,
        });
        for (direction, parts) in [("outbound", &mut outbound), ("inbound", &mut inbound)] {
            for (index, part) in parts.iter_mut().enumerate() {
                match strata::verify_ops(&lower_ops(&part.ops)) {
                    Ok(part_proof) => {
                        // The per-pc Valid facts become TrustedValid
                        // hints on the tamper ops they license.
                        for (op, valid) in part.ops.iter_mut().zip(&part_proof.tamper_valid) {
                            if let (Op::Tamper { hint, .. }, true) = (op, *valid) {
                                *hint = TamperHint::TrustedValid;
                            }
                        }
                        if let Some(agg) = proof.as_mut() {
                            agg.max_stack = agg.max_stack.max(part_proof.max_stack);
                            agg.max_emit = agg.max_emit.max(part_proof.max_emit);
                        }
                    }
                    Err(error) => {
                        if checked {
                            return Err(VerifyError {
                                direction,
                                part: index,
                                error,
                            });
                        }
                        proof = None;
                    }
                }
            }
        }
        Ok(Program {
            outbound,
            inbound,
            key,
            canonical_text,
            proof,
            verdicts,
        })
    }

    /// Apply the outbound ruleset, appending emissions to `out`.
    /// `scratch` is the reusable stack (left empty on return).
    pub fn apply_outbound(
        &self,
        pkt: &Packet,
        seed: u64,
        out: &mut Vec<Packet>,
        scratch: &mut Vec<Packet>,
    ) {
        apply(&self.outbound, pkt, seed, out, scratch);
    }

    /// Apply the inbound ruleset, appending emissions to `out`.
    pub fn apply_inbound(
        &self,
        pkt: &Packet,
        seed: u64,
        out: &mut Vec<Packet>,
        scratch: &mut Vec<Packet>,
    ) {
        apply(&self.inbound, pkt, seed, out, scratch);
    }

    /// Convenience wrapper returning a fresh vector (tests, cold paths).
    pub fn run_outbound(&self, pkt: &Packet, seed: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.apply_outbound(pkt, seed, &mut out, &mut Vec::new());
        out
    }

    /// Convenience wrapper returning a fresh vector (tests, cold paths).
    pub fn run_inbound(&self, pkt: &Packet, seed: u64) -> Vec<Packet> {
        let mut out = Vec::new();
        self.apply_inbound(pkt, seed, &mut out, &mut Vec::new());
        out
    }
}

fn apply(
    parts: &[CompiledPart],
    pkt: &Packet,
    seed: u64,
    out: &mut Vec<Packet>,
    scratch: &mut Vec<Packet>,
) {
    for part in parts {
        if part.matcher.matches(pkt) {
            execute(&part.ops, pkt.clone(), seed, out, scratch);
            return;
        }
    }
    out.push(pkt.clone());
}

/// Run one compiled body on one packet.
fn execute(ops: &[Op], pkt: Packet, seed: u64, out: &mut Vec<Packet>, stack: &mut Vec<Packet>) {
    stack.clear();
    stack.push(pkt);
    let mut pc = 0;
    while let Some(op) = ops.get(pc) {
        pc += 1;
        match op {
            Op::Emit => {
                if let Some(top) = stack.pop() {
                    out.push(top);
                }
            }
            Op::Pop => {
                stack.pop();
            }
            Op::Dup => {
                if let Some(top) = stack.last().cloned() {
                    stack.push(top);
                }
            }
            Op::Tamper { field, mode, hint } => {
                if let Some(top) = stack.pop() {
                    stack.push(geneva::engine::tamper_hinted(top, field, mode, seed, *hint));
                }
            }
            Op::Split {
                proto,
                offset,
                in_order,
                nosplit,
            } => {
                let Some(top) = stack.pop() else { break };
                match geneva::engine::split(top, *proto, *offset) {
                    (a, Some(b)) => {
                        // Execution-order piece ends up on top.
                        if *in_order {
                            stack.push(b);
                            stack.push(a);
                        } else {
                            stack.push(a);
                            stack.push(b);
                        }
                    }
                    (a, None) => {
                        stack.push(a);
                        pc = *nosplit;
                    }
                }
            }
            Op::Jump(target) => pc = *target,
        }
    }
}

fn compile_part(part: &StrategyPart) -> CompiledPart {
    let mut ops = Vec::new();
    compile_action(&part.action, &mut ops);
    CompiledPart {
        matcher: Matcher::compile(&part.trigger),
        ops,
    }
}

/// Lower one action subtree. Contract: the emitted code consumes the
/// top-of-stack packet and mirrors `geneva::engine`'s tree walk.
fn compile_action(action: &Action, ops: &mut Vec<Op>) {
    match action {
        Action::Send => ops.push(Op::Emit),
        Action::Drop => ops.push(Op::Pop),
        Action::Duplicate(first, second) => {
            ops.push(Op::Dup);
            compile_action(first, ops);
            compile_action(second, ops);
        }
        Action::Tamper { field, mode, next } => {
            ops.push(Op::Tamper {
                field: field.clone(),
                mode: mode.clone(),
                // Upgraded to TrustedValid after verification proves
                // the incoming packet canonical on every path.
                hint: TamperHint::Checked,
            });
            compile_action(next, ops);
        }
        Action::Fragment {
            proto,
            offset,
            in_order,
            first,
            second,
        } => {
            let split_at = ops.len();
            ops.push(Op::Split {
                proto: *proto,
                offset: *offset,
                in_order: *in_order,
                nosplit: usize::MAX, // patched below
            });
            if *in_order {
                compile_action(first, ops);
                compile_action(second, ops);
            } else {
                compile_action(second, ops);
                compile_action(first, ops);
            }
            let jump_at = ops.len();
            ops.push(Op::Jump(usize::MAX)); // patched below
            let nosplit = ops.len();
            // The unsplit packet runs `first` alone, exactly like the
            // engine's `None` arm — a duplicated body, not a shared one,
            // because the split path must also run `second`.
            compile_action(first, ops);
            let end = ops.len();
            if let Some(Op::Split {
                nosplit: target, ..
            }) = ops.get_mut(split_at)
            {
                *target = nosplit;
            }
            if let Some(Op::Jump(target)) = ops.get_mut(jump_at) {
                *target = end;
            }
        }
    }
}

/// A compile cache keyed by canonical equivalence class. Strategies
/// that canonicalize identically (e.g. the same strategy deployed to
/// two countries, or a mutated genome that collapses to a known form)
/// share one compiled program.
///
/// ## Concurrency model (read-mostly)
///
/// The cache is shared by reference across every shard worker of the
/// threaded plane and between the live service's data thread and its
/// control plane, so all methods take `&self`. The map sits behind an
/// [`RwLock`]: the steady-state flow-creation path (strategy already
/// compiled) takes only the **read** lock, so concurrent workers never
/// serialize on it; the write lock is taken only to install a program
/// that genuinely isn't there yet. A miss re-checks under the write
/// lock before compiling, so each equivalence class compiles exactly
/// once process-wide no matter how many workers race — and the
/// hit/miss totals stay identical to a single-threaded run (one miss
/// per distinct program, hits for everything else; the double-checked
/// racer that loses the compile counts the hit a single-threaded run
/// would have counted).
///
/// Counters are relaxed atomics: they order nothing, they only count.
#[derive(Default)]
pub struct ProgramCache {
    map: RwLock<HashMap<CanonKey, Arc<Program>>>,
    /// Lookups that found an existing program.
    hits: AtomicU64,
    /// Lookups that compiled a new program.
    misses: AtomicU64,
    /// Lookups refused because verification failed (only
    /// [`ProgramCache::get_or_verify`] refuses; rejects are never
    /// cached, so a repeat offender counts every time).
    verify_rejects: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Lookups that found an existing program.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that compiled a new program.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups refused by the proof gate.
    pub fn verify_rejects(&self) -> u64 {
        self.verify_rejects.load(Ordering::Relaxed)
    }

    /// Read-lock lookup by pre-computed key, counting a hit on success.
    fn lookup(&self, key: &CanonKey) -> Option<Arc<Program>> {
        let found = read_unpoisoned(&self.map).get(key).map(Arc::clone);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Fetch the compiled form of `strategy`, compiling (unchecked) at
    /// most once per equivalence class.
    pub fn get_or_compile(&self, strategy: &Strategy) -> Arc<Program> {
        let key = CanonKey::of(&strata::canonicalize_strategy(strategy));
        if let Some(program) = self.lookup(&key) {
            return program;
        }
        let mut map = write_unpoisoned(&self.map);
        // Double-check: a racing worker may have compiled it between
        // our read miss and taking the write lock.
        if let Some(program) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(program);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(Program::compile_unchecked(strategy));
        map.insert(key, Arc::clone(&program));
        program
    }

    /// [`ProgramCache::get_or_compile`] with the proof gate: a
    /// strategy whose program fails verification is refused and *not*
    /// cached. Everything already in the cache was verified (only
    /// verified programs are inserted here), so hits stay cheap.
    pub fn get_or_verify(&self, strategy: &Strategy) -> Result<Arc<Program>, VerifyError> {
        let key = CanonKey::of(&strata::canonicalize_strategy(strategy));
        if let Some(program) = self.lookup(&key) {
            return Ok(program);
        }
        let mut map = write_unpoisoned(&self.map);
        if let Some(program) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(program));
        }
        // Compiling under the write lock serializes compilation of
        // *distinct* new strategies, which is exactly the exactly-once
        // guarantee: a rollout ships a handful of programs, flows ship
        // millions of packets — the read path is what must scale.
        match Program::compile(strategy) {
            Ok(program) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let program = Arc::new(program);
                map.insert(key, Arc::clone(&program));
                Ok(program)
            }
            Err(error) => {
                self.verify_rejects.fetch_add(1, Ordering::Relaxed);
                Err(error)
            }
        }
    }

    /// Look up a compiled program by canonical key without touching
    /// the hit/miss counters — the control plane peeking at what is
    /// installed, not a flow taking the packet path.
    pub fn get(&self, key: &CanonKey) -> Option<Arc<Program>> {
        read_unpoisoned(&self.map).get(key).map(Arc::clone)
    }

    /// Install an already-compiled program under its own canonical
    /// key, without touching the hit/miss counters. This is the hot
    /// reload surface: the control plane verifies a candidate with
    /// [`Program::compile`] *outside* the cache (a refusal must leave
    /// every counter byte-identical), then inserts the verified
    /// program so the first flow of the new rollout takes a cache hit
    /// instead of recompiling.
    ///
    /// Refuses (returns `false`, cache untouched) when the program
    /// carries no proof — only verified programs may enter through
    /// this door; the `--unchecked` path goes through
    /// [`ProgramCache::get_or_compile`].
    pub fn insert(&self, program: Arc<Program>) -> bool {
        if program.proof.is_none() {
            return false;
        }
        write_unpoisoned(&self.map).insert(program.key, program);
        true
    }

    /// Number of distinct compiled programs.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.map).len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Canonical DSL text per program key — the metrics labels, as the
    /// ordered snapshot [`crate::MetricsReport`] embeds.
    pub fn strategies(&self) -> std::collections::BTreeMap<CanonKey, String> {
        read_unpoisoned(&self.map)
            .iter()
            .map(|(key, program)| (*key, program.canonical_text.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use geneva::parse_strategy;
    use geneva::Engine;

    fn syn_ack() -> Packet {
        let mut p = Packet::tcp(
            [93, 184, 216, 34],
            80,
            [10, 7, 0, 2],
            40000,
            TcpFlags::SYN_ACK,
            9000,
            1001,
            vec![],
        );
        p.tcp_header_mut().unwrap().options = vec![
            packet::TcpOption::Mss(1460),
            packet::TcpOption::WindowScale(7),
        ];
        p.finalize();
        p
    }

    fn data(payload: &[u8]) -> Packet {
        let mut p = Packet::tcp(
            [93, 184, 216, 34],
            80,
            [10, 7, 0, 2],
            40000,
            TcpFlags::PSH_ACK,
            9000,
            1001,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    fn assert_equiv(text: &str, pkt: &Packet, seed: u64) {
        let strategy = parse_strategy(text).unwrap();
        let program = Program::compile(&strategy).unwrap();
        let mut engine = Engine::new(strategy, seed);
        assert_eq!(
            program.run_outbound(pkt, seed),
            engine.apply_outbound(pkt),
            "compiled != interpreted for {text}"
        );
    }

    #[test]
    fn library_strategies_compile_equivalent() {
        for named in geneva::library::server_side() {
            let strategy = named.strategy();
            let program = Program::compile(&strategy).unwrap();
            let mut engine = Engine::new(strategy, 7);
            for pkt in [syn_ack(), data(b"GET / HTTP/1.1\r\n\r\n")] {
                assert_eq!(
                    program.run_outbound(&pkt, 7),
                    engine.apply_outbound(&pkt),
                    "strategy {} diverged",
                    named.id
                );
            }
        }
    }

    #[test]
    fn fragment_no_split_takes_first_branch() {
        // A 1-byte payload cannot split: the engine runs `first` on the
        // whole packet. `second` here would drop, so divergence shows.
        assert_equiv(
            "[TCP:flags:PA]-fragment{TCP:8:True}(tamper{TCP:window:replace:5},drop)-| \\/ ",
            &data(b"x"),
            3,
        );
        assert_equiv(
            "[TCP:flags:PA]-fragment{TCP:8:False}(tamper{TCP:window:replace:5},drop)-| \\/ ",
            &data(b"x"),
            3,
        );
    }

    #[test]
    fn out_of_order_fragment_swaps_emission() {
        assert_equiv(
            "[TCP:flags:PA]-fragment{TCP:4:False}(,)-| \\/ ",
            &data(b"abcdefgh"),
            3,
        );
    }

    #[test]
    fn never_matcher_for_non_canonical_spellings() {
        // "AS" parses as SYN+ACK but the engine renders "SA": no match.
        let t = Trigger {
            field: FieldRef::parse("TCP:flags").unwrap(),
            value: "AS".to_string(),
        };
        assert!(matches!(Matcher::compile(&t), Matcher::Never));
        assert!(!Matcher::compile(&t).matches(&syn_ack()));
        assert!(!t.matches(&syn_ack()));

        let t = Trigger {
            field: FieldRef::parse("TCP:dport").unwrap(),
            value: "080".to_string(),
        };
        assert!(matches!(Matcher::compile(&t), Matcher::Never));
    }

    #[test]
    fn empty_matcher_tracks_absent_options() {
        let t = Trigger {
            field: FieldRef::parse("TCP:options-sackok").unwrap(),
            value: String::new(),
        };
        let m = Matcher::compile(&t);
        let pkt = syn_ack(); // mss + wscale, no sackok
        assert_eq!(m.matches(&pkt), t.matches(&pkt));
        assert!(m.matches(&pkt), "absent option reads Empty");
    }

    #[test]
    fn cache_dedups_by_canonical_class() {
        let cache = ProgramCache::new();
        // Strategy plus a dead tail: same canonical class.
        let a = parse_strategy("[TCP:flags:SA]-duplicate(,)-| \\/ ").unwrap();
        let b = parse_strategy("[TCP:flags:SA]-duplicate(,)-| [TCP:flags:R]-send-| \\/ ").unwrap();
        let pa = cache.get_or_compile(&a);
        let pb = cache.get_or_compile(&b);
        assert_eq!(pa.key, pb.key);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn insert_preseeds_without_counting() {
        // The reload surface: a program verified outside the cache is
        // installed silently, and the first flow that wants it hits.
        let s = parse_strategy("[TCP:flags:SA]-duplicate(,)-| \\/ ").unwrap();
        let program = Arc::new(Program::compile(&s).unwrap());
        let cache = ProgramCache::new();
        assert!(cache.insert(Arc::clone(&program)));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 1));
        assert!(cache.get(&program.key).is_some());
        assert_eq!((cache.hits(), cache.misses()), (0, 0), "get never counts");
        let hit = cache.get_or_verify(&s).unwrap();
        assert_eq!(hit.key, program.key);
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        // Unverified programs are refused at this door.
        let unverified = Arc::new(Program {
            proof: None,
            ..(*program).clone()
        });
        assert!(!cache.insert(unverified));
    }

    #[test]
    fn compiled_programs_carry_per_censor_verdicts() {
        // Strategy 11 (null flags): the model checker proves the
        // Kazakhstan HTTP filter writes the flow off, and the verdict
        // travels with the cached program.
        let s11 =
            parse_strategy("[TCP:flags:SA]-duplicate(tamper{TCP:flags:replace:},)-| \\/ ").unwrap();
        let cache = ProgramCache::new();
        let program = cache.get_or_verify(&s11).unwrap();
        assert!(program
            .verdicts
            .contains(&(CensorId::Kazakhstan, Verdict::ProvablyDesynced)));
        // The stochastic GFW never receives a claim.
        assert!(program
            .verdicts
            .contains(&(CensorId::Gfw, Verdict::Unknown)));

        // A cache hit reuses the verdicts without re-checking.
        let again = cache.get_or_verify(&s11).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(again.verdicts, program.verdicts);

        // Identity: provably inert everywhere deterministic.
        let identity = Program::compile(&parse_strategy(" \\/ ").unwrap()).unwrap();
        assert!(identity
            .verdicts
            .contains(&(CensorId::Kazakhstan, Verdict::ProvablyInert)));
    }
}
