//! Self-checks for the model checker: weave must find bugs that are
//! definitely there, certify code that is definitely correct, and
//! replay every counterexample deterministically.
#![allow(clippy::unwrap_used)] // test code

use weave::sync::atomic::{AtomicUsize, Ordering};
use weave::sync::{Arc, Condvar, Mutex, RwLock};
use weave::{explore, replay, Config, FailureKind};

fn cfg() -> Config {
    Config::default()
}

/// Two threads bumping a mutex-guarded counter: no interleaving can
/// break it, and exploration must exhaust the state space.
#[test]
fn certifies_correct_counter() {
    let report = explore(cfg(), || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let t = weave::thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted);
    assert!(report.schedules >= 2, "must explore both lock orders");
}

/// A racy read-modify-write through an atomic: some interleaving loses
/// an increment and the seeded assertion must catch it.
#[test]
fn finds_lost_update_race() {
    let report = explore(cfg(), || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = weave::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = report.failure.expect("weave must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
}

/// Classic ABBA deadlock: two locks taken in opposite orders.
#[test]
fn finds_abba_deadlock() {
    let report = explore(cfg(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = weave::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
    let failure = report.failure.expect("weave must find the ABBA deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// A missed notify: the waiter checks the flag, the notifier sets it
/// and notifies *between* the check and the wait — the notify hits an
/// empty queue and the waiter parks forever. weave must surface the
/// lost-wakeup schedule as a deadlock.
#[test]
fn finds_missed_notify_lost_wakeup() {
    let report = explore(cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = weave::thread::spawn(move || {
            let (flag, cv) = &*pair2;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        // Buggy waiter: parks unconditionally instead of re-checking
        // the predicate under the lock. In the schedule where the
        // notifier fires first, the notify hits an empty queue and
        // this wait never returns.
        let g = flag.lock().unwrap();
        let _g = cv.wait(g).unwrap();
        t.join().unwrap();
    });
    let failure = report.failure.expect("weave must find the lost wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("condvar"),
        "deadlock should implicate the condvar wait: {}",
        failure.message
    );
}

/// The fixed version of the wait/notify protocol (condition checked
/// under the lock held across the wait decision) must verify clean —
/// including with spurious wakeups enabled.
#[test]
fn certifies_correct_wait_notify() {
    let mut c = cfg();
    c.spurious = true;
    let report = explore(c, || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = weave::thread::spawn(move || {
            let (flag, cv) = &*pair2;
            let mut g = flag.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (flag, cv) = &*pair;
        let mut g = flag.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted);
}

/// Counterexample tokens replay deterministically: the replayed
/// schedule reproduces the same failure kind, and replaying twice
/// yields the same token.
#[test]
fn replay_reproduces_counterexample() {
    let model = || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = weave::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let report = explore(cfg(), model);
    let failure = report.failure.expect("counterexample expected");
    let replayed = replay(cfg(), &failure.token, model).expect("token must reproduce the failure");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.token, failure.token, "replay must be stable");
    let replayed2 =
        replay(cfg(), &failure.token, model).expect("token must reproduce the failure twice");
    assert_eq!(replayed2.token, failure.token);
}

/// Sleep-set DPOR must prune commuting operations: two threads
/// touching two INDEPENDENT mutexes need far fewer schedules than the
/// naive interleaving count, and exploration still exhausts.
#[test]
fn dpor_prunes_independent_operations() {
    let report = explore(cfg(), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let a2 = Arc::clone(&a);
        let t = weave::thread::spawn(move || {
            *a2.lock().unwrap() += 1;
        });
        *b.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*a.lock().unwrap() + *b.lock().unwrap(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted);
    // Independent lock/unlock pairs commute; sleep sets must collapse
    // most of the naive interleavings of the two critical sections.
    assert!(
        report.schedules <= 12,
        "DPOR should prune independent ops, got {} schedules",
        report.schedules
    );
    assert!(report.pruned > 0, "sleep sets never fired");
}

/// RwLock: two concurrent readers plus a writer. Readers may overlap;
/// the writer is exclusive; no interleaving breaks the invariant and
/// the space must exhaust.
#[test]
fn certifies_rwlock_readers_writer() {
    let report = explore(cfg(), || {
        let l = Arc::new(RwLock::new(0u32));
        let (l2, l3) = (Arc::clone(&l), Arc::clone(&l));
        let w = weave::thread::spawn(move || {
            *l2.write().unwrap() = 7;
        });
        let r = weave::thread::spawn(move || {
            let v = *l3.read().unwrap();
            assert!(v == 0 || v == 7, "torn read through RwLock");
        });
        let v = *l.read().unwrap();
        assert!(v == 0 || v == 7);
        w.join().unwrap();
        r.join().unwrap();
        assert_eq!(*l.read().unwrap(), 7);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted);
}

/// A preemption bound of 0 must still explore the non-preemptive
/// schedules (and hence complete), while a seeded race that *needs* a
/// preemption goes unfound — then bound 2 finds it. This pins the
/// bound's semantics.
#[test]
fn preemption_bound_semantics() {
    let model = || {
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let t = weave::thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = c.load(Ordering::SeqCst);
        c.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    };
    let mut c0 = cfg();
    c0.preemption_bound = Some(0);
    let r0 = explore(c0, model);
    assert!(
        r0.failure.is_none(),
        "the lost update needs a preemption; bound 0 must not find it"
    );
    let mut c2 = cfg();
    c2.preemption_bound = Some(2);
    let r2 = explore(c2, model);
    assert!(
        r2.failure.is_some(),
        "bound 2 must expose the lost update (schedules: {})",
        r2.schedules
    );
}

/// Timed waits make progress without a notifier: the timeout fires
/// (budgeted, then forced) instead of reporting a false deadlock.
#[test]
fn timed_wait_never_false_deadlocks() {
    let report = explore(cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (flag, cv) = &*pair;
        let g = flag.lock().unwrap();
        // Nobody will ever notify; the timeout must carry us out.
        let (g, _res) = cv
            .wait_timeout(g, std::time::Duration::from_millis(50))
            .unwrap();
        drop(g);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.exhausted);
}

/// The shims are transparent outside a model: plain threads through
/// the facade still compute the right answer.
#[test]
fn shims_passthrough_unmanaged() {
    let m = Arc::new(Mutex::new(0u32));
    let c = Arc::new(AtomicUsize::new(0));
    let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
    let t = weave::thread::spawn(move || {
        *m2.lock().unwrap() += 1;
        c2.fetch_add(1, Ordering::SeqCst);
    });
    *m.lock().unwrap() += 1;
    c.fetch_add(1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(*m.lock().unwrap(), 2);
    assert_eq!(c.load(Ordering::SeqCst), 2);
    weave::thread::yield_now();
}
