//! # weave — deterministic concurrency model checking
//!
//! A std-only, dependency-free model checker in the spirit of
//! [loom](https://github.com/tokio-rs/loom): compile concurrent code
//! against the [`sync`]/[`thread`] shims, wrap a test body in
//! [`explore`] (or [`check`]), and weave runs it under **every**
//! schedule — depth-first over scheduling decisions, pruned by
//! sleep-set partial-order reduction and an optional preemption bound
//! — rather than the handful a stress test happens to sample.
//!
//! Detected failure classes:
//! * **deadlocks** — all unfinished threads blocked, which is also
//!   what a *lost condvar wakeup* looks like (a `notify_one` that no
//!   longer fires leaves its waiter parked forever);
//! * **missed notifies** — `notify` with no waiter is modeled as a
//!   no-op, exactly like the real primitive, so wait/notify races are
//!   explored faithfully; timed waits model their timeout firing, and
//!   [`Config::spurious`] adds spurious wakeups for untimed waits;
//! * **invariant violations** — any panic in model code (a failed
//!   `assert!` and friends).
//!
//! Every counterexample carries a **schedule token** (`w:1.0.2…`, the
//! decision trail) that [`replay`] re-runs deterministically — a bug
//! found once is a bug you can single-step forever.
//!
//! ```
//! let report = weave::check(weave::Config::default(), || {
//!     let m = weave::sync::Arc::new(weave::sync::Mutex::new(0u32));
//!     let m2 = weave::sync::Arc::clone(&m);
//!     let t = weave::thread::spawn(move || {
//!         *m2.lock().unwrap() += 1;
//!     });
//!     *m.lock().unwrap() += 1;
//!     t.join().unwrap();
//!     assert_eq!(*m.lock().unwrap(), 2);
//! });
//! assert!(report.exhausted);
//! ```
//!
//! Outside an [`explore`] execution the shims fall through to plain
//! `std::sync`, so a crate can compile its production types against a
//! cfg-gated facade (see the `sync_shim` modules in `harness`,
//! `dplane`, and `svc`) and pay zero cost — in production builds the
//! facade *is* `std::sync`, and weave never appears in the binary.

mod sched;
pub mod sync;
pub mod thread;

pub use sched::{check, explore, replay, Config, Failure, FailureKind, Report};
