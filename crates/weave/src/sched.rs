//! The cooperative scheduler and interleaving explorer behind `weave`.
//!
//! ## Execution model
//!
//! A *model* is a closure that builds shared state out of
//! [`crate::sync`] primitives and spawns [`crate::thread`] threads.
//! Every thread in the model is a real OS thread, but only one runs at
//! a time: a thread holding the *token* executes user code freely and
//! surrenders the token at every synchronization operation by
//! **announcing** what it is about to do ([`OpKind`]) and parking until
//! the scheduler selects it again. Selection *is* execution: a thread's
//! announced operation takes effect exactly when the scheduler picks
//! it, so the set of announced operations at a decision point is a
//! complete picture of the model's next transitions — which is what
//! lets the explorer compute enabledness (a `lock` on a held mutex is
//! simply not selectable) and independence (two operations on
//! different objects commute) without guessing.
//!
//! ## Exploration
//!
//! Interleavings are explored by depth-first search over scheduling
//! decisions. Each execution runs the model once, recording a trail of
//! decision points (states where ≥ 2 transitions were selectable);
//! backtracking rewinds to the deepest decision with an untried
//! sibling and re-runs with that choice forced. Two reductions prune
//! the walk without losing bugs:
//!
//! * **Sleep sets** (Godefroid-style dynamic partial-order
//!   reduction): after exploring choice `t` at a state, `t` is put to
//!   sleep for the sibling branches and stays asleep until some
//!   executed operation *conflicts* with it (same object, at least one
//!   writer). Interleavings that merely commute independent operations
//!   are never re-explored.
//! * **Preemption bounding**: a *preemption* is a switch away from a
//!   thread whose next operation is still selectable. With
//!   [`Config::preemption_bound`] set, schedules exceeding the bound
//!   are skipped — the classic CHESS observation that real
//!   concurrency bugs need very few preemptions.
//!
//! ## Verdicts
//!
//! An execution ends in one of: normal completion; **deadlock** (some
//! thread unfinished, nothing selectable — this is also what a lost
//! condvar wakeup looks like, which is the point); **panic** (a failed
//! assertion in model code); or **depth exceeded** (a schedule ran
//! away, usually a model polling a timed wait in a loop). Every
//! failure carries a schedule token — the decision trail as a string —
//! that [`replay`] re-runs deterministically.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Thread id inside one model execution (dense, spawn order).
pub(crate) type Tid = usize;
/// Model-object id (mutexes, rwlocks, condvars, atomics, threads).
pub(crate) type Oid = u64;

/// Counter for objects created outside any model execution. Starts in
/// a range disjoint from per-execution ids so an object captured from
/// outside keeps a stable, non-colliding identity across schedules.
static UNMANAGED_OID: AtomicU64 = AtomicU64::new(1 << 48);

/// Allocate a fresh model-object id.
///
/// Inside a model execution, ids come from the execution's own
/// counter: the replayed prefix re-creates objects in the same order,
/// so the same object gets the same id in every schedule sharing that
/// prefix — which is what lets sleep-set entries recorded in one
/// execution match operations in the next. Outside a model, ids come
/// from a process-global counter in a disjoint range.
pub(crate) fn next_oid() -> Oid {
    match current() {
        Some((sched, _)) => sched.oid_counter.fetch_add(1, Ordering::Relaxed),
        None => UNMANAGED_OID.fetch_add(1, Ordering::Relaxed),
    }
}

/// Read/write classification for the independence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    Read,
    Write,
}

/// A synchronization operation a thread announces before performing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First transition of every thread.
    Begin,
    /// Last transition of every thread; enables pending joins.
    Finish,
    /// Pure scheduling point (`yield_now`).
    Yield,
    /// Create a child thread.
    Spawn,
    /// Acquire a mutex (selectable only while it is free).
    Lock { m: Oid },
    /// Release a mutex.
    Unlock { m: Oid },
    /// Acquire a read lock (selectable while no writer holds).
    RwRead { l: Oid },
    /// Acquire the write lock (selectable while nobody holds).
    RwWrite { l: Oid },
    /// Release a read lock.
    RwUnlockRead { l: Oid },
    /// Release the write lock.
    RwUnlockWrite { l: Oid },
    /// Atomically release `m` and join `cv`'s wait queue.
    CvWait { cv: Oid, m: Oid, timed: bool },
    /// Reacquire `m` after a notify/timeout (selectable while free).
    CvReacquire { cv: Oid, m: Oid },
    /// Wake one or all waiters of `cv`.
    CvNotify { cv: Oid, all: bool },
    /// Virtual transition: a timed (or spuriously woken) waiter of
    /// `cv` stops waiting and moves to reacquire. Never announced by
    /// thread code — synthesized by the scheduler for waiting threads.
    CvTimeout { cv: Oid },
    /// Atomic load (read) or store/rmw (write) on one cell.
    Atomic { o: Oid, write: bool },
    /// Wait for a thread to finish (selectable once it has).
    Join { target: Tid },
}

impl OpKind {
    /// The (object, access) pairs this operation touches — the basis
    /// of the independence relation. At most two (condvar wait touches
    /// the condvar and the mutex).
    fn touches(self, own_oid: Oid, thread_oids: &[Oid]) -> [Option<(Oid, Access)>; 2] {
        use OpKind::*;
        match self {
            Begin | Finish => [Some((own_oid, Access::Write)), None],
            Yield | Spawn => [None, None],
            Lock { m } | Unlock { m } => [Some((m, Access::Write)), None],
            RwRead { l } | RwUnlockRead { l } => [Some((l, Access::Read)), None],
            RwWrite { l } | RwUnlockWrite { l } => [Some((l, Access::Write)), None],
            CvWait { cv, m, .. } => [Some((cv, Access::Write)), Some((m, Access::Write))],
            CvReacquire { m, .. } => [Some((m, Access::Write)), None],
            CvNotify { cv, .. } | CvTimeout { cv } => [Some((cv, Access::Write)), None],
            Atomic { o, write } => [
                Some((o, if write { Access::Write } else { Access::Read })),
                None,
            ],
            Join { target } => thread_oids
                .get(target)
                .map_or([None, None], |&t| [Some((t, Access::Read)), None]),
        }
    }
}

/// True when the two operations may not commute: they share an object
/// and at least one side mutates it. Conservative (never claims
/// independence for dependent operations).
fn conflicts(a: &Touches, b: &Touches) -> bool {
    for pa in a.iter().flatten() {
        for pb in b.iter().flatten() {
            if pa.0 == pb.0 && (pa.1 == Access::Write || pb.1 == Access::Write) {
                return true;
            }
        }
    }
    false
}

type Touches = [Option<(Oid, Access)>; 2];

/// Where a thread is in its lifecycle, from the scheduler's view.
#[derive(Debug, Clone, Copy)]
enum Phase {
    /// Parked at a scheduling point; `op` executes when selected.
    Announced(OpKind),
    /// Holds the token and is executing user code.
    Running,
    /// Parked in a condvar wait queue, nothing announced. Selectable
    /// only through the scheduler's virtual [`OpKind::CvTimeout`].
    WaitingCv { cv: Oid, m: Oid, timed: bool },
    /// Body returned; joins on it are selectable.
    Finished,
}

#[derive(Debug)]
struct ThreadRec {
    phase: Phase,
    /// Model-object id for Finish/Join dependence.
    oid: Oid,
    /// Remaining timed/spurious wakeups this thread may take before
    /// they are only granted to avert a false deadlock.
    wake_budget: u32,
}

/// One recorded decision point (≥ 2 selectable candidates).
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// The selectable candidates (enabled minus sleeping), tid order.
    candidates: Vec<(Tid, OpKind, Touches)>,
    /// The branch this execution took.
    chosen: Tid,
    /// Branches already explored at this state (driver-maintained).
    tried: Vec<Tid>,
    /// Sleep set on entry (tids), for sibling filtering.
    sleep_at_entry: Vec<Tid>,
    /// The previously selected thread (preemption accounting).
    prev: Option<Tid>,
    /// Preemptions taken on the path above this decision.
    preemptions_before: u32,
}

/// A forced choice during prefix replay: the branch to take plus the
/// already-explored siblings that must sleep through the subtree.
#[derive(Debug, Clone)]
struct PrefixEntry {
    chosen: Tid,
    tried: Vec<(Tid, Touches)>,
}

/// Why an execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Unfinished threads, nothing selectable: a deadlock — or a lost
    /// wakeup, which is the same thing observed from the outside.
    Deadlock,
    /// Model code panicked (failed assertion, index error, …).
    Panic,
    /// One schedule exceeded [`Config::max_steps`] transitions —
    /// almost always a model looping on a timed wait.
    DepthExceeded,
}

/// A counterexample: what went wrong and the schedule that gets there.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    /// Human-readable description (panic message, per-thread blocked
    /// states for a deadlock).
    pub message: String,
    /// Replayable schedule token (`w:…`); feed to [`replay`].
    pub token: String,
}

/// Exploration limits and modeling knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop after this many schedules even if unexhausted.
    pub max_schedules: u64,
    /// Max context switches away from a still-selectable thread, per
    /// schedule. `None` explores exhaustively.
    pub preemption_bound: Option<u32>,
    /// Also wake *untimed* condvar waiters spuriously (std permits
    /// it). Timed waits always model their timeout firing.
    pub spurious: bool,
    /// Free timed/spurious wakeups per thread per schedule; beyond the
    /// budget a timeout only fires to avert a false deadlock. Bounds
    /// the state space of retry loops around `wait_timeout`.
    pub wake_budget: u32,
    /// Transition cap per schedule (runaway-model guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_schedules: 200_000,
            preemption_bound: None,
            spurious: false,
            wake_budget: 1,
            max_steps: 20_000,
        }
    }
}

/// What exploring a model produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules run to completion (including sleep-set-pruned ones).
    pub schedules: u64,
    /// Schedules cut short by the sleep-set reduction (counted in
    /// `schedules` too; the difference is full executions).
    pub pruned: u64,
    /// First counterexample found, if any. Exploration stops at the
    /// first failure.
    pub failure: Option<Failure>,
    /// True when the state space was exhausted (rather than the
    /// search stopping at `max_schedules` or at a failure).
    pub exhausted: bool,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Status {
    Running,
    Done,
    Aborted,
}

/// How one execution ended (driver-side).
enum Outcome {
    Completed,
    SleepBlocked,
    Failed(Failure),
}

/// Payload used to unwind parked threads when an execution is torn
/// down; swallowed by the thread wrapper.
struct WeaveAbort;

struct St {
    threads: Vec<ThreadRec>,
    /// The thread currently holding the token.
    active: Option<Tid>,
    /// The thread that executed the previous transition.
    prev: Option<Tid>,
    preemptions: u32,
    /// Forced choices for the replayed prefix of this execution.
    prefix: Vec<PrefixEntry>,
    /// Every selected tid, one per transition — the schedule token.
    steps_trace: Vec<Tid>,
    /// When set, follow this full per-transition trace (token replay)
    /// instead of exploring: sleep sets and decision recording are
    /// bypassed so the schedule is pinned exactly.
    replay_trace: Option<Vec<Tid>>,
    /// Decisions recorded this execution (replayed + new).
    trail: Vec<Decision>,
    /// Next decision index (into `prefix` while replaying).
    depth: usize,
    /// Runtime sleep set: threads whose announced op need not be
    /// explored from the current state.
    sleep: Vec<(Tid, Touches)>,
    mutexes: HashMap<Oid, bool>,
    rwlocks: HashMap<Oid, (usize, bool)>,
    cv_queues: HashMap<Oid, VecDeque<Tid>>,
    status: Status,
    failure: Option<Failure>,
    sleep_blocked: bool,
    steps: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    cfg: Config,
}

/// The per-execution scheduler. Shared by every thread of one model
/// execution through an `Arc`.
pub(crate) struct Sched {
    state: Mutex<St>,
    cv: Condvar,
    /// Per-execution object-id counter (see [`next_oid`]).
    oid_counter: AtomicU64,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Sched>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// The scheduler managing the current thread, when one is.
pub(crate) fn current() -> Option<(Arc<Sched>, Tid)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the current OS thread belongs to a model execution.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Like [`current`], but `None` while the thread is unwinding: a
/// panicking thread must not announce new scheduling points (parking
/// inside a `Drop` during unwind risks a double panic when the
/// execution aborts underneath it), so its sync operations fall
/// through to the raw std primitives on the way down. Guard `Drop`
/// impls still repair model lock state via the `*_quiet` effects.
pub(crate) fn announce_ctx() -> Option<(Arc<Sched>, Tid)> {
    if std::thread::panicking() {
        None
    } else {
        current()
    }
}

fn lock_st(sched: &Sched) -> std::sync::MutexGuard<'_, St> {
    // The scheduler's own mutex is never poisoned on purpose: every
    // panic inside model threads is caught before unwinding past a
    // critical section. Recover rather than cascade if one slips by.
    sched
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Sched {
    fn new(cfg: Config, prefix: Vec<PrefixEntry>) -> Sched {
        Sched {
            state: Mutex::new(St {
                threads: Vec::new(),
                active: None,
                prev: None,
                preemptions: 0,
                prefix,
                steps_trace: Vec::new(),
                replay_trace: None,
                trail: Vec::new(),
                depth: 0,
                sleep: Vec::new(),
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                cv_queues: HashMap::new(),
                status: Status::Running,
                failure: None,
                sleep_blocked: false,
                steps: 0,
                handles: Vec::new(),
                cfg,
            }),
            cv: Condvar::new(),
            oid_counter: AtomicU64::new(1),
        }
    }

    /// Register a new thread record (spawn effect); returns its tid.
    fn register(&self, st: &mut St) -> Tid {
        let tid = st.threads.len();
        let budget = st.cfg.wake_budget;
        st.threads.push(ThreadRec {
            phase: Phase::Announced(OpKind::Begin),
            oid: self.oid_counter.fetch_add(1, Ordering::Relaxed),
            wake_budget: budget,
        });
        tid
    }

    fn token(st: &St) -> String {
        let picks: Vec<String> = st.steps_trace.iter().map(|t| t.to_string()).collect();
        format!("w:{}", picks.join("."))
    }

    fn abort(&self, st: &mut St) {
        st.status = Status::Aborted;
        st.active = None;
        self.cv.notify_all();
    }

    fn fail(&self, st: &mut St, kind: FailureKind, message: String) {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind,
                message,
                token: Self::token(st),
            });
        }
        self.abort(st);
    }

    /// Touches of the transition a thread would take if selected.
    fn touches_of(st: &St, tid: Tid) -> Touches {
        let oids: Vec<Oid> = st.threads.iter().map(|t| t.oid).collect();
        match st.threads[tid].phase {
            Phase::Announced(op) => op.touches(st.threads[tid].oid, &oids),
            Phase::WaitingCv { cv, .. } => OpKind::CvTimeout { cv }.touches(0, &oids),
            _ => [None, None],
        }
    }

    fn op_of(st: &St, tid: Tid) -> OpKind {
        match st.threads[tid].phase {
            Phase::Announced(op) => op,
            Phase::WaitingCv { cv, .. } => OpKind::CvTimeout { cv },
            _ => OpKind::Yield,
        }
    }

    /// Whether `tid`'s pending transition may complete right now.
    fn op_enabled(st: &St, tid: Tid) -> bool {
        match st.threads[tid].phase {
            Phase::Announced(op) => match op {
                OpKind::Lock { m } | OpKind::CvReacquire { m, .. } => {
                    !st.mutexes.get(&m).copied().unwrap_or(false)
                }
                OpKind::RwRead { l } => !st.rwlocks.get(&l).map(|&(_, w)| w).unwrap_or(false),
                OpKind::RwWrite { l } => st
                    .rwlocks
                    .get(&l)
                    .map(|&(r, w)| r == 0 && !w)
                    .unwrap_or(true),
                OpKind::Join { target } => {
                    matches!(st.threads[target].phase, Phase::Finished)
                }
                _ => true,
            },
            _ => false,
        }
    }

    /// The selectable transitions: enabled announced ops, plus virtual
    /// timeout transitions for waiting threads (budget-gated, or
    /// unconditionally when nothing else can move — a timed wait must
    /// eventually expire rather than report a false deadlock).
    fn enabled_set(st: &St) -> Vec<Tid> {
        let spurious = st.cfg.spurious;
        let mut out: Vec<Tid> = (0..st.threads.len())
            .filter(|&t| Self::op_enabled(st, t))
            .collect();
        let mut waiters: Vec<(Tid, bool)> = Vec::new();
        for (t, rec) in st.threads.iter().enumerate() {
            if let Phase::WaitingCv { timed, .. } = rec.phase {
                let budgeted = rec.wake_budget > 0 && (timed || spurious);
                waiters.push((t, budgeted));
                if budgeted {
                    out.push(t);
                }
            }
        }
        if out.is_empty() {
            // Nothing else can move: grant timed waiters their expiry
            // regardless of budget so retry loops make progress.
            out.extend(
                waiters
                    .iter()
                    .filter_map(|&(t, _)| match st.threads[t].phase {
                        Phase::WaitingCv { timed: true, .. } => Some(t),
                        _ => None,
                    }),
            );
        }
        out.sort_unstable();
        out
    }

    fn describe_blocked(st: &St) -> String {
        let mut parts = Vec::new();
        for (t, rec) in st.threads.iter().enumerate() {
            let what = match rec.phase {
                Phase::Announced(op) => format!("blocked at {op:?}"),
                Phase::WaitingCv { cv, .. } => {
                    format!("waiting on condvar #{cv} (never notified)")
                }
                Phase::Running => "running".into(),
                Phase::Finished => continue,
            };
            parts.push(format!("thread {t} {what}"));
        }
        parts.join("; ")
    }

    /// The heart: pick the next transition. Called with the state
    /// locked by whichever thread is surrendering the token.
    fn schedule(&self, st: &mut St) {
        if st.status != Status::Running {
            return;
        }
        st.steps += 1;
        if st.steps > st.cfg.max_steps {
            let steps = st.cfg.max_steps;
            self.fail(
                st,
                FailureKind::DepthExceeded,
                format!("schedule exceeded {steps} transitions (model not converging?)"),
            );
            return;
        }
        let enabled = Self::enabled_set(st);
        if enabled.is_empty() {
            if st
                .threads
                .iter()
                .all(|t| matches!(t.phase, Phase::Finished))
            {
                st.status = Status::Done;
                st.active = None;
                self.cv.notify_all();
            } else {
                let msg = format!("deadlock: {}", Self::describe_blocked(st));
                self.fail(st, FailureKind::Deadlock, msg);
            }
            return;
        }
        if let Some(trace) = st.replay_trace.clone() {
            // Token replay: follow the recorded per-transition trace
            // exactly; past its end (or on divergence — a sign of
            // model nondeterminism) fall back to the default policy.
            let idx = st.steps_trace.len();
            let chosen = trace
                .get(idx)
                .copied()
                .filter(|t| enabled.contains(t))
                .or_else(|| st.prev.filter(|p| enabled.contains(p)))
                .unwrap_or(enabled[0]);
            if matches!(st.threads[chosen].phase, Phase::WaitingCv { .. }) {
                let b = &mut st.threads[chosen].wake_budget;
                *b = b.saturating_sub(1);
            }
            st.steps_trace.push(chosen);
            st.prev = Some(chosen);
            st.active = Some(chosen);
            self.cv.notify_all();
            return;
        }
        let sleeping: Vec<Tid> = st.sleep.iter().map(|&(t, _)| t).collect();
        let candidates: Vec<Tid> = enabled
            .iter()
            .copied()
            .filter(|t| !sleeping.contains(t))
            .collect();
        if candidates.is_empty() {
            // Every selectable transition is asleep: this state's
            // continuations are covered by sibling branches.
            st.sleep_blocked = true;
            self.abort(st);
            return;
        }
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else if st.depth < st.prefix.len() {
            // Replaying the forced prefix: take the recorded branch and
            // put the already-explored siblings to sleep underneath it.
            let entry = st.prefix[st.depth].clone();
            debug_assert!(candidates.contains(&entry.chosen), "replay diverged");
            let cand_full: Vec<(Tid, OpKind, Touches)> = candidates
                .iter()
                .map(|&t| (t, Self::op_of(st, t), Self::touches_of(st, t)))
                .collect();
            st.trail.push(Decision {
                candidates: cand_full,
                chosen: entry.chosen,
                tried: entry.tried.iter().map(|&(t, _)| t).collect(),
                sleep_at_entry: sleeping.clone(),
                prev: st.prev,
                preemptions_before: st.preemptions,
            });
            for (t, touches) in &entry.tried {
                st.sleep.push((*t, *touches));
            }
            st.depth += 1;
            entry.chosen
        } else {
            // Fresh decision: prefer the previous thread (zero-cost,
            // no preemption); siblings are explored on backtrack.
            let pick = st
                .prev
                .filter(|p| candidates.contains(p))
                .unwrap_or(candidates[0]);
            let cand_full: Vec<(Tid, OpKind, Touches)> = candidates
                .iter()
                .map(|&t| (t, Self::op_of(st, t), Self::touches_of(st, t)))
                .collect();
            st.trail.push(Decision {
                candidates: cand_full,
                chosen: pick,
                tried: Vec::new(),
                sleep_at_entry: sleeping.clone(),
                prev: st.prev,
                preemptions_before: st.preemptions,
            });
            st.depth += 1;
            pick
        };
        // Preemption accounting: switching away from a thread that
        // could have continued.
        if let Some(p) = st.prev {
            if p != chosen && candidates.contains(&p) {
                st.preemptions += 1;
            }
        }
        // Sleep-set evolution: executing `chosen` wakes everything
        // that conflicts with it.
        let chosen_touches = Self::touches_of(st, chosen);
        st.sleep
            .retain(|(t, touches)| *t != chosen && !conflicts(touches, &chosen_touches));
        // A waiting thread selected through its virtual timeout spends
        // wake budget.
        if matches!(st.threads[chosen].phase, Phase::WaitingCv { .. }) {
            let b = &mut st.threads[chosen].wake_budget;
            *b = b.saturating_sub(1);
        }
        st.steps_trace.push(chosen);
        st.prev = Some(chosen);
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Announce `op`, surrender the token, and return once selected
    /// (at which point the caller performs the operation's effect).
    pub(crate) fn transition(self: &Arc<Sched>, me: Tid, op: OpKind) {
        let mut st = lock_st(self);
        st.threads[me].phase = Phase::Announced(op);
        self.schedule(&mut st);
        loop {
            if st.status == Status::Aborted {
                drop(st);
                panic::panic_any(WeaveAbort);
            }
            if st.status == Status::Done || st.active == Some(me) {
                break;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.threads[me].phase = Phase::Running;
    }

    // ---- effects (run by the selected thread, token in hand) ----

    pub(crate) fn lock_effect(&self, m: Oid) {
        let mut st = lock_st(self);
        let held = st.mutexes.entry(m).or_insert(false);
        debug_assert!(!*held, "selected Lock on a held mutex");
        *held = true;
    }

    pub(crate) fn unlock_effect(&self, m: Oid) {
        let mut st = lock_st(self);
        st.mutexes.insert(m, false);
    }

    /// Best-effort release without a scheduling point — used when a
    /// guard is dropped during a panic unwind, where parking for the
    /// scheduler could double-panic.
    pub(crate) fn unlock_quiet(&self, m: Oid) {
        if let Ok(mut st) = self.state.lock() {
            st.mutexes.insert(m, false);
        }
    }

    pub(crate) fn rw_read_effect(&self, l: Oid) {
        let mut st = lock_st(self);
        let e = st.rwlocks.entry(l).or_insert((0, false));
        debug_assert!(!e.1, "selected RwRead with a writer");
        e.0 += 1;
    }

    pub(crate) fn rw_write_effect(&self, l: Oid) {
        let mut st = lock_st(self);
        let e = st.rwlocks.entry(l).or_insert((0, false));
        debug_assert!(e.0 == 0 && !e.1, "selected RwWrite while held");
        e.1 = true;
    }

    pub(crate) fn rw_unlock_read_effect(&self, l: Oid) {
        let mut st = lock_st(self);
        if let Some(e) = st.rwlocks.get_mut(&l) {
            e.0 = e.0.saturating_sub(1);
        }
    }

    pub(crate) fn rw_unlock_write_effect(&self, l: Oid) {
        let mut st = lock_st(self);
        if let Some(e) = st.rwlocks.get_mut(&l) {
            e.1 = false;
        }
    }

    pub(crate) fn rw_unlock_read_quiet(&self, l: Oid) {
        if let Ok(mut st) = self.state.lock() {
            if let Some(e) = st.rwlocks.get_mut(&l) {
                e.0 = e.0.saturating_sub(1);
            }
        }
    }

    pub(crate) fn rw_unlock_write_quiet(&self, l: Oid) {
        if let Ok(mut st) = self.state.lock() {
            if let Some(e) = st.rwlocks.get_mut(&l) {
                e.1 = false;
            }
        }
    }

    pub(crate) fn notify_effect(&self, cv: Oid, all: bool) {
        let mut st = lock_st(self);
        let waiters: Vec<Tid> = {
            let q = st.cv_queues.entry(cv).or_default();
            let n = if all {
                q.len()
            } else {
                usize::from(!q.is_empty())
            };
            q.drain(..n).collect()
        };
        for t in waiters {
            if let Phase::WaitingCv { cv: wcv, m, .. } = st.threads[t].phase {
                st.threads[t].phase = Phase::Announced(OpKind::CvReacquire { cv: wcv, m });
            }
        }
    }

    /// The wait effect + park: release the mutex, join the queue, hand
    /// off the token, and sleep until the reacquire transition is
    /// selected. Returns true if the wait ended by timeout/spurious
    /// wakeup rather than a notify.
    pub(crate) fn cv_wait_park(self: &Arc<Sched>, me: Tid, cv: Oid, m: Oid, timed: bool) -> bool {
        let mut st = lock_st(self);
        st.mutexes.insert(m, false);
        st.threads[me].phase = Phase::WaitingCv { cv, m, timed };
        st.cv_queues.entry(cv).or_default().push_back(me);
        self.schedule(&mut st);
        let mut timed_out = false;
        loop {
            if st.status == Status::Aborted {
                drop(st);
                panic::panic_any(WeaveAbort);
            }
            if st.active == Some(me) {
                match st.threads[me].phase {
                    Phase::WaitingCv { .. } => {
                        // Selected through the virtual timeout: leave
                        // the queue, move to reacquire, pick again.
                        timed_out = true;
                        if let Some(q) = st.cv_queues.get_mut(&cv) {
                            q.retain(|&t| t != me);
                        }
                        st.threads[me].phase = Phase::Announced(OpKind::CvReacquire { cv, m });
                        self.schedule(&mut st);
                        continue;
                    }
                    Phase::Announced(OpKind::CvReacquire { .. }) => {
                        // Selected to reacquire: take the mutex back.
                        st.threads[me].phase = Phase::Running;
                        st.mutexes.insert(m, true);
                        return timed_out;
                    }
                    _ => {
                        st.threads[me].phase = Phase::Running;
                        return timed_out;
                    }
                }
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Spawn effect: register the child and start its OS thread.
    pub(crate) fn spawn_effect(
        self: &Arc<Sched>,
        wrapper: impl FnOnce(Tid) -> std::thread::JoinHandle<()>,
    ) -> Tid {
        let tid = {
            let mut st = lock_st(self);
            self.register(&mut st)
        };
        let handle = wrapper(tid);
        lock_st(self).handles.push(handle);
        tid
    }

    /// Mark the current thread finished and hand off the token.
    fn finish(self: &Arc<Sched>, me: Tid) {
        self.transition(me, OpKind::Finish);
        let mut st = lock_st(self);
        st.threads[me].phase = Phase::Finished;
        self.schedule(&mut st);
    }

    /// Park until this thread's `Begin` is selected. Returns false if
    /// the execution aborted before that happened.
    fn wait_begin(&self, me: Tid) -> bool {
        let mut st = lock_st(self);
        loop {
            if st.status == Status::Aborted {
                return false;
            }
            if st.active == Some(me) {
                st.threads[me].phase = Phase::Running;
                return true;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Record a model-code panic as the execution's failure.
    fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".into());
        let mut st = lock_st(self);
        self.fail(&mut st, FailureKind::Panic, msg);
    }
}

/// The body wrapper every model thread runs: set the thread-local
/// context, wait to be scheduled, run, report, tear down.
pub(crate) fn run_thread<T: Send + 'static>(
    sched: Arc<Sched>,
    tid: Tid,
    body: impl FnOnce() -> T + Send + 'static,
    out: Arc<Mutex<Option<T>>>,
) {
    install_quiet_panic_hook();
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
    if sched.wait_begin(tid) {
        match panic::catch_unwind(AssertUnwindSafe(body)) {
            Ok(v) => {
                if let Ok(mut slot) = out.lock() {
                    *slot = Some(v);
                }
                sched.finish(tid);
            }
            Err(payload) => {
                if !payload.is::<WeaveAbort>() {
                    sched.record_panic(payload.as_ref());
                }
            }
        }
    }
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Suppress panic-hook output for panics on model threads: every such
/// panic is caught and reported through the [`Report`] (printing
/// thousands of expected-counterexample backtraces would bury the
/// signal). Installed once, process-wide; panics on unmanaged threads
/// keep the previous hook's behavior.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

/// Run one execution with the given forced prefix. Returns the trail
/// and how it ended.
fn run_one(
    cfg: &Config,
    prefix: Vec<PrefixEntry>,
    replay: Option<Vec<Tid>>,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Decision>, Outcome) {
    let sched = Arc::new(Sched::new(cfg.clone(), prefix));
    lock_st(&sched).replay_trace = replay;
    let root = {
        let mut st = lock_st(&sched);
        let tid = sched.register(&mut st);
        st.active = Some(tid); // root's Begin is pre-selected
        st.prev = Some(tid);
        tid
    };
    let f2 = Arc::clone(f);
    let s2 = Arc::clone(&sched);
    let out = Arc::new(Mutex::new(None::<()>));
    let o2 = Arc::clone(&out);
    let handle = std::thread::Builder::new()
        .name("weave-root".into())
        .spawn(move || run_thread(s2, root, move || f2(), o2))
        .expect("spawn model root thread");
    // Wait for the execution to settle, then reap every OS thread.
    {
        let mut st = lock_st(&sched);
        while st.status == Status::Running {
            st = sched
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    let _ = handle.join();
    loop {
        let hs: Vec<std::thread::JoinHandle<()>> = std::mem::take(&mut lock_st(&sched).handles);
        if hs.is_empty() {
            break;
        }
        for h in hs {
            let _ = h.join();
        }
    }
    let st = lock_st(&sched);
    let outcome = if let Some(failure) = st.failure.clone() {
        Outcome::Failed(failure)
    } else if st.sleep_blocked {
        Outcome::SleepBlocked
    } else {
        Outcome::Completed
    };
    (st.trail.clone(), outcome)
}

/// Sibling selection during backtracking: the next untried,
/// non-sleeping candidate that respects the preemption bound.
fn next_sibling(d: &Decision, cfg: &Config) -> Option<Tid> {
    for &(t, _, _) in &d.candidates {
        if d.tried.contains(&t) || t == d.chosen || d.sleep_at_entry.contains(&t) {
            continue;
        }
        if let Some(bound) = cfg.preemption_bound {
            let prev_selectable = d
                .prev
                .is_some_and(|p| p != t && d.candidates.iter().any(|&(c, _, _)| c == p));
            if prev_selectable && d.preemptions_before + 1 > bound {
                continue;
            }
        }
        return Some(t);
    }
    None
}

/// Explore every schedule of `f` (up to the config's bounds). The
/// closure runs once per schedule, so it must be freshly constructive:
/// build all shared state inside.
pub fn explore(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut trail: Vec<Decision> = Vec::new();
    let mut schedules = 0u64;
    let mut pruned = 0u64;
    loop {
        let prefix: Vec<PrefixEntry> = trail
            .iter()
            .map(|d| PrefixEntry {
                chosen: d.chosen,
                tried: d
                    .tried
                    .iter()
                    .map(|&t| {
                        let touches = d
                            .candidates
                            .iter()
                            .find(|&&(c, _, _)| c == t)
                            .map(|&(_, _, touches)| touches)
                            .unwrap_or([None, None]);
                        (t, touches)
                    })
                    .collect(),
            })
            .collect();
        let (new_trail, outcome) = run_one(&cfg, prefix, None, &f);
        schedules += 1;
        static DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *DEBUG.get_or_init(|| std::env::var("WEAVE_DEBUG").is_ok()) {
            let kind = match &outcome {
                Outcome::Failed(_) => "FAIL",
                Outcome::SleepBlocked => "PRUNE",
                Outcome::Completed => "DONE",
            };
            let tr: Vec<String> = new_trail
                .iter()
                .map(|d| {
                    format!(
                        "{}<{:?}|tried{:?}|sleep{:?}|cand{:?}",
                        d.chosen,
                        d.candidates.iter().find(|c| c.0 == d.chosen).map(|c| c.1),
                        d.tried,
                        d.sleep_at_entry,
                        d.candidates.iter().map(|c| c.0).collect::<Vec<_>>()
                    )
                })
                .collect();
            eprintln!("exec {} {} trail: {:?}", schedules, kind, tr);
        }
        match outcome {
            Outcome::Failed(failure) => {
                return Report {
                    schedules,
                    pruned,
                    failure: Some(failure),
                    exhausted: false,
                };
            }
            Outcome::SleepBlocked => pruned += 1,
            Outcome::Completed => {}
        }
        if schedules >= cfg.max_schedules {
            return Report {
                schedules,
                pruned,
                failure: None,
                exhausted: false,
            };
        }
        trail = new_trail;
        // Backtrack to the deepest decision with an untried sibling.
        loop {
            let Some(d) = trail.last_mut() else {
                return Report {
                    schedules,
                    pruned,
                    failure: None,
                    exhausted: true,
                };
            };
            if !d.tried.contains(&d.chosen) {
                d.tried.push(d.chosen);
            }
            if let Some(next) = next_sibling(d, &cfg) {
                d.chosen = next;
                break;
            }
            trail.pop();
        }
    }
}

/// Explore with `cfg` and panic (with the schedule token) on the first
/// counterexample — the assert-style entry point for model tests.
pub fn check(cfg: Config, f: impl Fn() + Send + Sync + 'static) -> Report {
    let report = explore(cfg, f);
    if let Some(failure) = &report.failure {
        panic!(
            "weave found a counterexample after {} schedules [{:?}]: {}\n  replay token: {}",
            report.schedules, failure.kind, failure.message, failure.token
        );
    }
    report
}

/// Re-run a single schedule from a counterexample token. Returns the
/// failure it reproduces (None when the schedule completes cleanly —
/// which for a genuine counterexample token means non-determinism in
/// the model, worth knowing).
pub fn replay(cfg: Config, token: &str, f: impl Fn() + Send + Sync + 'static) -> Option<Failure> {
    let trace: Vec<Tid> = token
        .strip_prefix("w:")
        .unwrap_or(token)
        .split('.')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let (_, outcome) = run_one(&cfg, Vec::new(), Some(trace), &f);
    match outcome {
        Outcome::Failed(failure) => Some(failure),
        _ => None,
    }
}
