//! Drop-in `std::sync` shims that trap every operation into the
//! weave scheduler.
//!
//! Each primitive wraps its real std counterpart (which provides the
//! actual storage and mutual exclusion for the briefly-overlapping
//! token handoffs) plus a model-object id. On a thread managed by a
//! weave execution, every operation first announces itself to the
//! scheduler via [`crate::sched::Sched::transition`] and only proceeds
//! when selected; on an unmanaged thread the shims are transparent
//! passthroughs to std, so a whole test suite can be compiled against
//! the facade and only the model tests pay for exploration.
//!
//! API compatibility notes:
//! * `lock()`/`read()`/`write()` return `LockResult` like std, but the
//!   managed path never observes poison — weave catches model-thread
//!   panics before they can poison a real lock (and production code
//!   ported to the facade should recover from poison anyway; see the
//!   `lock_unpoisoned` helpers in consuming crates).
//! * [`Condvar::wait_timeout`] returns our own [`WaitTimeoutResult`]:
//!   std's cannot be constructed outside std. Code using `.0` / the
//!   guard is source-compatible.
//! * [`Arc`] is a re-export of `std::sync::Arc` — reference counting
//!   is not scheduled (plain atomics), and re-exporting keeps types
//!   like `Arc<Program>` identical across the facade boundary.

pub use std::sync::Arc;
pub use std::sync::LockResult;
pub use std::sync::PoisonError;
pub use std::sync::Weak;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::sync::RwLock as StdRwLock;
use std::time::Duration;

use crate::sched::{self, next_oid, Oid, OpKind};

/// A mutex whose lock/unlock are scheduling points under weave.
pub struct Mutex<T: ?Sized> {
    oid: Oid,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            oid: next_oid(),
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let managed = match sched::announce_ctx() {
            Some((sched, me)) => {
                sched.transition(me, OpKind::Lock { m: self.oid });
                sched.lock_effect(self.oid);
                true
            }
            None => false,
        };
        let real = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard {
            lock: self,
            real: Some(real),
            managed,
        })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releases at drop through a scheduling point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    real: Option<StdMutexGuard<'a, T>>,
    managed: bool,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first: after the model release other
        // model threads may be selected and must be able to take it.
        self.real = None;
        if !self.managed {
            return;
        }
        if let Some((sched, me)) = sched::current() {
            if std::thread::panicking() {
                // Unwinding (user assertion failure or a weave abort):
                // no scheduling point — parking inside a drop during a
                // panic risks a double panic. Just fix the model state.
                sched.unlock_quiet(self.lock.oid);
            } else {
                sched.transition(me, OpKind::Unlock { m: self.lock.oid });
                sched.unlock_effect(self.lock.oid);
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of [`Condvar::wait_timeout`]; mirrors std's (which cannot be
/// constructed outside std).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with modeled wait queues: missed notifies and
/// (optionally) spurious wakeups become explorable schedules.
pub struct Condvar {
    oid: Oid,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            oid: next_oid(),
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.wait_inner(guard, None) {
            Ok((g, _)) => Ok(g),
            Err(_) => unreachable!("wait_inner never errors"),
        }
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        self.wait_inner(guard, Some(dur))
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let mutex = guard.lock;
        if let Some((sched, me)) = sched::current() {
            let timed = dur.is_some();
            sched.transition(
                me,
                OpKind::CvWait {
                    cv: self.oid,
                    m: mutex.oid,
                    timed,
                },
            );
            // Release the real lock before parking; the model release
            // and queue insertion happen inside cv_wait_park under the
            // scheduler lock, then the token is handed off.
            guard.real = None;
            guard.managed = false; // model state handled below
            drop(guard);
            let timed_out = sched.cv_wait_park(me, self.oid, mutex.oid, timed);
            // Selected to reacquire: the model lock is ours again; the
            // real lock is uncontended by construction (single token).
            let real = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
            Ok((
                MutexGuard {
                    lock: mutex,
                    real: Some(real),
                    managed: true,
                },
                WaitTimeoutResult { timed_out },
            ))
        } else {
            let real = guard.real.take().expect("guard taken");
            guard.managed = false;
            drop(guard);
            let (real, timed_out) = match dur {
                Some(d) => {
                    let (g, r) = self
                        .inner
                        .wait_timeout(real, d)
                        .unwrap_or_else(PoisonError::into_inner);
                    (g, r.timed_out())
                }
                None => (
                    self.inner
                        .wait(real)
                        .unwrap_or_else(PoisonError::into_inner),
                    false,
                ),
            };
            Ok((
                MutexGuard {
                    lock: mutex,
                    real: Some(real),
                    managed: false,
                },
                WaitTimeoutResult { timed_out },
            ))
        }
    }

    pub fn notify_one(&self) {
        if let Some((sched, me)) = sched::announce_ctx() {
            sched.transition(
                me,
                OpKind::CvNotify {
                    cv: self.oid,
                    all: false,
                },
            );
            sched.notify_effect(self.oid, false);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some((sched, me)) = sched::announce_ctx() {
            sched.transition(
                me,
                OpKind::CvNotify {
                    cv: self.oid,
                    all: true,
                },
            );
            sched.notify_effect(self.oid, true);
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// A reader-writer lock whose acquires/releases are scheduling points.
pub struct RwLock<T: ?Sized> {
    oid: Oid,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            oid: next_oid(),
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let managed = match sched::announce_ctx() {
            Some((sched, me)) => {
                sched.transition(me, OpKind::RwRead { l: self.oid });
                sched.rw_read_effect(self.oid);
                true
            }
            None => false,
        };
        let real = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockReadGuard {
            lock: self,
            real: Some(real),
            managed,
        })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let managed = match sched::announce_ctx() {
            Some((sched, me)) => {
                sched.transition(me, OpKind::RwWrite { l: self.oid });
                sched.rw_write_effect(self.oid);
                true
            }
            None => false,
        };
        let real = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Ok(RwLockWriteGuard {
            lock: self,
            real: Some(real),
            managed,
        })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    real: Option<std::sync::RwLockReadGuard<'a, T>>,
    managed: bool,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.real = None;
        if !self.managed {
            return;
        }
        if let Some((sched, me)) = sched::current() {
            if std::thread::panicking() {
                sched.rw_unlock_read_quiet(self.lock.oid);
            } else {
                sched.transition(me, OpKind::RwUnlockRead { l: self.lock.oid });
                sched.rw_unlock_read_effect(self.lock.oid);
            }
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    real: Option<std::sync::RwLockWriteGuard<'a, T>>,
    managed: bool,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.real.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.real = None;
        if !self.managed {
            return;
        }
        if let Some((sched, me)) = sched::current() {
            if std::thread::panicking() {
                sched.rw_unlock_write_quiet(self.lock.oid);
            } else {
                sched.transition(me, OpKind::RwUnlockWrite { l: self.lock.oid });
                sched.rw_unlock_write_effect(self.lock.oid);
            }
        }
    }
}

/// Scheduled atomics: every load/store/rmw is a scheduling point, so
/// racing increments and flag checks become explorable interleavings.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::sched::{self, next_oid, Oid, OpKind};

    macro_rules! weave_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Scheduled counterpart of the std atomic of the same name.
            pub struct $name {
                oid: Oid,
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub fn new(value: $ty) -> $name {
                    $name {
                        oid: next_oid(),
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                fn point(&self, write: bool) {
                    if let Some((sched, me)) = sched::announce_ctx() {
                        sched.transition(me, OpKind::Atomic { o: self.oid, write });
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    self.point(false);
                    self.inner.load(order)
                }

                pub fn store(&self, value: $ty, order: Ordering) {
                    self.point(true);
                    self.inner.store(value, order);
                }

                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.swap(value, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.point(true);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> $name {
                    $name::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    macro_rules! weave_atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            weave_atomic!($name, $std, $ty);

            impl $name {
                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_add(value, order)
                }

                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    self.point(true);
                    self.inner.fetch_sub(value, order)
                }
            }
        };
    }

    weave_atomic!(AtomicBool, AtomicBool, bool);
    weave_atomic_int!(AtomicU32, AtomicU32, u32);
    weave_atomic_int!(AtomicU64, AtomicU64, u64);
    weave_atomic_int!(AtomicUsize, AtomicUsize, usize);
}
