//! Scheduled thread spawning for model tests.
//!
//! [`spawn`] inside a weave execution creates a *model* thread: a real
//! OS thread serialized by the scheduler token like every other. On an
//! unmanaged thread it falls through to `std::thread::spawn`, so code
//! compiled against the facade still works outside `explore`.
//!
//! Model tests should use `spawn` + [`JoinHandle::join`] rather than
//! `std::thread::scope` — scoped threads cannot be trapped into the
//! scheduler, so shared state goes in `Arc`s.

use std::sync::{Arc, Mutex};

use crate::sched::{self, run_thread, OpKind, Sched, Tid};

/// Handle to a model (or fallback std) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Model {
        sched: Arc<Sched>,
        tid: Tid,
        out: Arc<Mutex<Option<T>>>,
    },
    Std(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and take its return value.
    ///
    /// Under weave, a join is a scheduling point that only becomes
    /// selectable once the target thread's `Finish` has executed. A
    /// panic on the target thread never reaches the joiner: it aborts
    /// the whole execution and is reported as the schedule's
    /// counterexample.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { sched, tid, out } => {
                let me = sched::current()
                    .map(|(_, me)| me)
                    .expect("model JoinHandle joined from unmanaged thread");
                sched.transition(me, OpKind::Join { target: tid });
                let value = out
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined thread produced no value");
                Ok(value)
            }
            Inner::Std(handle) => handle.join(),
        }
    }
}

/// Spawn a thread. Inside a weave execution the spawn itself is a
/// scheduling point and the child starts life parked, waiting for its
/// `Begin` transition to be selected.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match sched::announce_ctx() {
        Some((sched, me)) => {
            sched.transition(me, OpKind::Spawn);
            let out = Arc::new(Mutex::new(None::<T>));
            let out2 = Arc::clone(&out);
            let sched2 = Arc::clone(&sched);
            let tid = sched.spawn_effect(move |tid| {
                std::thread::Builder::new()
                    .name(format!("weave-{tid}"))
                    .spawn(move || run_thread(sched2, tid, f, out2))
                    .expect("spawn model thread")
            });
            JoinHandle {
                inner: Inner::Model { sched, tid, out },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        },
    }
}

/// A pure scheduling point: under weave, gives the explorer a chance
/// to switch threads; otherwise `std::thread::yield_now`.
pub fn yield_now() {
    match sched::announce_ctx() {
        Some((sched, me)) => sched.transition(me, OpKind::Yield),
        None => std::thread::yield_now(),
    }
}
