#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Micro-benchmarks: the per-packet costs under everything else —
//! packet codec, Geneva engine application, censor DPI, and a whole
//! end-to-end simulated trial.

use appproto::AppProtocol;
use censor::{Country, Gfw};
use criterion::{criterion_group, criterion_main, Criterion};
use geneva::{library, Engine};
use harness::{run_trial, TrialConfig};
use netsim::{Direction, Middlebox};
use packet::{Packet, TcpFlags};
use std::hint::black_box;

fn packet_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_codec");
    let pkt = {
        let mut p = Packet::tcp(
            [10, 0, 0, 1],
            40000,
            [93, 184, 216, 34],
            80,
            TcpFlags::PSH_ACK,
            1000,
            2000,
            appproto::http::HttpClientApp::for_keyword_query("ultrasurf").request_bytes(),
        );
        p.tcp_header_mut().unwrap().options = vec![
            packet::TcpOption::Mss(1460),
            packet::TcpOption::SackPermitted,
            packet::TcpOption::WindowScale(7),
        ];
        p.finalize();
        p
    };
    let wire = pkt.serialize();
    group.bench_function("serialize", |b| b.iter(|| black_box(pkt.serialize().len())));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(Packet::parse(&wire).unwrap().payload.len()))
    });
    group.bench_function("checksum_verify", |b| {
        b.iter(|| black_box(pkt.checksums_ok()))
    });
    group.finish();
}

fn geneva_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("geneva_engine");
    let syn_ack = {
        let mut p = Packet::tcp(
            [93, 184, 216, 34],
            80,
            [10, 0, 0, 1],
            40000,
            TcpFlags::SYN_ACK,
            9000,
            1001,
            vec![],
        );
        p.finalize();
        p
    };
    for named in [
        library::STRATEGY_1,
        library::STRATEGY_6,
        library::STRATEGY_8,
    ] {
        group.bench_function(format!("apply_strategy_{}", named.id), |b| {
            let mut engine = Engine::new(named.strategy(), 7);
            b.iter(|| black_box(engine.apply_outbound(&syn_ack).len()))
        });
    }
    group.bench_function("parse_strategy", |b| {
        b.iter(|| {
            black_box(
                geneva::parse_strategy(library::STRATEGY_6.text)
                    .unwrap()
                    .size(),
            )
        })
    });
    group.finish();
}

fn censor_dpi(c: &mut Criterion) {
    let mut group = c.benchmark_group("censor_dpi");
    let request = appproto::http::HttpClientApp::for_keyword_query("ultrasurf").request_bytes();
    group.bench_function("http_matcher", |b| {
        b.iter(|| {
            black_box(appproto::forbidden_in(
                AppProtocol::Http,
                &request,
                "ultrasurf",
            ))
        })
    });
    let hello = appproto::tls::client_hello("www.wikipedia.org", 1);
    group.bench_function("sni_matcher", |b| {
        b.iter(|| {
            black_box(appproto::forbidden_in(
                AppProtocol::Https,
                &hello,
                "wikipedia",
            ))
        })
    });
    group.bench_function("gfw_process_packet", |b| {
        let mut gfw = Gfw::standard(7);
        let mut seq = 0u32;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            let mut syn = Packet::tcp(
                [10, 0, 0, 1],
                (seq % 20000) as u16 + 2000,
                [93, 184, 216, 34],
                80,
                TcpFlags::SYN,
                seq,
                0,
                vec![],
            );
            syn.finalize();
            black_box(gfw.process(&syn, Direction::ToServer, 0).forward.is_some())
        })
    });
    group.finish();
}

fn end_to_end_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.bench_function("trial_china_http_strategy1", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = TrialConfig::new(
                Country::China,
                AppProtocol::Http,
                library::STRATEGY_1.strategy(),
                seed,
            );
            black_box(run_trial(&cfg).evaded())
        })
    });
    group.bench_function("trial_no_censor_http", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let cfg = TrialConfig::private_network(
                AppProtocol::Http,
                geneva::Strategy::identity(),
                endpoint::OsProfile::linux(),
                seed,
            );
            black_box(run_trial(&cfg).evaded())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    packet_codec,
    geneva_engine,
    censor_dpi,
    end_to_end_trial
);
criterion_main!(benches);
