#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Bench target for the **§4.1 methodology**: the genetic algorithm's
//! per-generation cost and a short end-to-end evolution run.

use appproto::AppProtocol;
use bench::experiment_criterion;
use censor::Country;
use criterion::{criterion_group, criterion_main, Criterion};
use evolve::{evolve, FitnessCache, GaConfig, Genome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fitness_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution_fitness");
    for (name, country) in [
        ("gfw_http", Country::China),
        ("kazakhstan_http", Country::Kazakhstan),
    ] {
        group.bench_function(name, |b| {
            let genome = Genome {
                strategy: geneva::library::STRATEGY_1.strategy(),
            };
            let mut counter = 0u64;
            b.iter(|| {
                // A fresh cache each time so the evaluation is real.
                counter += 1;
                let mut cache = FitnessCache::new(country, AppProtocol::Http, 8, counter);
                black_box(cache.evaluate(&genome).fitness)
            })
        });
    }
    group.finish();
}

fn short_evolution(c: &mut Criterion) {
    c.bench_function("evolution_short_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut config = GaConfig::new(Country::Kazakhstan, AppProtocol::Http, seed);
            config.population = 24;
            config.generations = 6;
            config.trials_per_eval = 4;
            black_box(evolve(&config).best_eval.fitness)
        })
    });
}

fn genome_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("evolution_operators");
    group.bench_function("random_genome", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(Genome::random(&mut rng).size()))
    });
    group.bench_function("mutate", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut genome = Genome::random(&mut rng);
        b.iter(|| {
            genome.mutate(&mut rng);
            black_box(genome.size())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = fitness_eval, short_evolution, genome_operators
}
criterion_main!(benches);
