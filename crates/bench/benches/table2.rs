#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Bench target for **Table 2**: regenerate each country's block of
//! strategy-success rates. The printed numbers (via `--nocapture`-like
//! stderr) are secondary here; the bench measures the cost of the
//! table itself, and `examples/table2.rs` prints the full comparison.

use appproto::AppProtocol;
use bench::{experiment_criterion, BENCH_TRIALS};
use censor::Country;
use criterion::{criterion_group, criterion_main, Criterion};
use geneva::library;
use harness::{success_rate, TrialConfig};
use std::hint::black_box;

fn table2_country(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    for country in Country::all() {
        group.bench_function(country.name(), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for proto in country.censored_protocols() {
                    for id in [0u32, 1, 8] {
                        let strategy = library::by_id(id).expect("id");
                        let cfg = TrialConfig::new(country, *proto, strategy, 0);
                        acc += success_rate(&cfg, BENCH_TRIALS, 99).successes;
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn table2_headline_cells(c: &mut Criterion) {
    // The cells the paper calls out in prose, measured individually.
    let cells = [
        ("S1-china-http", Country::China, AppProtocol::Http, 1u32),
        ("S5-china-ftp", Country::China, AppProtocol::Ftp, 5),
        ("S8-china-smtp", Country::China, AppProtocol::Smtp, 8),
        ("S8-india-http", Country::India, AppProtocol::Http, 8),
        (
            "S9-kazakhstan-http",
            Country::Kazakhstan,
            AppProtocol::Http,
            9,
        ),
    ];
    let mut group = c.benchmark_group("table2_cells");
    for (name, country, proto, id) in cells {
        group.bench_function(name, |b| {
            b.iter(|| {
                let cfg = TrialConfig::new(country, proto, library::by_id(id).unwrap(), 0);
                black_box(success_rate(&cfg, BENCH_TRIALS, 7).successes)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = table2_country, table2_headline_cells
}
criterion_main!(benches);
