#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `ablation_resync` — the paper's revised three-rule
//!   resynchronization model vs prior work's single-rule model (Wang
//!   et al. 2017): Strategies 1/6/7 only work under the revised model.
//! * `ablation_multibox` — five per-protocol boxes vs one shared box:
//!   Table 2's per-protocol spread collapses under a single stack.
//! * `ablation_insertion` — §7's corrupted-checksum insertion-packet
//!   fix: Strategy 9 with and without the fix, Linux vs Windows.

use appproto::AppProtocol;
use bench::{experiment_criterion, BENCH_TRIALS};
use censor::Country;
use criterion::{criterion_group, criterion_main, Criterion};
use endpoint::OsProfile;
use geneva::library;
use harness::{run_trial, success_rate, CensorVariant, TrialConfig};
use std::hint::black_box;

fn ablation_resync(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_resync");
    for (name, variant) in [
        ("revised_model", CensorVariant::Standard),
        ("old_single_rule_model", CensorVariant::GfwOldResyncModel),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0u32;
                for id in [1u32, 6, 7] {
                    let mut cfg = TrialConfig::new(
                        Country::China,
                        AppProtocol::Http,
                        library::by_id(id).unwrap(),
                        0,
                    );
                    cfg.censor_variant = variant;
                    total += success_rate(&cfg, BENCH_TRIALS, 5).successes;
                }
                // Under the old model these strategies collapse toward
                // the baseline; under the revised model they sit ~50 %.
                black_box(total)
            })
        });
    }
    group.finish();
}

fn ablation_multibox(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_multibox");
    for (name, variant) in [
        ("five_boxes", CensorVariant::Standard),
        ("single_box", CensorVariant::GfwSingleBox),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut spread_proxy = 0i64;
                for proto in AppProtocol::all() {
                    let mut cfg =
                        TrialConfig::new(Country::China, proto, library::STRATEGY_5.strategy(), 0);
                    cfg.censor_variant = variant;
                    let successes = success_rate(&cfg, BENCH_TRIALS, 5).successes as i64;
                    spread_proxy += successes;
                }
                black_box(spread_proxy)
            })
        });
    }
    group.finish();
}

fn ablation_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_insertion");
    let cases = [
        (
            "s9_plain_linux",
            library::STRATEGY_9.text,
            OsProfile::linux(),
        ),
        (
            "s9_plain_windows",
            library::STRATEGY_9.text,
            OsProfile::windows(),
        ),
        (
            "s9_fixed_windows",
            library::client_compat_fix(9).unwrap().text,
            OsProfile::windows(),
        ),
    ];
    for (name, text, os) in cases {
        group.bench_function(name, |b| {
            let strategy = geneva::parse_strategy(text).unwrap();
            b.iter(|| {
                let mut ok = 0u32;
                for seed in 0..BENCH_TRIALS as u64 {
                    let cfg =
                        TrialConfig::private_network(AppProtocol::Http, strategy.clone(), os, seed);
                    ok += u32::from(run_trial(&cfg).evaded());
                }
                black_box(ok)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = ablation_resync, ablation_multibox, ablation_insertion
}
criterion_main!(benches);
