#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Bench targets for **Figure 1** (China waterfalls), **Figure 2**
//! (Kazakhstan waterfalls), and **Figure 3** (multi-box evidence +
//! TTL-probe localization).

use bench::{experiment_criterion, BENCH_TRIALS};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::{figure1, figure2, multibox, ttl_probe};
use std::hint::black_box;

fn figure1_bench(c: &mut Criterion) {
    c.bench_function("figure1_waterfalls_china", |b| {
        b.iter(|| black_box(figure1(7).len()))
    });
}

fn figure2_bench(c: &mut Criterion) {
    c.bench_function("figure2_waterfalls_kazakhstan", |b| {
        b.iter(|| black_box(figure2(7).len()))
    });
}

fn figure3_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.bench_function("multibox_vs_singlebox", |b| {
        b.iter(|| black_box(multibox(BENCH_TRIALS, 0x600D).rows.len()))
    });
    group.bench_function("ttl_probe_localization", |b| {
        b.iter(|| {
            let report = ttl_probe(5);
            assert!(report.all_collocated());
            black_box(report.hops.len())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = figure1_bench, figure2_bench, figure3_bench
}
criterion_main!(benches);
