#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Bench targets for the section-level experiments: **§3** (client-side
//! strategies do not generalize), the **§5 follow-ups**, and **§7**
//! (client compatibility).

use bench::{experiment_criterion, BENCH_TRIALS};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::experiments::{
    client_compat, dns_race, followups, network_compat, overhead, residual, robustness, section3,
};
use std::hint::black_box;

fn section3_bench(c: &mut Criterion) {
    c.bench_function("section3_generalization", |b| {
        b.iter(|| {
            let report = section3(BENCH_TRIALS, 0x3333);
            black_box(report.server_side_analogs.len())
        })
    });
}

fn followups_bench(c: &mut Criterion) {
    c.bench_function("section5_followups", |b| {
        b.iter(|| {
            let report = followups(BENCH_TRIALS, 0x5555);
            black_box(report.s9_load_counts.len())
        })
    });
}

fn section7_bench(c: &mut Criterion) {
    c.bench_function("section7_client_compat", |b| {
        b.iter(|| {
            let report = client_compat(2024);
            black_box(report.cells.len())
        })
    });
    c.bench_function("section7_network_compat", |b| {
        b.iter(|| black_box(network_compat(4242).cells.len()))
    });
}

fn extras_bench(c: &mut Criterion) {
    c.bench_function("section4_residual_censorship", |b| {
        b.iter(|| black_box(residual(17).outcomes.len()))
    });
    c.bench_function("section2_dns_udp_race", |b| {
        b.iter(|| black_box(dns_race(5).udp_poisoned))
    });
    c.bench_function("robustness_loss_sweep", |b| {
        b.iter(|| black_box(robustness(8, 0xB0B).rows.len()))
    });
    c.bench_function("section8_overhead", |b| {
        b.iter(|| black_box(overhead(4).max_extra_payloads()))
    });
}

criterion_group! {
    name = benches;
    config = experiment_criterion();
    targets = section3_bench, followups_bench, section7_bench, extras_bench
}
criterion_main!(benches);
