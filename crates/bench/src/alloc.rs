//! A counting global allocator for the `cay bench` hot-path numbers.
//!
//! Enabled by the `count-allocs` feature and installed by the `cay`
//! binary: every allocation and reallocation anywhere in the process
//! bumps a relaxed atomic, so a bench region reads the counter before
//! and after its loop and reports allocations per packet (or per
//! trial). The counter is process-global — measured regions must
//! subtract a baseline taken immediately before the loop, and numbers
//! from multi-threaded regions include every thread's allocations.
//!
//! Deallocation is deliberately not counted: the hot-path budget is
//! about how often the forward path *enters* the allocator, and a
//! `dealloc` always pairs with a counted `alloc`/`realloc`.

// `GlobalAlloc` cannot be implemented without `unsafe`; this
// implementation only forwards to `System` with the caller's own
// contract, adding a relaxed counter bump.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The system allocator, with an allocation-call counter in front.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded verbatim under the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Allocation and reallocation calls since process start.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}
