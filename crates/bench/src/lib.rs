//! Shared configuration for the benchmark targets.
//!
//! Every table and figure of the paper has a bench target
//! regenerating it (see `benches/`):
//!
//! | target | reproduces |
//! |---|---|
//! | `table2` | Table 2 (one group per country) |
//! | `figures` | Figures 1 & 2 (waterfalls), Figure 3 (multi-box + TTL probes) |
//! | `sections` | §3 (generalization), §5 follow-ups, §7 (client compat) |
//! | `evolution` | the §4.1 GA methodology |
//! | `ablations` | DESIGN.md's called-out design choices |
//! | `micro` | packet codec, engine, censor DPI, end-to-end trial |
//!
//! Benches run the same experiment drivers as the examples and tests,
//! with reduced trial counts so `cargo bench` completes in minutes;
//! crank the constants for tighter confidence intervals.

#[cfg(feature = "count-allocs")]
pub mod alloc;

/// Trials per cell used by the table/figure benches.
pub const BENCH_TRIALS: u32 = 25;

/// Allocation calls observed so far, when the binary was built with
/// the `count-allocs` feature (and its counting global allocator is
/// installed); `None` otherwise. Bench code subtracts two readings to
/// report allocations per packet without caring about the feature.
pub fn alloc_count() -> Option<u64> {
    #[cfg(feature = "count-allocs")]
    {
        Some(alloc::allocation_count())
    }
    #[cfg(not(feature = "count-allocs"))]
    {
        None
    }
}

/// A Criterion configured for the heavy experiment drivers.
pub fn experiment_criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3))
}
