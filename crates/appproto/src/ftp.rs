//! FTP control channel (RFC 959 subset): login + `RETR` of a file with
//! a sensitive name.
//!
//! The paper's FTP workload (§4.2): "we sign into FTP servers we
//! control and issue requests for files with sensitive keywords as
//! names (e.g., ultrasurf)". The censorship trigger is the `RETR`
//! argument on the control channel. FTP is server-greets-first and
//! interactive, which exercises the `pending_output` plumbing.

use endpoint::{ClientApp, ServerApp, ServerSession};

/// Marker line the server sends when the transfer "completes"; the
/// client requires it for success.
pub const TRANSFER_OK: &str = "226 Transfer complete (genuine-origin-ftp).";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FtpClientState {
    WaitBanner,
    WaitUserOk,
    WaitPassOk,
    WaitRetrOk,
    Done,
}

/// FTP client session: anonymous login, then `RETR <file>`.
#[derive(Debug, Clone)]
pub struct FtpClientApp {
    /// The sensitive filename to retrieve.
    pub filename: String,
    state: FtpClientState,
    buffer: String,
    consumed: usize,
    queued: Vec<Vec<u8>>,
}

impl FtpClientApp {
    /// New session retrieving `filename`.
    pub fn new(filename: &str) -> Self {
        FtpClientApp {
            filename: filename.to_string(),
            state: FtpClientState::WaitBanner,
            buffer: String::new(),
            consumed: 0,
            queued: Vec::new(),
        }
    }

    fn advance(&mut self) {
        // Process complete lines we haven't consumed yet.
        while let Some(nl) = self.buffer[self.consumed..].find("\r\n") {
            let line = self.buffer[self.consumed..self.consumed + nl].to_string();
            self.consumed += nl + 2;
            let code = line.get(0..3).unwrap_or("");
            match (self.state, code) {
                (FtpClientState::WaitBanner, "220") => {
                    self.queued.push(b"USER anonymous\r\n".to_vec());
                    self.state = FtpClientState::WaitUserOk;
                }
                (FtpClientState::WaitUserOk, "331") => {
                    self.queued.push(b"PASS guest@\r\n".to_vec());
                    self.state = FtpClientState::WaitPassOk;
                }
                (FtpClientState::WaitPassOk, "230") => {
                    self.queued
                        .push(format!("RETR {}\r\n", self.filename).into_bytes());
                    self.state = FtpClientState::WaitRetrOk;
                }
                (FtpClientState::WaitRetrOk, "226") if line.contains("genuine-origin-ftp") => {
                    self.state = FtpClientState::Done;
                }
                _ => {} // intermediate replies (150 etc.) or noise
            }
        }
    }
}

impl ClientApp for FtpClientApp {
    fn request(&mut self, _attempt: u32) -> Vec<u8> {
        Vec::new() // server speaks first
    }
    fn pending_output(&mut self) -> Option<Vec<u8>> {
        if self.queued.is_empty() {
            None
        } else {
            Some(self.queued.remove(0))
        }
    }
    fn on_data(&mut self, data: &[u8]) {
        self.buffer.push_str(&String::from_utf8_lossy(data));
        self.advance();
    }
    fn satisfied(&self) -> bool {
        self.state == FtpClientState::Done
    }
    fn reset_for_retry(&mut self) {
        *self = FtpClientApp::new(&self.filename);
    }
}

/// FTP server: banner, login acceptance, and a canned transfer.
pub struct FtpServerApp;

impl ServerApp for FtpServerApp {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(FtpServerSession { consumed: 0 })
    }
}

struct FtpServerSession {
    consumed: usize,
}

impl ServerSession for FtpServerSession {
    fn greeting(&mut self) -> Vec<u8> {
        b"220 ProFTPD Server ready.\r\n".to_vec()
    }

    fn on_data(&mut self, stream: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(stream).into_owned();
        let mut reply = Vec::new();
        while let Some(nl) = text[self.consumed..].find("\r\n") {
            let line = &text[self.consumed..self.consumed + nl];
            self.consumed += nl + 2;
            let response: String = if line.starts_with("USER") {
                "331 Password required.\r\n".into()
            } else if line.starts_with("PASS") {
                "230 User logged in.\r\n".into()
            } else if let Some(file) = line.strip_prefix("RETR ") {
                format!("150 Opening data connection for {file}.\r\n{TRANSFER_OK}\r\n")
            } else if line.starts_with("QUIT") {
                "221 Goodbye.\r\n".into()
            } else {
                "502 Command not implemented.\r\n".into()
            };
            reply.extend_from_slice(response.as_bytes());
        }
        reply
    }
}

/// DPI: the filename of a complete `RETR` command in the stream.
pub fn parse_retr_filename(stream: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(stream).ok()?;
    // Only complete (CRLF-terminated) lines count: a command split
    // across segments is invisible to non-reassembling DPI.
    let mut lines: Vec<&str> = text.split("\r\n").collect();
    lines.pop(); // the trailing piece has no CRLF yet
    for line in lines {
        if let Some(arg) = line.strip_prefix("RETR ") {
            return Some(arg.trim().to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    /// Drive client and server sessions against each other in memory.
    fn run_session(filename: &str) -> (FtpClientApp, Vec<u8>) {
        let mut client = FtpClientApp::new(filename);
        let mut server = FtpServerApp.new_session();
        let mut client_stream: Vec<u8> = Vec::new(); // what the server saw

        let _ = client.request(0);
        client.on_data(&server.greeting());
        for _ in 0..10 {
            while let Some(bytes) = client.pending_output() {
                client_stream.extend_from_slice(&bytes);
            }
            let reply = server.on_data(&client_stream);
            if reply.is_empty() {
                break;
            }
            client.on_data(&reply);
        }
        (client, client_stream)
    }

    #[test]
    fn full_login_and_retr_succeeds() {
        let (client, stream) = run_session("ultrasurf");
        assert!(client.satisfied());
        assert_eq!(parse_retr_filename(&stream).as_deref(), Some("ultrasurf"));
    }

    #[test]
    fn dpi_sees_nothing_before_retr() {
        let text = b"USER anonymous\r\nPASS guest@\r\n";
        assert_eq!(parse_retr_filename(text), None);
    }

    #[test]
    fn partial_retr_line_not_matched() {
        assert_eq!(
            parse_retr_filename(b"RETR ultra"),
            None,
            "no CRLF yet? still extracted?"
        );
    }

    #[test]
    fn client_state_machine_ignores_noise() {
        let mut client = FtpClientApp::new("f");
        client.on_data(b"999 weird\r\n220 hi\r\n");
        assert_eq!(client.pending_output().unwrap(), b"USER anonymous\r\n");
        client.on_data(b"331 pw?\r\n");
        assert_eq!(client.pending_output().unwrap(), b"PASS guest@\r\n");
        assert_eq!(client.pending_output(), None);
    }

    #[test]
    fn reset_for_retry_restarts_cleanly() {
        let (mut client, _) = run_session("x");
        assert!(client.satisfied());
        client.reset_for_retry();
        assert!(!client.satisfied());
        client.on_data(b"220 again\r\n");
        assert_eq!(client.pending_output().unwrap(), b"USER anonymous\r\n");
    }
}
