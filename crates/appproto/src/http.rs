//! HTTP/1.1: client requests, server responses, block pages, and the
//! DPI request parser.
//!
//! Two request shapes trigger censorship in the paper (§4.2):
//! * **China**: a censored keyword in the URL query
//!   (`GET /?q=ultrasurf`);
//! * **India / Iran / Kazakhstan**: a blacklisted domain in the
//!   `Host:` header.

use endpoint::{ClientApp, ServerApp, ServerSession};

/// Marker embedded in legitimate server responses; the client checks
/// for it to decide the paper's success criterion ("the client receives
/// the correct, unaltered data").
pub const CONTENT_MARKER: &str = "genuine-origin-content";

/// Marker embedded in censor block pages (Airtel, Kazakhstan).
pub const BLOCK_MARKER: &str = "this-page-is-blocked-by-order";

/// A complete 200 response carrying [`CONTENT_MARKER`].
pub fn ok_response() -> Vec<u8> {
    let body = format!("<html><body>{CONTENT_MARKER}</body></html>");
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// The block page censors inject (styled after Airtel's HTTP 200
/// injection, §5.2).
pub fn block_page() -> Vec<u8> {
    let body = format!("<html><body>{BLOCK_MARKER}</body></html>");
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// HTTP client session: one GET, expects [`ok_response`].
#[derive(Debug, Clone)]
pub struct HttpClientApp {
    /// Request path (may embed the censored keyword as a query).
    pub path: String,
    /// `Host:` header value (the blacklisted site for India/Iran/KZ).
    pub host: String,
    got: Vec<u8>,
}

impl HttpClientApp {
    /// China-style: keyword in the URL query, innocuous host.
    pub fn for_keyword_query(keyword: &str) -> Self {
        HttpClientApp {
            path: format!("/?q={keyword}"),
            host: "example.com".to_string(),
            got: Vec::new(),
        }
    }

    /// India/Iran/Kazakhstan-style: blacklisted domain in `Host:`.
    pub fn for_blocked_host(host: &str) -> Self {
        HttpClientApp {
            path: "/".to_string(),
            host: host.to_string(),
            got: Vec::new(),
        }
    }

    /// The literal request bytes.
    pub fn request_bytes(&self) -> Vec<u8> {
        format!(
            "GET {} HTTP/1.1\r\nHost: {}\r\nUser-Agent: curl/7.58.0\r\nAccept: */*\r\n\r\n",
            self.path, self.host
        )
        .into_bytes()
    }
}

impl ClientApp for HttpClientApp {
    fn request(&mut self, _attempt: u32) -> Vec<u8> {
        self.request_bytes()
    }
    fn on_data(&mut self, data: &[u8]) {
        self.got.extend_from_slice(data);
    }
    fn satisfied(&self) -> bool {
        contains(&self.got, CONTENT_MARKER.as_bytes())
    }
    fn poisoned(&self) -> bool {
        contains(&self.got, BLOCK_MARKER.as_bytes())
    }
}

/// HTTP origin server: 200 + marker body once the request is complete.
pub struct HttpServerApp;

impl ServerApp for HttpServerApp {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(HttpServerSession { responded: false })
    }
}

struct HttpServerSession {
    responded: bool,
}

impl ServerSession for HttpServerSession {
    fn on_data(&mut self, stream: &[u8]) -> Vec<u8> {
        if self.responded {
            return Vec::new();
        }
        if parse_request(stream).is_some() {
            self.responded = true;
            ok_response()
        } else {
            Vec::new()
        }
    }
}

/// A parsed HTTP request (the parts DPI cares about).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`).
    pub method: String,
    /// Request target (path + query).
    pub target: String,
    /// `Host:` header value, if present.
    pub host: Option<String>,
}

/// Parse a *complete* request head from the front of `stream`
/// (requires the terminating blank line, like real DPI reassembly and
/// like a real server). Returns `None` while incomplete or non-HTTP.
pub fn parse_request(stream: &[u8]) -> Option<HttpRequest> {
    let head_end = find(stream, b"\r\n\r\n")?;
    let head = std::str::from_utf8(&stream[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    let version = parts.next()?;
    if !version.starts_with("HTTP/") || !matches!(method.as_str(), "GET" | "POST" | "HEAD") {
        return None;
    }
    let mut host = None;
    for line in lines {
        if let Some(value) = line.strip_prefix("Host:") {
            host = Some(value.trim().to_string());
        }
    }
    Some(HttpRequest {
        method,
        target,
        host,
    })
}

/// DPI: does this (single packet or reassembled) buffer contain a
/// complete HTTP request for the forbidden `keyword` — in the URL or
/// the `Host:` header?
pub fn request_is_forbidden(stream: &[u8], keyword: &str) -> bool {
    match parse_request(stream) {
        Some(req) => {
            req.target.contains(keyword)
                || req
                    .host
                    .as_deref()
                    .map(|h| h.contains(keyword))
                    .unwrap_or(false)
        }
        None => false,
    }
}

pub(crate) fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

pub fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    find(haystack, needle).is_some()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn request_round_trips_through_parser() {
        let mut app = HttpClientApp::for_keyword_query("ultrasurf");
        let req = app.request(0);
        let parsed = parse_request(&req).unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.target, "/?q=ultrasurf");
        assert_eq!(parsed.host.as_deref(), Some("example.com"));
    }

    #[test]
    fn forbidden_detection_by_query_and_host() {
        let q = HttpClientApp::for_keyword_query("ultrasurf").request_bytes();
        assert!(request_is_forbidden(&q, "ultrasurf"));
        assert!(!request_is_forbidden(&q, "youtube.com"));

        let h = HttpClientApp::for_blocked_host("youtube.com").request_bytes();
        assert!(request_is_forbidden(&h, "youtube.com"));
        assert!(!request_is_forbidden(&h, "ultrasurf"));
    }

    #[test]
    fn partial_request_is_not_matched() {
        let req = HttpClientApp::for_keyword_query("ultrasurf").request_bytes();
        // Any prefix missing the final CRLFCRLF must not match — this
        // is why per-packet (non-reassembling) DPI loses to Strategy 8.
        for cut in 1..req.len() - 1 {
            assert!(
                !request_is_forbidden(&req[..cut], "ultrasurf"),
                "cut at {cut} matched"
            );
        }
        // And a middle fragment is not even a request.
        assert!(parse_request(&req[10..]).is_none());
    }

    #[test]
    fn client_satisfaction_and_poisoning() {
        let mut app = HttpClientApp::for_keyword_query("x");
        assert!(!app.satisfied());
        app.on_data(&ok_response());
        assert!(app.satisfied());
        assert!(!app.poisoned());

        let mut poisoned = HttpClientApp::for_keyword_query("x");
        poisoned.on_data(&block_page());
        assert!(poisoned.poisoned());
        assert!(!poisoned.satisfied());
    }

    #[test]
    fn server_session_responds_once() {
        let mut s = HttpServerApp.new_session();
        let req = HttpClientApp::for_keyword_query("x").request_bytes();
        assert!(s.on_data(&req[..5]).is_empty());
        let resp = s.on_data(&req);
        assert!(contains(&resp, CONTENT_MARKER.as_bytes()));
        assert!(s.on_data(&req).is_empty(), "no double response");
    }

    #[test]
    fn non_http_bytes_rejected() {
        assert!(parse_request(b"\x16\x03\x01\x02\x00garbage\r\n\r\n").is_none());
        assert!(parse_request(b"NOTAVERB / HTTP/1.1\r\n\r\n").is_none());
    }
}
