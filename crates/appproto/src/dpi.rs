//! Protocol dispatch for censor-side deep packet inspection.
//!
//! A censor model hands this module a byte buffer — either a single
//! packet payload (non-reassembling boxes) or an assembled stream
//! (reassembling boxes) — and asks whether it contains the forbidden
//! token *for a given protocol's trigger grammar*. Each matcher is a
//! real parser requiring a complete protocol element, so segmentation
//! naturally defeats per-packet inspection (Strategy 8's mechanism).

use crate::{dns, ftp, http, smtp, tls};

/// The five application protocols of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppProtocol {
    /// DNS over TCP (RFC 7766).
    DnsTcp,
    /// FTP control channel.
    Ftp,
    /// HTTP/1.1.
    Http,
    /// TLS (SNI-based censorship).
    Https,
    /// SMTP.
    Smtp,
}

impl AppProtocol {
    /// All five protocols, in the paper's table order.
    pub fn all() -> [AppProtocol; 5] {
        [
            AppProtocol::DnsTcp,
            AppProtocol::Ftp,
            AppProtocol::Http,
            AppProtocol::Https,
            AppProtocol::Smtp,
        ]
    }

    /// Short display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AppProtocol::DnsTcp => "DNS",
            AppProtocol::Ftp => "FTP",
            AppProtocol::Http => "HTTP",
            AppProtocol::Https => "HTTPS",
            AppProtocol::Smtp => "SMTP",
        }
    }

    /// Whether this protocol's exchange rides a TCP connection. All
    /// five evaluated protocols do — DNS here is DNS over TCP
    /// (RFC 7766), not UDP — so TCP-liveness lints (handshake, seq/ack
    /// coherence, RST delivery) apply to every current protocol. A
    /// future UDP transport would return `false` and those lints would
    /// stand down.
    pub fn transport_is_tcp(self) -> bool {
        match self {
            AppProtocol::DnsTcp
            | AppProtocol::Ftp
            | AppProtocol::Http
            | AppProtocol::Https
            | AppProtocol::Smtp => true,
        }
    }

    /// The forbidden token used in our experiments for this protocol
    /// (mirroring §4.2's choices).
    pub fn default_keyword(self) -> &'static str {
        match self {
            AppProtocol::DnsTcp => "www.wikipedia.org",
            AppProtocol::Ftp => "ultrasurf",
            AppProtocol::Http => "ultrasurf",
            AppProtocol::Https => "www.wikipedia.org",
            AppProtocol::Smtp => smtp::FORBIDDEN_RCPT,
        }
    }
}

impl std::fmt::Display for AppProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Does `data` (packet payload or assembled stream) contain a complete
/// protocol element carrying the forbidden `keyword`?
pub fn forbidden_in(proto: AppProtocol, data: &[u8], keyword: &str) -> bool {
    match proto {
        AppProtocol::Http => http::request_is_forbidden(data, keyword),
        AppProtocol::Https => tls::parse_sni(data)
            .map(|sni| sni.contains(keyword))
            .unwrap_or(false),
        AppProtocol::DnsTcp => dns::parse_query_name(data)
            .map(|name| name.contains(keyword))
            .unwrap_or(false),
        AppProtocol::Ftp => ftp::parse_retr_filename(data)
            .map(|file| file.contains(keyword))
            .unwrap_or(false),
        AppProtocol::Smtp => smtp::parse_rcpt(data)
            .map(|rcpt| rcpt.contains(keyword))
            .unwrap_or(false),
    }
}

/// Is `payload` a *complete* protocol unit for per-packet inspection?
///
/// Non-reassembling censor boxes parse each in-sequence packet on its
/// own. When a packet ends mid-unit (a split command line, a truncated
/// DNS message or TLS record), a buggy parser has no way to find the
/// next unit boundary and wedges — the flow escapes inspection from
/// then on. This is the mechanism behind Strategy 8's 100 % success
/// against the GFW's SMTP box: the tiny advertised window splits the
/// client's very first command, and the box never recovers.
pub fn is_complete_unit(proto: AppProtocol, payload: &[u8]) -> bool {
    match proto {
        AppProtocol::Ftp | AppProtocol::Smtp => payload.ends_with(b"\r\n"),
        AppProtocol::Http => crate::http::contains(payload, b"\r\n\r\n"),
        AppProtocol::DnsTcp => {
            payload.len() >= 2
                && payload.len() >= 2 + usize::from(u16::from_be_bytes([payload[0], payload[1]]))
        }
        AppProtocol::Https => {
            payload.len() >= 5
                && payload.len() >= 5 + usize::from(u16::from_be_bytes([payload[3], payload[4]]))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use endpoint::ClientApp;

    #[test]
    fn each_protocol_matches_its_own_forbidden_request() {
        // HTTP
        let http_req = crate::http::HttpClientApp::for_keyword_query("ultrasurf").request_bytes();
        assert!(forbidden_in(AppProtocol::Http, &http_req, "ultrasurf"));
        // HTTPS
        let hello = crate::tls::client_hello("www.wikipedia.org", 1);
        assert!(forbidden_in(AppProtocol::Https, &hello, "wikipedia"));
        // DNS
        let query = crate::dns::build_query("www.wikipedia.org", 7);
        assert!(forbidden_in(AppProtocol::DnsTcp, &query, "wikipedia"));
        // FTP
        assert!(forbidden_in(
            AppProtocol::Ftp,
            b"RETR ultrasurf\r\n",
            "ultrasurf"
        ));
        // SMTP
        assert!(forbidden_in(
            AppProtocol::Smtp,
            b"RCPT TO:<xiazai@upup.info>\r\n",
            "xiazai@upup.info"
        ));
    }

    #[test]
    fn matchers_do_not_cross_protocols() {
        let http_req = crate::http::HttpClientApp::for_keyword_query("ultrasurf").request_bytes();
        assert!(!forbidden_in(AppProtocol::Https, &http_req, "ultrasurf"));
        assert!(!forbidden_in(AppProtocol::DnsTcp, &http_req, "ultrasurf"));
        assert!(!forbidden_in(AppProtocol::Smtp, &http_req, "ultrasurf"));
        // FTP's line grammar also doesn't see an HTTP GET as a RETR.
        assert!(!forbidden_in(AppProtocol::Ftp, &http_req, "ultrasurf"));
    }

    #[test]
    fn innocuous_requests_pass() {
        let mut ok = crate::http::HttpClientApp::for_keyword_query("kittens");
        assert!(!forbidden_in(
            AppProtocol::Http,
            &ok.request(0),
            "ultrasurf"
        ));
        let hello = crate::tls::client_hello("example.org", 1);
        assert!(!forbidden_in(AppProtocol::Https, &hello, "wikipedia"));
    }

    #[test]
    fn complete_unit_detection() {
        assert!(is_complete_unit(AppProtocol::Smtp, b"RCPT TO:<a@b>\r\n"));
        assert!(!is_complete_unit(AppProtocol::Smtp, b"RCPT TO:<a@"));
        assert!(is_complete_unit(AppProtocol::Ftp, b"RETR x\r\n"));
        assert!(!is_complete_unit(AppProtocol::Ftp, b"RETR ultra"));
        let q = crate::dns::build_query("a.b", 1);
        assert!(is_complete_unit(AppProtocol::DnsTcp, &q));
        assert!(!is_complete_unit(AppProtocol::DnsTcp, &q[..q.len() - 1]));
        let hello = crate::tls::client_hello("a.b", 1);
        assert!(is_complete_unit(AppProtocol::Https, &hello));
        assert!(!is_complete_unit(AppProtocol::Https, &hello[..10]));
    }

    #[test]
    fn default_keywords_are_consistent() {
        for proto in AppProtocol::all() {
            assert!(!proto.default_keyword().is_empty());
            assert!(!proto.name().is_empty());
        }
    }
}
