//! DNS-over-TCP (RFC 1035 §4.2.2 framing, RFC 7766 retry behavior).
//!
//! DNS over TCP prefixes each message with a two-byte length. The
//! paper's key observation (§4.2): because RFC 7766 tells clients to
//! *retry* when a connection closes prematurely, censorship (a RST
//! mid-query) triggers retries, which **amplifies** any per-try evasion
//! success rate — a 50 % strategy reaches ~87.5 % with 3 total tries.
//! We model the paper's testing choice: 3 tries max.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use endpoint::{ClientApp, ServerApp, ServerSession};

/// The answer address our resolver hands out; the client checks it.
pub const ANSWER_IP: [u8; 4] = [192, 0, 2, 77];

/// Encode a QNAME as DNS labels.
fn encode_qname(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

/// Decode a QNAME at `at`; returns (name, bytes consumed). No
/// compression support needed for queries.
fn decode_qname(data: &[u8], mut at: usize) -> Option<(String, usize)> {
    let start = at;
    let mut name = String::new();
    loop {
        let len = usize::from(*data.get(at)?);
        at += 1;
        if len == 0 {
            break;
        }
        if len > 63 {
            return None; // compression pointer / malformed — not in queries
        }
        let label = data.get(at..at + len)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(std::str::from_utf8(label).ok()?);
        at += len;
    }
    Some((name, at - start))
}

/// Build an (unframed) A-query message for `name` with transaction
/// `id` — the shape used directly over UDP.
pub fn build_query_message(name: &str, id: u16) -> Vec<u8> {
    let mut msg = Vec::new();
    msg.extend_from_slice(&id.to_be_bytes());
    msg.extend_from_slice(&[0x01, 0x00]); // RD
    msg.extend_from_slice(&[0, 1, 0, 0, 0, 0, 0, 0]); // QD=1
    encode_qname(name, &mut msg);
    msg.extend_from_slice(&[0, 1, 0, 1]); // QTYPE=A, QCLASS=IN
    msg
}

/// Build a TCP-framed A query for `name` with transaction `id`.
pub fn build_query(name: &str, id: u16) -> Vec<u8> {
    frame(build_query_message(name, id))
}

/// The forged address the GFW's DNS injector hands out in our model —
/// a "lemon" response (§2.1: censors "inject DNS lemon responses to
/// thwart address lookup").
pub const LEMON_IP: [u8; 4] = [203, 0, 113, 113];

/// Build an (unframed) response message to `query_msg` with one A
/// record pointing at `answer`.
pub fn build_response_message(query_msg: &[u8], answer: [u8; 4]) -> Option<Vec<u8>> {
    if query_msg.len() < 12 {
        return None;
    }
    let (qname, qname_len) = decode_qname(query_msg, 12)?;
    let question_end = 12 + qname_len + 4;
    if query_msg.len() < question_end {
        return None;
    }
    let mut msg = Vec::new();
    msg.extend_from_slice(&query_msg[0..2]); // same id
    msg.extend_from_slice(&[0x81, 0x80]); // QR, RD, RA, NOERROR
    msg.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 0]); // QD=1 AN=1
    msg.extend_from_slice(&query_msg[12..question_end]); // echo question
    encode_qname(&qname, &mut msg); // answer name (uncompressed)
    msg.extend_from_slice(&[0, 1, 0, 1]); // TYPE A, CLASS IN
    msg.extend_from_slice(&[0, 0, 0, 60]); // TTL
    msg.extend_from_slice(&[0, 4]); // RDLENGTH
    msg.extend_from_slice(&answer);
    Some(msg)
}

/// Parse an (unframed, UDP-style) query's QNAME.
pub fn parse_query_name_udp(msg: &[u8]) -> Option<String> {
    if msg.len() < 12 {
        return None;
    }
    let qdcount = u16::from_be_bytes([msg[4], msg[5]]);
    let is_query = msg[2] & 0x80 == 0;
    if !is_query || qdcount == 0 {
        return None;
    }
    decode_qname(msg, 12).map(|(name, _)| name)
}

/// Extract the A-record address from an (unframed) response message.
pub fn response_answer(msg: &[u8]) -> Option<[u8; 4]> {
    // The last four bytes of our fixed-layout responses are the RDATA.
    if msg.len() < 16 || msg[2] & 0x80 == 0 {
        return None;
    }
    let tail = &msg[msg.len() - 4..];
    Some([tail[0], tail[1], tail[2], tail[3]])
}

/// Build the TCP-framed response to `query_msg` (unframed message) with
/// one A record pointing at [`ANSWER_IP`].
pub fn build_response(query_msg: &[u8]) -> Option<Vec<u8>> {
    Some(frame(build_response_message(query_msg, ANSWER_IP)?))
}

fn frame(msg: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(msg.len() + 2);
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(&msg);
    out
}

/// DPI: extract the QNAME from a TCP stream fragment, requiring a
/// complete length-prefixed query message.
pub fn parse_query_name(stream: &[u8]) -> Option<String> {
    if stream.len() < 2 {
        return None;
    }
    let len = usize::from(u16::from_be_bytes([stream[0], stream[1]]));
    let msg = stream.get(2..2 + len)?;
    if msg.len() < 12 {
        return None;
    }
    let qdcount = u16::from_be_bytes([msg[4], msg[5]]);
    let is_query = msg[2] & 0x80 == 0;
    if !is_query || qdcount == 0 {
        return None;
    }
    decode_qname(msg, 12).map(|(name, _)| name)
}

/// A DNS-over-TCP client querying a (censored) name, with the paper's
/// 3-try retry policy.
#[derive(Debug, Clone)]
pub struct DnsClientApp {
    /// The queried name.
    pub name: String,
    got: Vec<u8>,
    base_id: u16,
}

impl DnsClientApp {
    /// New query session for `name`.
    pub fn new(name: &str) -> Self {
        DnsClientApp {
            name: name.to_string(),
            got: Vec::new(),
            base_id: 0x7A30,
        }
    }

    fn complete_response(&self) -> Option<&[u8]> {
        if self.got.len() < 2 {
            return None;
        }
        let len = usize::from(u16::from_be_bytes([self.got[0], self.got[1]]));
        self.got.get(2..2 + len)
    }
}

impl ClientApp for DnsClientApp {
    fn request(&mut self, attempt: u32) -> Vec<u8> {
        build_query(&self.name, self.base_id.wrapping_add(attempt as u16))
    }
    fn on_data(&mut self, data: &[u8]) {
        self.got.extend_from_slice(data);
    }
    fn satisfied(&self) -> bool {
        let Some(msg) = self.complete_response() else {
            return false;
        };
        // QR set, NOERROR, at least one answer, and our address present.
        msg.len() >= 12
            && msg[2] & 0x80 != 0
            && msg[3] & 0x0F == 0
            && u16::from_be_bytes([msg[6], msg[7]]) >= 1
            && crate::http::contains(msg, &ANSWER_IP)
    }
    fn max_attempts(&self) -> u32 {
        3 // the paper's "maximum of 3 tries"
    }
    fn reset_for_retry(&mut self) {
        self.got.clear();
    }
}

/// A recursive resolver stand-in: answers any complete A query.
pub struct DnsServerApp;

impl ServerApp for DnsServerApp {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(DnsServerSession { responded: false })
    }
}

struct DnsServerSession {
    responded: bool,
}

impl ServerSession for DnsServerSession {
    fn on_data(&mut self, stream: &[u8]) -> Vec<u8> {
        if self.responded || stream.len() < 2 {
            return Vec::new();
        }
        let len = usize::from(u16::from_be_bytes([stream[0], stream[1]]));
        let Some(msg) = stream.get(2..2 + len) else {
            return Vec::new();
        };
        match build_response(msg) {
            Some(resp) => {
                self.responded = true;
                resp
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn query_name_round_trips() {
        let q = build_query("www.wikipedia.org", 0x1234);
        assert_eq!(parse_query_name(&q).as_deref(), Some("www.wikipedia.org"));
    }

    #[test]
    fn partial_query_not_parsed() {
        let q = build_query("www.wikipedia.org", 0x1234);
        for cut in 1..q.len() {
            assert_eq!(parse_query_name(&q[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn response_is_not_a_query() {
        let q = build_query("example.org", 1);
        let resp = build_response(&q[2..]).unwrap();
        assert_eq!(parse_query_name(&resp), None);
    }

    #[test]
    fn client_satisfied_by_matching_answer() {
        let mut app = DnsClientApp::new("www.wikipedia.org");
        let q = app.request(0);
        assert!(!app.satisfied());
        app.on_data(&build_response(&q[2..]).unwrap());
        assert!(app.satisfied());
    }

    #[test]
    fn client_retries_three_times_and_resets() {
        let mut app = DnsClientApp::new("x.org");
        assert_eq!(app.max_attempts(), 3);
        let q0 = app.request(0);
        let q1 = app.request(1);
        assert_ne!(q0, q1, "new transaction id per try");
        app.on_data(b"\x00\x01x");
        app.reset_for_retry();
        assert!(!app.satisfied());
    }

    #[test]
    fn server_answers_complete_queries_only() {
        let mut s = DnsServerApp.new_session();
        let q = build_query("a.b.c", 9);
        assert!(s.on_data(&q[..q.len() - 1]).is_empty());
        let resp = s.on_data(&q);
        assert!(!resp.is_empty());
        // Response must parse as satisfying for the client.
        let mut app = DnsClientApp::new("a.b.c");
        let _ = app.request(0);
        app.on_data(&resp);
        assert!(app.satisfied());
    }

    #[test]
    fn udp_message_helpers_round_trip() {
        let q = build_query_message("www.wikipedia.org", 0x9999);
        assert_eq!(
            parse_query_name_udp(&q).as_deref(),
            Some("www.wikipedia.org")
        );
        let truthful = build_response_message(&q, ANSWER_IP).unwrap();
        assert_eq!(response_answer(&truthful), Some(ANSWER_IP));
        assert_eq!(
            parse_query_name_udp(&truthful),
            None,
            "responses are not queries"
        );
        let lemon = build_response_message(&q, LEMON_IP).unwrap();
        assert_eq!(response_answer(&lemon), Some(LEMON_IP));
    }

    #[test]
    fn qname_with_single_label() {
        let q = build_query("localhost", 2);
        assert_eq!(parse_query_name(&q).as_deref(), Some("localhost"));
    }
}
