//! Minimal TLS: ClientHello construction with an SNI extension, an SNI
//! parser for DPI, and a stub ServerHello exchange.
//!
//! HTTPS censorship in China and Iran triggers on the **Server Name
//! Indication** in the ClientHello (§4.2). We build byte-accurate TLS
//! 1.2 ClientHello records (record layer + handshake framing +
//! extensions) so the censor-side parser is exercised on realistic
//! input, and a ServerHello-shaped reply that stands in for "the
//! correct, unaltered data".

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use endpoint::{ClientApp, ServerApp, ServerSession};

/// Marker bytes inside our stand-in ServerHello (certificate blob) that
/// the client checks for success.
pub const SERVER_MARKER: &[u8] = b"genuine-origin-tls-cert";

/// Build a TLS 1.2 ClientHello carrying `sni` in the server_name
/// extension. `seed` fills the client random deterministically.
pub fn client_hello(sni: &str, seed: u64) -> Vec<u8> {
    // --- extensions ---
    let host = sni.as_bytes();
    let mut server_name_list = Vec::new();
    server_name_list.push(0x00); // name_type: host_name
    server_name_list.extend_from_slice(&(host.len() as u16).to_be_bytes());
    server_name_list.extend_from_slice(host);

    let mut sni_ext_body = Vec::new();
    sni_ext_body.extend_from_slice(&(server_name_list.len() as u16).to_be_bytes());
    sni_ext_body.extend_from_slice(&server_name_list);

    let mut extensions = Vec::new();
    // server_name (0x0000)
    extensions.extend_from_slice(&[0x00, 0x00]);
    extensions.extend_from_slice(&(sni_ext_body.len() as u16).to_be_bytes());
    extensions.extend_from_slice(&sni_ext_body);
    // supported_groups (0x000a) — minimal, for realism
    extensions.extend_from_slice(&[0x00, 0x0a, 0x00, 0x04, 0x00, 0x02, 0x00, 0x17]);

    // --- ClientHello body ---
    let mut body = Vec::new();
    body.extend_from_slice(&[0x03, 0x03]); // TLS 1.2
    let mut random = [0u8; 32];
    let mut x = seed | 1;
    for byte in random.iter_mut() {
        // xorshift64* — deterministic "random"
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *byte = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
    }
    body.extend_from_slice(&random);
    body.push(0); // session id length
    let cipher_suites: [u16; 4] = [0x1301, 0x1302, 0xC02F, 0x009C];
    body.extend_from_slice(&((cipher_suites.len() * 2) as u16).to_be_bytes());
    for suite in cipher_suites {
        body.extend_from_slice(&suite.to_be_bytes());
    }
    body.extend_from_slice(&[0x01, 0x00]); // compression: null
    body.extend_from_slice(&(extensions.len() as u16).to_be_bytes());
    body.extend_from_slice(&extensions);

    // --- handshake header ---
    let mut handshake = Vec::new();
    handshake.push(0x01); // ClientHello
    let len = body.len() as u32;
    handshake.extend_from_slice(&len.to_be_bytes()[1..]); // 24-bit length
    handshake.extend_from_slice(&body);

    // --- record layer ---
    let mut record = Vec::new();
    record.push(0x16); // handshake
    record.extend_from_slice(&[0x03, 0x01]); // record version
    record.extend_from_slice(&(handshake.len() as u16).to_be_bytes());
    record.extend_from_slice(&handshake);
    record
}

/// A stand-in ServerHello + certificate record carrying
/// [`SERVER_MARKER`].
pub fn server_hello() -> Vec<u8> {
    let mut body = vec![0x02, 0x00, 0x00, 0x26]; // ServerHello, len 38
    body.extend_from_slice(&[0x03, 0x03]); // TLS 1.2
    body.extend_from_slice(&[0xAB; 32]); // server random
    body.extend_from_slice(&[0x00, 0x13, 0x01]); // no session id, suite
    body.extend_from_slice(SERVER_MARKER);
    let mut record = vec![0x16, 0x03, 0x03];
    record.extend_from_slice(&(body.len() as u16).to_be_bytes());
    record.extend_from_slice(&body);
    record
}

/// Parse the SNI host name out of a (possibly partial) byte stream.
///
/// Returns `None` unless the stream contains a complete TLS handshake
/// record holding a complete ClientHello with a server_name extension —
/// the strictness real DPI needs, and the reason a split ClientHello
/// defeats non-reassembling censors (brdgrd's original trick).
pub fn parse_sni(data: &[u8]) -> Option<String> {
    // Record header.
    if data.len() < 5 || data[0] != 0x16 {
        return None;
    }
    let record_len = usize::from(u16::from_be_bytes([data[3], data[4]]));
    let record = data.get(5..5 + record_len)?;
    // Handshake header.
    if record.len() < 4 || record[0] != 0x01 {
        return None;
    }
    let hs_len = u32::from_be_bytes([0, record[1], record[2], record[3]]) as usize;
    let body = record.get(4..4 + hs_len)?;
    // Fixed fields.
    let mut at = 2 + 32; // version + random
    let session_len = usize::from(*body.get(at)?);
    at += 1 + session_len;
    let suites_len = usize::from(u16::from_be_bytes([*body.get(at)?, *body.get(at + 1)?]));
    at += 2 + suites_len;
    let comp_len = usize::from(*body.get(at)?);
    at += 1 + comp_len;
    let ext_total = usize::from(u16::from_be_bytes([*body.get(at)?, *body.get(at + 1)?]));
    at += 2;
    let mut extensions = body.get(at..at + ext_total)?;
    // Walk extensions.
    while extensions.len() >= 4 {
        let ext_type = u16::from_be_bytes([extensions[0], extensions[1]]);
        let ext_len = usize::from(u16::from_be_bytes([extensions[2], extensions[3]]));
        let ext_body = extensions.get(4..4 + ext_len)?;
        if ext_type == 0x0000 {
            // server_name list.
            if ext_body.len() < 2 {
                return None;
            }
            let mut names = &ext_body[2..];
            while names.len() >= 3 {
                let name_type = names[0];
                let name_len = usize::from(u16::from_be_bytes([names[1], names[2]]));
                let name = names.get(3..3 + name_len)?;
                if name_type == 0 {
                    return String::from_utf8(name.to_vec()).ok();
                }
                names = &names[3 + name_len..];
            }
            return None;
        }
        extensions = &extensions[4 + ext_len..];
    }
    None
}

/// HTTPS client session: sends a ClientHello with a forbidden SNI and
/// expects the marker ServerHello back.
#[derive(Debug, Clone)]
pub struct TlsClientApp {
    /// The SNI host name (the forbidden URL for the censored case).
    pub sni: String,
    got: Vec<u8>,
}

impl TlsClientApp {
    /// New session targeting `sni`.
    pub fn new(sni: &str) -> Self {
        TlsClientApp {
            sni: sni.to_string(),
            got: Vec::new(),
        }
    }
}

impl ClientApp for TlsClientApp {
    fn request(&mut self, attempt: u32) -> Vec<u8> {
        client_hello(&self.sni, 0xC0FFEE ^ u64::from(attempt))
    }
    fn on_data(&mut self, data: &[u8]) {
        self.got.extend_from_slice(data);
    }
    fn satisfied(&self) -> bool {
        crate::http::contains(&self.got, SERVER_MARKER)
    }
}

/// HTTPS server: answers a complete ClientHello with the marker
/// ServerHello.
pub struct TlsServerApp;

impl ServerApp for TlsServerApp {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(TlsServerSession { responded: false })
    }
}

struct TlsServerSession {
    responded: bool,
}

impl ServerSession for TlsServerSession {
    fn on_data(&mut self, stream: &[u8]) -> Vec<u8> {
        if self.responded {
            return Vec::new();
        }
        // Complete record present? (We accept any complete ClientHello,
        // like a real terminating server would at this stage.)
        if stream.len() >= 5 && stream[0] == 0x16 {
            let record_len = usize::from(u16::from_be_bytes([stream[3], stream[4]]));
            if stream.len() >= 5 + record_len {
                self.responded = true;
                return server_hello();
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn sni_round_trip() {
        for name in ["www.wikipedia.org", "youtube.com", "a.b"] {
            let hello = client_hello(name, 7);
            assert_eq!(parse_sni(&hello).as_deref(), Some(name));
        }
    }

    #[test]
    fn partial_client_hello_yields_no_sni() {
        let hello = client_hello("www.wikipedia.org", 7);
        for cut in 1..hello.len() {
            assert_eq!(parse_sni(&hello[..cut]), None, "cut at {cut}");
        }
        // A fragment that doesn't start at the record boundary is noise.
        assert_eq!(parse_sni(&hello[3..]), None);
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(client_hello("x.com", 1), client_hello("x.com", 1));
        assert_ne!(client_hello("x.com", 1), client_hello("x.com", 2));
    }

    #[test]
    fn client_satisfied_by_server_hello() {
        let mut app = TlsClientApp::new("youtube.com");
        let _ = app.request(0);
        assert!(!app.satisfied());
        app.on_data(&server_hello());
        assert!(app.satisfied());
    }

    #[test]
    fn server_waits_for_complete_record() {
        let mut s = TlsServerApp.new_session();
        let hello = client_hello("youtube.com", 3);
        assert!(s.on_data(&hello[..hello.len() - 1]).is_empty());
        let resp = s.on_data(&hello);
        assert!(!resp.is_empty());
        assert!(s.on_data(&hello).is_empty());
    }

    #[test]
    fn garbage_is_not_a_client_hello() {
        assert_eq!(parse_sni(b"GET / HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_sni(&[0x16, 0x03, 0x01, 0x00]), None);
        assert_eq!(parse_sni(&[]), None);
    }
}
