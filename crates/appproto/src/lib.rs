//! # appproto — the five censored application protocols
//!
//! The paper triggers censorship over **DNS-over-TCP, FTP, HTTP, HTTPS,
//! and SMTP** (§4.2), each with a protocol-specific forbidden token:
//!
//! | protocol | trigger |
//! |---|---|
//! | DNS-over-TCP | a censored QNAME in the query |
//! | FTP | a sensitive filename in `RETR` |
//! | HTTP | a censored keyword in the URL, or a blacklisted `Host:` |
//! | HTTPS | a forbidden name in the TLS SNI extension |
//! | SMTP | a forbidden recipient in `RCPT TO:` |
//!
//! Each module provides three things:
//!
//! 1. a **client session** (`endpoint::ClientApp`) an unmodified client
//!    would run — including DNS's RFC 7766 retry behavior and FTP/SMTP's
//!    interactive command/response exchanges;
//! 2. a **server session** (`endpoint::ServerApp`/`ServerSession`)
//!    producing a well-formed response the client can verify;
//! 3. a **DPI extractor** used by the censor models — a real parser, so
//!    a keyword split across TCP segments is only found by censors that
//!    reassemble (the deficiency Strategy 8 exploits).

#![forbid(unsafe_code)]

pub mod dns;
pub mod dpi;
pub mod ftp;
pub mod http;
pub mod smtp;
pub mod tls;

pub use dpi::{forbidden_in, AppProtocol};

/// Default server port per protocol (the paper randomizes GFW-facing
/// ports; India/Iran/Kazakhstan only censor default ports — §5.2).
pub fn default_port(proto: AppProtocol) -> u16 {
    match proto {
        AppProtocol::DnsTcp => 53,
        AppProtocol::Ftp => 21,
        AppProtocol::Http => 80,
        AppProtocol::Https => 443,
        AppProtocol::Smtp => 25,
    }
}

/// Build the standard client session for `proto`, requesting the
/// forbidden resource `keyword` (domain / filename / recipient).
pub fn client_app(proto: AppProtocol, keyword: &str) -> Box<dyn endpoint::ClientApp> {
    match proto {
        AppProtocol::DnsTcp => Box::new(dns::DnsClientApp::new(keyword)),
        AppProtocol::Ftp => Box::new(ftp::FtpClientApp::new(keyword)),
        AppProtocol::Http => Box::new(http::HttpClientApp::for_keyword_query(keyword)),
        AppProtocol::Https => Box::new(tls::TlsClientApp::new(keyword)),
        AppProtocol::Smtp => Box::new(smtp::SmtpClientApp::new(keyword)),
    }
}

/// Build the standard server application for `proto`.
pub fn server_app(proto: AppProtocol) -> Box<dyn endpoint::ServerApp> {
    match proto {
        AppProtocol::DnsTcp => Box::new(dns::DnsServerApp),
        AppProtocol::Ftp => Box::new(ftp::FtpServerApp),
        AppProtocol::Http => Box::new(http::HttpServerApp),
        AppProtocol::Https => Box::new(tls::TlsServerApp),
        AppProtocol::Smtp => Box::new(smtp::SmtpServerApp),
    }
}
