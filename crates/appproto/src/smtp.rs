//! SMTP (RFC 5321 subset): greeting, HELO, and a forbidden recipient.
//!
//! The paper's SMTP workload (§4.2): "we connect to SMTP servers we
//! control and, from our unmodified clients, send an email to a
//! forbidden email address, xiazai@upup.info" — the GFW triggers on
//! the envelope recipient. Like FTP this is a server-greets-first,
//! interactive protocol.

use endpoint::{ClientApp, ServerApp, ServerSession};

/// The forbidden address the paper uses.
pub const FORBIDDEN_RCPT: &str = "xiazai@upup.info";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmtpClientState {
    WaitGreeting,
    WaitHeloOk,
    WaitMailOk,
    WaitRcptOk,
    Done,
}

/// SMTP client session: HELO → MAIL FROM → RCPT TO the forbidden address.
#[derive(Debug, Clone)]
pub struct SmtpClientApp {
    /// The envelope recipient (the censored trigger).
    pub rcpt: String,
    state: SmtpClientState,
    buffer: String,
    consumed: usize,
    queued: Vec<Vec<u8>>,
}

impl SmtpClientApp {
    /// New session mailing `rcpt`.
    pub fn new(rcpt: &str) -> Self {
        SmtpClientApp {
            rcpt: rcpt.to_string(),
            state: SmtpClientState::WaitGreeting,
            buffer: String::new(),
            consumed: 0,
            queued: Vec::new(),
        }
    }

    fn advance(&mut self) {
        while let Some(nl) = self.buffer[self.consumed..].find("\r\n") {
            let line = self.buffer[self.consumed..self.consumed + nl].to_string();
            self.consumed += nl + 2;
            let code = line.get(0..3).unwrap_or("");
            match (self.state, code) {
                (SmtpClientState::WaitGreeting, "220") => {
                    self.queued.push(b"HELO client.example\r\n".to_vec());
                    self.state = SmtpClientState::WaitHeloOk;
                }
                (SmtpClientState::WaitHeloOk, "250") => {
                    self.queued
                        .push(b"MAIL FROM:<user@client.example>\r\n".to_vec());
                    self.state = SmtpClientState::WaitMailOk;
                }
                (SmtpClientState::WaitMailOk, "250") => {
                    self.queued
                        .push(format!("RCPT TO:<{}>\r\n", self.rcpt).into_bytes());
                    self.state = SmtpClientState::WaitRcptOk;
                }
                (SmtpClientState::WaitRcptOk, "250") if line.contains("genuine-origin-smtp") => {
                    self.state = SmtpClientState::Done;
                }
                _ => {}
            }
        }
    }
}

impl ClientApp for SmtpClientApp {
    fn request(&mut self, _attempt: u32) -> Vec<u8> {
        Vec::new() // server speaks first
    }
    fn pending_output(&mut self) -> Option<Vec<u8>> {
        if self.queued.is_empty() {
            None
        } else {
            Some(self.queued.remove(0))
        }
    }
    fn on_data(&mut self, data: &[u8]) {
        self.buffer.push_str(&String::from_utf8_lossy(data));
        self.advance();
    }
    fn satisfied(&self) -> bool {
        self.state == SmtpClientState::Done
    }
    fn reset_for_retry(&mut self) {
        *self = SmtpClientApp::new(&self.rcpt);
    }
}

/// SMTP server: accepts everything.
pub struct SmtpServerApp;

impl ServerApp for SmtpServerApp {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(SmtpServerSession { consumed: 0 })
    }
}

struct SmtpServerSession {
    consumed: usize,
}

impl ServerSession for SmtpServerSession {
    fn greeting(&mut self) -> Vec<u8> {
        b"220 mail.example ESMTP Postfix\r\n".to_vec()
    }

    fn on_data(&mut self, stream: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(stream).into_owned();
        let mut reply = Vec::new();
        while let Some(nl) = text[self.consumed..].find("\r\n") {
            let line = &text[self.consumed..self.consumed + nl];
            self.consumed += nl + 2;
            let response: String = if line.starts_with("HELO") || line.starts_with("EHLO") {
                "250 mail.example\r\n".into()
            } else if line.starts_with("MAIL FROM:") {
                "250 2.1.0 Ok\r\n".into()
            } else if line.starts_with("RCPT TO:") {
                "250 2.1.5 Ok (genuine-origin-smtp)\r\n".into()
            } else if line.starts_with("QUIT") {
                "221 Bye\r\n".into()
            } else {
                "502 Command not implemented\r\n".into()
            };
            reply.extend_from_slice(response.as_bytes());
        }
        reply
    }
}

/// DPI: the recipient of a complete `RCPT TO:` line in the stream.
pub fn parse_rcpt(stream: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(stream).ok()?;
    let mut lines: Vec<&str> = text.split("\r\n").collect();
    lines.pop(); // incomplete trailing piece
    for line in lines {
        if let Some(rest) = line.strip_prefix("RCPT TO:") {
            let addr = rest.trim().trim_start_matches('<').trim_end_matches('>');
            return Some(addr.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn run_session(rcpt: &str) -> (SmtpClientApp, Vec<u8>) {
        let mut client = SmtpClientApp::new(rcpt);
        let mut server = SmtpServerApp.new_session();
        let mut client_stream: Vec<u8> = Vec::new();
        let _ = client.request(0);
        client.on_data(&server.greeting());
        for _ in 0..10 {
            while let Some(bytes) = client.pending_output() {
                client_stream.extend_from_slice(&bytes);
            }
            let reply = server.on_data(&client_stream);
            if reply.is_empty() {
                break;
            }
            client.on_data(&reply);
        }
        (client, client_stream)
    }

    #[test]
    fn full_envelope_exchange_succeeds() {
        let (client, stream) = run_session(FORBIDDEN_RCPT);
        assert!(client.satisfied());
        assert_eq!(parse_rcpt(&stream).as_deref(), Some(FORBIDDEN_RCPT));
    }

    #[test]
    fn rcpt_requires_complete_line() {
        assert_eq!(parse_rcpt(b"RCPT TO:<xiazai@up"), None);
        assert_eq!(
            parse_rcpt(b"RCPT TO:<xiazai@upup.info>\r\n").as_deref(),
            Some("xiazai@upup.info")
        );
    }

    #[test]
    fn dpi_ignores_other_commands() {
        assert_eq!(parse_rcpt(b"MAIL FROM:<a@b>\r\nHELO x\r\n"), None);
    }

    #[test]
    fn client_talks_only_after_greeting() {
        let mut client = SmtpClientApp::new("a@b");
        assert!(client.request(0).is_empty());
        assert_eq!(client.pending_output(), None);
        client.on_data(b"220 hi\r\n");
        assert_eq!(client.pending_output().unwrap(), b"HELO client.example\r\n");
    }
}
