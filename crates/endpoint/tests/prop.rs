#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property tests: the endpoint TCP state machine must survive any
//! packet sequence a strategy (or a hostile censor) can throw at it.
//!
//! Invariants:
//! 1. `TcpConn::on_packet` never panics, for any flag/seq/ack/payload
//!    combination, in any state;
//! 2. every packet a connection emits is wire-valid (checksums verify);
//! 3. received application bytes are always a prefix-consistent
//!    reassembly — data never duplicates or reorders;
//! 4. `StreamAssembler` equals a reference model (sorted byte map) on
//!    arbitrary segment soups.

use endpoint::{OsProfile, StreamAssembler, TcpConn};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;

const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);

#[derive(Debug, Clone)]
struct FuzzPacket {
    flags: u8,
    seq: u32,
    ack: u32,
    window: u16,
    payload: Vec<u8>,
}

fn arb_packet() -> impl Strategy<Value = FuzzPacket> {
    (
        any::<u8>(),
        // Bias sequence numbers toward the live window.
        prop_oneof![Just(9000u32), Just(9001u32), 9000u32..9100, any::<u32>(),],
        prop_oneof![Just(1001u32), Just(1000u32), any::<u32>()],
        any::<u16>(),
        prop::collection::vec(any::<u8>(), 0..40),
    )
        .prop_map(|(flags, seq, ack, window, payload)| FuzzPacket {
            flags,
            seq,
            ack,
            window,
            payload,
        })
}

fn build(fp: &FuzzPacket) -> Packet {
    let mut p = Packet::tcp(
        SERVER.0,
        SERVER.1,
        CLIENT.0,
        CLIENT.1,
        TcpFlags(fp.flags),
        fp.seq,
        fp.ack,
        fp.payload.clone(),
    );
    p.tcp_header_mut().unwrap().window = fp.window;
    p.finalize();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn conn_survives_arbitrary_packet_storms(
        packets in prop::collection::vec(arb_packet(), 1..25),
        os_is_windows in any::<bool>(),
    ) {
        let profile = if os_is_windows { OsProfile::windows() } else { OsProfile::linux() };
        let mut conn = TcpConn::client(CLIENT, SERVER, 1000, profile);
        let mut out = Vec::new();
        conn.open(&mut out);
        let mut received_total = 0usize;
        for fp in &packets {
            let mut replies = Vec::new();
            conn.on_packet(&build(fp), &mut replies);
            for reply in &replies {
                prop_assert!(reply.checksums_ok(), "emitted invalid packet {}", reply.summary());
            }
            received_total += conn.take_received().len();
        }
        // Receiving can never exceed what was offered.
        let offered: usize = packets.iter().map(|p| p.payload.len()).sum();
        prop_assert!(received_total <= offered);
    }

    #[test]
    fn queued_data_is_emitted_in_order_without_gaps(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..120), 1..6),
    ) {
        // Handshake, then queue arbitrary chunks; concatenating the
        // emitted payloads in seq order must equal the queued bytes.
        let mut conn = TcpConn::client(CLIENT, SERVER, 1000, OsProfile::linux());
        let mut out = Vec::new();
        conn.open(&mut out);
        let mut sa = Packet::tcp(SERVER.0, SERVER.1, CLIENT.0, CLIENT.1, TcpFlags::SYN_ACK, 9000, 1001, vec![]);
        sa.finalize();
        conn.on_packet(&sa, &mut out);
        prop_assert!(conn.is_established());

        out.clear();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend_from_slice(chunk);
            conn.queue_data(chunk, &mut out);
        }
        let mut sent: Vec<(u32, Vec<u8>)> = out
            .iter()
            .filter(|p| !p.payload.is_empty())
            .map(|p| (p.tcp_header().unwrap().seq, p.payload.to_vec()))
            .collect();
        sent.sort_by_key(|(seq, _)| *seq);
        let mut stitched = Vec::new();
        let mut next = 1001u32;
        for (seq, payload) in sent {
            prop_assert_eq!(seq, next, "gap or overlap in emitted stream");
            next = next.wrapping_add(payload.len() as u32);
            stitched.extend_from_slice(&payload);
        }
        // Everything within the (large) default window flies at once.
        prop_assert_eq!(stitched, expected);
    }

    #[test]
    fn assembler_matches_reference_model(
        segments in prop::collection::vec((0u32..200, prop::collection::vec(any::<u8>(), 1..20)), 1..20),
    ) {
        let mut asm = StreamAssembler::new(0);
        let mut produced = Vec::new();
        // Reference: a byte-indexed map, first write wins only when the
        // assembler has not yet passed that offset.
        let mut reference: std::collections::BTreeMap<u32, u8> = Default::default();
        for (seq, data) in &segments {
            produced.extend_from_slice(&asm.push(*seq, data));
            for (i, b) in data.iter().enumerate() {
                reference.entry(seq + i as u32).or_insert(*b);
            }
        }
        // The produced stream is a contiguous prefix [0, produced.len())
        // and agrees with *some* consistent write at every offset it
        // covers (overlapping writes may differ; we check coverage).
        for i in 0..produced.len() {
            prop_assert!(
                reference.contains_key(&(i as u32)),
                "assembler invented byte at offset {i}"
            );
        }
        // And it never skips the gap: offset len(produced) is either
        // uncovered by reference or still pending.
        let next = produced.len() as u32;
        if reference.contains_key(&next) {
            // There must be a hole strictly before it in the reference
            // only if the assembler stopped early — which can only be
            // because seq 0..next had a gap at exactly `next`... i.e.
            // never: contiguity from 0 is what drain() guarantees.
            let contiguous_from_zero = (0..=next).all(|k| reference.contains_key(&k));
            prop_assert!(
                !contiguous_from_zero || asm.next_seq() == next,
                "assembler stalled at {next}"
            );
        }
    }
}
