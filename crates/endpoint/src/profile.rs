//! Client OS behavior profiles (paper §7).
//!
//! The paper evaluates every strategy against 17 versions of 6
//! operating systems and finds exactly one behavioral axis that
//! matters: **what the stack does with a SYN+ACK that carries a
//! payload**. Linux-derived stacks (Ubuntu, CentOS, Android) and
//! Apple's mobile/desktop stacks *in the SYN-SENT state* differ:
//!
//! * Linux/Android/iOS ignore the payload and proceed with the
//!   handshake — Strategies 5, 9, and 10 work;
//! * Windows (all versions) and macOS process the payload, which
//!   desynchronizes or aborts the nascent connection — those three
//!   strategies break.
//!
//! The paper's §7 fix — resending payload packets with a corrupted
//! checksum so clients drop them while censors still process them —
//! works everywhere because *all* stacks validate checksums.
//!
//! Everything else (ignoring a RST without ACK in SYN-SENT, supporting
//! simultaneous open, RFC 7766 DNS retry behavior) is common across
//! the tested stacks and lives in [`crate::conn::TcpConn`].

/// Operating system family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsFamily {
    /// Microsoft Windows (desktop and server).
    Windows,
    /// Apple macOS.
    MacOs,
    /// Apple iOS.
    Ios,
    /// Android.
    Android,
    /// Ubuntu GNU/Linux.
    Ubuntu,
    /// CentOS GNU/Linux.
    CentOs,
}

/// One client operating system's TCP behavioral profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsProfile {
    /// Marketing/version name, e.g. `"Windows 10 Enterprise"`.
    pub name: &'static str,
    /// OS family.
    pub family: OsFamily,
    /// Does the stack silently ignore a payload on a SYN+ACK during
    /// connection establishment (true: Linux-like; false: the
    /// handshake breaks — Windows, macOS)?
    pub ignores_synack_payload: bool,
}

impl OsProfile {
    /// The reference client used in most experiments (paper §5 trains
    /// against Linux clients; Ubuntu 18.04 matches their server/client
    /// testbed).
    pub fn linux() -> OsProfile {
        *all_profiles()
            .iter()
            .find(|p| p.name == "Ubuntu 18.04.1")
            .expect("Ubuntu 18.04.1 profile exists")
    }

    /// A Windows 10 client, the strictest SYN+ACK-payload behavior.
    pub fn windows() -> OsProfile {
        *all_profiles()
            .iter()
            .find(|p| p.name == "Windows 10 Enterprise")
            .expect("Windows 10 profile exists")
    }
}

/// The 17 client operating systems of paper §7, with the behavioral
/// bit that decides strategy compatibility.
pub fn all_profiles() -> &'static [OsProfile] {
    const fn p(name: &'static str, family: OsFamily, ignores: bool) -> OsProfile {
        OsProfile {
            name,
            family,
            ignores_synack_payload: ignores,
        }
    }
    static PROFILES: [OsProfile; 17] = [
        p("Windows XP SP3", OsFamily::Windows, false),
        p("Windows 7 Ultimate SP1", OsFamily::Windows, false),
        p("Windows 8.1 Pro", OsFamily::Windows, false),
        p("Windows 10 Enterprise", OsFamily::Windows, false),
        p("Windows Server 2003 Datacenter", OsFamily::Windows, false),
        p("Windows Server 2008 Datacenter", OsFamily::Windows, false),
        p("Windows Server 2013 Standard", OsFamily::Windows, false),
        p("Windows Server 2018 Standard", OsFamily::Windows, false),
        p("MacOS 10.15", OsFamily::MacOs, false),
        p("iOS 13.3", OsFamily::Ios, true),
        p("Android 10", OsFamily::Android, true),
        p("Ubuntu 12.04.5", OsFamily::Ubuntu, true),
        p("Ubuntu 14.04.3", OsFamily::Ubuntu, true),
        p("Ubuntu 16.04.4", OsFamily::Ubuntu, true),
        p("Ubuntu 18.04.1", OsFamily::Ubuntu, true),
        p("CentOS 6", OsFamily::CentOs, true),
        p("CentOS 7", OsFamily::CentOs, true),
    ];
    &PROFILES
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn seventeen_profiles_as_in_the_paper() {
        assert_eq!(all_profiles().len(), 17);
    }

    #[test]
    fn windows_and_macos_break_on_synack_payload() {
        for p in all_profiles() {
            let should_break = matches!(p.family, OsFamily::Windows | OsFamily::MacOs);
            assert_eq!(
                !p.ignores_synack_payload, should_break,
                "{} has wrong synack-payload behavior",
                p.name
            );
        }
    }

    #[test]
    fn named_shortcuts_resolve() {
        assert!(OsProfile::linux().ignores_synack_payload);
        assert!(!OsProfile::windows().ignores_synack_payload);
    }
}
