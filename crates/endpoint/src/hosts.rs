//! Client and server hosts: `netsim` endpoints wiring a TCP connection
//! to an application session.
//!
//! The [`ClientHost`] models the paper's *unmodified client*: it
//! connects, sends its protocol request, and reads the response, with
//! stock behaviors — checksum validation, SYN retransmission,
//! per-attempt timeouts, and application-level retries (DNS-over-TCP
//! clients retry on premature connection close, RFC 7766; the paper
//! tests with 3 total tries).
//!
//! Two *instrumentation knobs* ([`ClientHost::seq_adjust`],
//! [`ClientHost::drop_own_rst`]) reproduce the paper's §5 follow-up
//! experiments ("we instrumented a client-side request to decrement
//! the sequence number of the forbidden request by 1", "if we
//! instrument the client to drop this induced RST"). They default off;
//! an unmodified client never uses them.
//!
//! The [`ServerHost`] is a plain multi-connection server. Server-side
//! evasion is **not** implemented here — the whole point of the paper
//! is that the server's stack is also stock, and only a packet-level
//! shim (the `geneva` crate's `StrategicEndpoint`) rewrites what it
//! emits.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::conn::{BreakReason, TcpConn, TcpState};
use crate::profile::OsProfile;
use netsim::{Endpoint, Io};
use packet::{Packet, TcpFlags};
use std::collections::HashMap;

/// Client-side application session (one protocol exchange).
///
/// `Send` is a supertrait: boxed apps ride inside hosts that
/// `harness::pool` moves onto worker threads.
pub trait ClientApp: Send {
    /// The request bytes for the given attempt (0-based). DNS retries
    /// re-issue the same query; other protocols are single-attempt.
    /// Server-greets-first protocols (FTP, SMTP) return nothing here
    /// and speak through [`ClientApp::pending_output`] instead.
    fn request(&mut self, attempt: u32) -> Vec<u8>;

    /// Further bytes to send, polled after every received chunk —
    /// the mechanism for interactive protocols (FTP command/response,
    /// SMTP envelope exchange). Return `None` when nothing is ready.
    fn pending_output(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Feed response bytes as they arrive.
    fn on_data(&mut self, data: &[u8]);

    /// Has the correct, unaltered response been received (the paper's
    /// success criterion)?
    fn satisfied(&self) -> bool;

    /// Did we receive a censor block page or otherwise wrong content?
    fn poisoned(&self) -> bool {
        false
    }

    /// Total connection attempts allowed (DNS-over-TCP: 3).
    fn max_attempts(&self) -> u32 {
        1
    }

    /// Clear response state before a retry.
    fn reset_for_retry(&mut self) {}
}

/// Server-side application: a factory of per-connection sessions.
/// `Send` for the same reason as [`ClientApp`].
pub trait ServerApp: Send {
    /// Create a session for a freshly accepted connection.
    fn new_session(&mut self) -> Box<dyn ServerSession>;
}

/// One server-side protocol conversation. `Send` for the same reason
/// as [`ClientApp`].
pub trait ServerSession: Send {
    /// Bytes the server volunteers as soon as the handshake completes
    /// (FTP's `220` banner, SMTP's greeting). Default: silent.
    fn greeting(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// Called after every delivery with the *entire* client stream so
    /// far; returns any new bytes to transmit (empty = nothing yet).
    fn on_data(&mut self, stream_so_far: &[u8]) -> Vec<u8>;
}

/// Blanket adapter: a closure `Fn(&[u8]) -> Option<Vec<u8>>` acts as a
/// one-shot request→response server (handy in tests).
pub struct OneShotServer<F>(pub F);

impl<F> ServerApp for OneShotServer<F>
where
    F: Fn(&[u8]) -> Option<Vec<u8>> + Clone + Send + 'static,
{
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        Box::new(OneShotSession {
            f: self.0.clone(),
            done: false,
        })
    }
}

struct OneShotSession<F> {
    f: F,
    done: bool,
}

impl<F> ServerSession for OneShotSession<F>
where
    F: Fn(&[u8]) -> Option<Vec<u8>> + Send,
{
    fn on_data(&mut self, stream_so_far: &[u8]) -> Vec<u8> {
        if self.done {
            return Vec::new();
        }
        match (self.f)(stream_so_far) {
            Some(resp) => {
                self.done = true;
                resp
            }
            None => Vec::new(),
        }
    }
}

/// Final status of a client's exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Correct, unaltered response received — censorship evaded.
    Success,
    /// Connection torn down by a RST before completion.
    Reset,
    /// A block page (or corrupted content) was served.
    BlockPage,
    /// No (complete) response before the deadline — blackholed/stalled.
    Timeout,
    /// The client stack itself broke (e.g. SYN+ACK payload on Windows).
    StackBroken(BreakReason),
}

impl Outcome {
    /// Did the client get what it wanted?
    pub fn is_success(self) -> bool {
        self == Outcome::Success
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An unmodified client host.
pub struct ClientHost<A: ClientApp> {
    /// The application session.
    pub app: A,
    /// OS behavior profile.
    pub profile: OsProfile,
    addr: [u8; 4],
    base_port: u16,
    server: ([u8; 4], u16),
    isn_seed: u64,

    conn: Option<TcpConn>,
    attempt: u32,
    request_sent: bool,
    attempt_deadline: u64,
    next_syn_retx: u64,
    outcome: Option<Outcome>,

    /// Per-attempt deadline, microseconds (default 2 s).
    pub timeout_us: u64,
    /// SYN retransmission interval, microseconds (default 1 s).
    pub syn_retx_us: u64,

    /// INSTRUMENTATION (paper §5 follow-ups): add this to the sequence
    /// number of outgoing *data* packets. `-1` reproduces the
    /// desync-confirmation experiment. Default 0 (unmodified client).
    pub seq_adjust: i32,
    /// INSTRUMENTATION: drop outgoing RST packets (the "induced RST"
    /// ablation for Strategies 5/6). Default false.
    pub drop_own_rst: bool,
}

impl<A: ClientApp> ClientHost<A> {
    /// Build a client at `addr` targeting `server`, with deterministic
    /// per-attempt ISNs derived from `isn_seed`.
    pub fn new(
        app: A,
        profile: OsProfile,
        addr: [u8; 4],
        base_port: u16,
        server: ([u8; 4], u16),
        isn_seed: u64,
    ) -> Self {
        ClientHost {
            app,
            profile,
            addr,
            base_port,
            server,
            isn_seed,
            conn: None,
            attempt: 0,
            request_sent: false,
            attempt_deadline: 0,
            next_syn_retx: 0,
            outcome: None,
            timeout_us: 2_000_000,
            syn_retx_us: 1_000_000,
            seq_adjust: 0,
            drop_own_rst: false,
        }
    }

    /// The exchange's outcome (Timeout while still pending).
    pub fn outcome(&self) -> Outcome {
        self.outcome.unwrap_or(Outcome::Timeout)
    }

    /// Has the exchange concluded one way or another?
    pub fn finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// The connection currently in use, if any (tests/waterfalls).
    pub fn conn(&self) -> Option<&TcpConn> {
        self.conn.as_ref()
    }

    fn isn(&self, attempt: u32) -> u32 {
        (splitmix64(self.isn_seed ^ (u64::from(attempt) << 32)) >> 16) as u32
    }

    fn start_attempt(&mut self, now: u64, io: &mut Io) {
        let port = self.base_port.wrapping_add(self.attempt as u16);
        let mut conn = TcpConn::client(
            (self.addr, port),
            self.server,
            self.isn(self.attempt),
            self.profile,
        );
        let mut out = Vec::new();
        conn.open(&mut out);
        self.conn = Some(conn);
        self.request_sent = false;
        self.attempt_deadline = now + self.timeout_us;
        self.next_syn_retx = now + self.syn_retx_us;
        self.emit(out, io);
        io.wake_at(self.next_syn_retx.min(self.attempt_deadline));
    }

    fn emit(&mut self, out: Vec<Packet>, io: &mut Io) {
        for mut pkt in out {
            if self.drop_own_rst && pkt.flags().contains(TcpFlags::RST) {
                continue;
            }
            if self.seq_adjust != 0 && !pkt.payload.is_empty() {
                if let Some(tcp) = pkt.tcp_header_mut() {
                    tcp.seq = tcp.seq.wrapping_add(self.seq_adjust as u32);
                }
                pkt.finalize();
            }
            io.send(pkt);
        }
    }

    fn fail_or_retry(&mut self, failure: Outcome, now: u64, io: &mut Io) {
        if self.attempt + 1 < self.app.max_attempts() {
            self.attempt += 1;
            self.app.reset_for_retry();
            self.start_attempt(now, io);
        } else {
            self.outcome = Some(failure);
        }
    }

    /// Evaluate app/conn state after any packet or timer activity.
    fn settle(&mut self, now: u64, io: &mut Io) {
        if self.outcome.is_some() {
            return;
        }
        let Some(conn) = self.conn.as_mut() else {
            return;
        };

        // Pull freshly delivered bytes into the app.
        let data = conn.take_received();
        if !data.is_empty() {
            self.app.on_data(&data);
        }

        if self.app.satisfied() {
            self.outcome = Some(Outcome::Success);
            return;
        }
        if self.app.poisoned() {
            self.outcome = Some(Outcome::BlockPage);
            return;
        }

        // Send the request once the handshake completes.
        let established = conn.is_established();
        if established && !self.request_sent {
            self.request_sent = true;
            let request = self.app.request(self.attempt);
            if !request.is_empty() {
                let mut out = Vec::new();
                self.conn
                    .as_mut()
                    .expect("conn present")
                    .queue_data(&request, &mut out);
                self.emit(out, io);
            }
        }

        // Interactive protocols: drain whatever the app wants to say.
        if established {
            while let Some(bytes) = self.app.pending_output() {
                let mut out = Vec::new();
                self.conn
                    .as_mut()
                    .expect("conn present")
                    .queue_data(&bytes, &mut out);
                self.emit(out, io);
            }
        }

        // Handle breakage.
        let broken = self.conn.as_ref().and_then(|c| c.broken);
        match broken {
            Some(BreakReason::RstReceived) => self.fail_or_retry(Outcome::Reset, now, io),
            Some(reason @ BreakReason::SynAckPayload) => {
                self.outcome = Some(Outcome::StackBroken(reason));
            }
            None => {}
        }
    }
}

impl<A: ClientApp> Endpoint for ClientHost<A> {
    fn on_start(&mut self, now: u64, io: &mut Io) {
        self.start_attempt(now, io);
    }

    fn on_packet(&mut self, pkt: Packet, now: u64, io: &mut Io) {
        if self.outcome.is_some() {
            return;
        }
        // Unmodified stacks validate checksums; insertion packets with
        // corrupted checksums die here on EVERY operating system.
        if !pkt.checksums_ok() {
            return;
        }
        if let Some(conn) = self.conn.as_mut() {
            let mut out = Vec::new();
            conn.on_packet(&pkt, &mut out);
            self.emit(out, io);
        }
        self.settle(now, io);
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        if self.outcome.is_some() {
            return;
        }
        if now >= self.attempt_deadline {
            // Deadline: classify the stall.
            let failure = if self
                .conn
                .as_ref()
                .map(|c| c.broken.is_some())
                .unwrap_or(false)
            {
                Outcome::Reset
            } else {
                Outcome::Timeout
            };
            self.fail_or_retry(failure, now, io);
            return;
        }
        // Retransmission timer: SYN while connecting, unacked data
        // (or our sim-open SYN+ACK) afterwards.
        if now >= self.next_syn_retx {
            if let Some(conn) = self.conn.as_mut() {
                if conn.state == TcpState::SynSent
                    || conn.state == TcpState::SynRcvd
                    || conn.has_unacked()
                {
                    let mut out = Vec::new();
                    conn.retransmit_pending(&mut out);
                    self.emit(out, io);
                }
            }
            self.next_syn_retx = now + self.syn_retx_us;
        }
        io.wake_at(self.next_syn_retx.min(self.attempt_deadline));
        self.settle(now, io);
    }
}

/// A plain multi-connection server host.
pub struct ServerHost<A: ServerApp> {
    /// The application responder (session factory).
    pub app: A,
    addr: [u8; 4],
    port: u16,
    isn_seed: u64,
    conns: HashMap<([u8; 4], u16), ServerConn>,
}

struct ServerConn {
    conn: TcpConn,
    session: Box<dyn ServerSession>,
    request_buf: Vec<u8>,
    greeted: bool,
    responded: bool,
}

impl<A: ServerApp> ServerHost<A> {
    /// A server listening at `addr:port`.
    pub fn new(app: A, addr: [u8; 4], port: u16, isn_seed: u64) -> Self {
        ServerHost {
            app,
            addr,
            port,
            isn_seed,
            conns: HashMap::new(),
        }
    }

    /// Number of connections the server has seen.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Did any connection deliver a complete request and get a response?
    pub fn responded_any(&self) -> bool {
        self.conns.values().any(|c| c.responded)
    }

    /// The full client byte stream observed on each connection
    /// (diagnostics for tests and follow-up experiments).
    pub fn request_streams(&self) -> Vec<&[u8]> {
        self.conns
            .values()
            .map(|c| c.request_buf.as_slice())
            .collect()
    }
}

impl<A: ServerApp> Endpoint for ServerHost<A> {
    fn on_start(&mut self, _now: u64, _io: &mut Io) {}

    fn on_packet(&mut self, pkt: Packet, _now: u64, io: &mut Io) {
        if !pkt.checksums_ok() {
            return; // servers validate checksums too
        }
        let Some(tcp) = pkt.tcp_header() else { return };
        if tcp.dst_port != self.port {
            return;
        }
        let key = (pkt.ip.src, tcp.src_port);
        if !self.conns.contains_key(&key) {
            if !tcp.flags.is_syn() {
                return; // stray packet for an unknown connection
            }
            let isn = (splitmix64(
                self.isn_seed ^ u64::from(tcp.src_port) ^ ((self.conns.len() as u64) << 40),
            ) >> 16) as u32;
            let session = self.app.new_session();
            self.conns.insert(
                key,
                ServerConn {
                    conn: TcpConn::server((self.addr, self.port), isn, OsProfile::linux()),
                    session,
                    request_buf: Vec::new(),
                    greeted: false,
                    responded: false,
                },
            );
        }
        let entry = self.conns.get_mut(&key).expect("present");

        let mut out = Vec::new();
        entry.conn.on_packet(&pkt, &mut out);
        if entry.conn.is_established() && !entry.greeted {
            entry.greeted = true;
            let hello = entry.session.greeting();
            if !hello.is_empty() {
                entry.conn.queue_data(&hello, &mut out);
            }
        }
        let data = entry.conn.take_received();
        if !data.is_empty() || entry.conn.is_established() {
            if !data.is_empty() {
                entry.request_buf.extend_from_slice(&data);
            }
            let reply = entry.session.on_data(&entry.request_buf);
            if !reply.is_empty() {
                entry.responded = true;
                entry.conn.queue_data(&reply, &mut out);
            }
        }
        for pkt in out {
            io.send(pkt);
        }
        if entry.conn.has_unacked() {
            io.wake_at(_now + 700_000);
        }
    }

    fn on_wake(&mut self, now: u64, io: &mut Io) {
        let mut any_pending = false;
        for entry in self.conns.values_mut() {
            if entry.conn.has_unacked() {
                let mut out = Vec::new();
                entry.conn.retransmit_pending(&mut out);
                for pkt in out {
                    io.send(pkt);
                }
                any_pending = true;
            }
        }
        if any_pending {
            io.wake_at(now + 700_000);
        }
    }
}

// Boxed sessions plug directly into the hosts: `Box<dyn ClientApp>`
// and `Box<dyn ServerApp>` are themselves apps.
impl ClientApp for Box<dyn ClientApp> {
    fn request(&mut self, attempt: u32) -> Vec<u8> {
        (**self).request(attempt)
    }
    fn pending_output(&mut self) -> Option<Vec<u8>> {
        (**self).pending_output()
    }
    fn on_data(&mut self, data: &[u8]) {
        (**self).on_data(data)
    }
    fn satisfied(&self) -> bool {
        (**self).satisfied()
    }
    fn poisoned(&self) -> bool {
        (**self).poisoned()
    }
    fn max_attempts(&self) -> u32 {
        (**self).max_attempts()
    }
    fn reset_for_retry(&mut self) {
        (**self).reset_for_retry()
    }
}

impl ServerApp for Box<dyn ServerApp> {
    fn new_session(&mut self) -> Box<dyn ServerSession> {
        (**self).new_session()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use netsim::sim::NullMiddlebox;
    use netsim::Simulation;

    /// A toy echo-ish protocol: client sends a fixed line, server
    /// replies with a fixed banner once the full line arrived.
    struct ToyClient {
        got: Vec<u8>,
        attempts_allowed: u32,
        requests_made: u32,
    }

    impl ClientApp for ToyClient {
        fn request(&mut self, _attempt: u32) -> Vec<u8> {
            self.requests_made += 1;
            b"HELLO toy\r\n".to_vec()
        }
        fn on_data(&mut self, data: &[u8]) {
            self.got.extend_from_slice(data);
        }
        fn satisfied(&self) -> bool {
            self.got.ends_with(b"WORLD\r\n")
        }
        fn max_attempts(&self) -> u32 {
            self.attempts_allowed
        }
        fn reset_for_retry(&mut self) {
            self.got.clear();
        }
    }

    fn toy_server_app() -> OneShotServer<impl Fn(&[u8]) -> Option<Vec<u8>> + Clone> {
        // Strict like a real parser: a request shifted by one byte
        // (the seq_adjust experiment) must NOT be recognized.
        OneShotServer(|request: &[u8]| {
            (request.starts_with(b"HELLO") && request.windows(2).any(|w| w == b"\r\n"))
                .then(|| b"WORLD\r\n".to_vec())
        })
    }

    const CLIENT_ADDR: [u8; 4] = [10, 0, 0, 1];
    const SERVER_ADDR: [u8; 4] = [93, 184, 216, 34];

    fn toy_client(attempts: u32) -> ClientHost<ToyClient> {
        ClientHost::new(
            ToyClient {
                got: vec![],
                attempts_allowed: attempts,
                requests_made: 0,
            },
            OsProfile::linux(),
            CLIENT_ADDR,
            40000,
            (SERVER_ADDR, 7777),
            42,
        )
    }

    fn toy_server() -> ServerHost<impl ServerApp> {
        ServerHost::new(toy_server_app(), SERVER_ADDR, 7777, 99)
    }

    #[test]
    fn full_exchange_succeeds_without_censor() {
        let mut sim = Simulation::new(toy_client(1), toy_server(), NullMiddlebox);
        sim.run(10_000_000);
        assert_eq!(sim.client.outcome(), Outcome::Success);
        assert!(sim.server.responded_any());
    }

    #[test]
    fn rst_injection_fails_without_retries() {
        /// Injects a RST to the client as soon as client data crosses.
        struct RstOnData;
        impl netsim::Middlebox for RstOnData {
            fn process(
                &mut self,
                pkt: &Packet,
                dir: netsim::Direction,
                _now: u64,
            ) -> netsim::Verdict {
                let mut v = netsim::Verdict::pass(pkt.clone());
                if dir == netsim::Direction::ToServer && !pkt.payload.is_empty() {
                    let tcp = pkt.tcp_header().unwrap();
                    let mut rst = Packet::tcp(
                        pkt.ip.dst,
                        tcp.dst_port,
                        pkt.ip.src,
                        tcp.src_port,
                        TcpFlags::RST,
                        tcp.ack,
                        0,
                        vec![],
                    );
                    rst.finalize();
                    v.inject_to_client.push(rst);
                }
                v
            }
        }
        let mut sim = Simulation::new(toy_client(1), toy_server(), RstOnData);
        sim.run(30_000_000);
        assert_eq!(sim.client.outcome(), Outcome::Reset);
    }

    #[test]
    fn retries_open_new_connections_with_new_ports() {
        /// RSTs the first two connections, lets the third through.
        struct RstFirstTwo {
            seen_ports: std::collections::HashSet<u16>,
        }
        impl netsim::Middlebox for RstFirstTwo {
            fn process(
                &mut self,
                pkt: &Packet,
                dir: netsim::Direction,
                _now: u64,
            ) -> netsim::Verdict {
                let mut v = netsim::Verdict::pass(pkt.clone());
                if dir == netsim::Direction::ToServer && !pkt.payload.is_empty() {
                    let tcp = pkt.tcp_header().unwrap();
                    self.seen_ports.insert(tcp.src_port);
                    if self.seen_ports.len() <= 2 {
                        let mut rst = Packet::tcp(
                            pkt.ip.dst,
                            tcp.dst_port,
                            pkt.ip.src,
                            tcp.src_port,
                            TcpFlags::RST,
                            tcp.ack,
                            0,
                            vec![],
                        );
                        rst.finalize();
                        v.inject_to_client.push(rst);
                    }
                }
                v
            }
        }
        let mut sim = Simulation::new(
            toy_client(3),
            toy_server(),
            RstFirstTwo {
                seen_ports: Default::default(),
            },
        );
        sim.run(60_000_000);
        assert_eq!(sim.client.outcome(), Outcome::Success);
        assert_eq!(sim.client.app.requests_made, 3);
        assert!(sim.server.connection_count() >= 3);
    }

    #[test]
    fn blackhole_times_out() {
        /// Swallows all client data packets (Iran-style, simplified).
        struct Blackhole;
        impl netsim::Middlebox for Blackhole {
            fn process(
                &mut self,
                pkt: &Packet,
                dir: netsim::Direction,
                _now: u64,
            ) -> netsim::Verdict {
                if dir == netsim::Direction::ToServer && !pkt.payload.is_empty() {
                    netsim::Verdict::drop()
                } else {
                    netsim::Verdict::pass(pkt.clone())
                }
            }
        }
        let mut sim = Simulation::new(toy_client(1), toy_server(), Blackhole);
        sim.run(30_000_000);
        assert_eq!(sim.client.outcome(), Outcome::Timeout);
    }

    #[test]
    fn corrupted_checksum_packets_are_invisible_to_endpoints() {
        /// Injects a payload-bearing garbage packet with a broken
        /// checksum at handshake time; the client must shrug it off.
        struct BadChecksumInjector {
            done: bool,
        }
        impl netsim::Middlebox for BadChecksumInjector {
            fn process(
                &mut self,
                pkt: &Packet,
                dir: netsim::Direction,
                _now: u64,
            ) -> netsim::Verdict {
                let mut v = netsim::Verdict::pass(pkt.clone());
                if dir == netsim::Direction::ToClient && !self.done {
                    self.done = true;
                    let tcp = pkt.tcp_header().unwrap();
                    let mut junk = Packet::tcp(
                        pkt.ip.src,
                        tcp.src_port,
                        pkt.ip.dst,
                        tcp.dst_port,
                        TcpFlags::SYN_ACK,
                        tcp.seq,
                        tcp.ack,
                        b"JUNKJUNK".to_vec(),
                    );
                    junk.finalize();
                    junk.tcp_header_mut().unwrap().checksum ^= 0xFFFF;
                    v.inject_to_client.push(junk);
                }
                v
            }
        }
        // Even a Windows client (which would break on a SYN+ACK payload)
        // survives, because the checksum fails validation first.
        let mut client = toy_client(1);
        client.profile = OsProfile::windows();
        let mut sim = Simulation::new(client, toy_server(), BadChecksumInjector { done: false });
        sim.run(10_000_000);
        assert_eq!(sim.client.outcome(), Outcome::Success);
    }

    #[test]
    fn seq_adjust_desynchronizes_from_server() {
        let mut client = toy_client(1);
        client.seq_adjust = -1;
        let mut sim = Simulation::new(client, toy_server(), NullMiddlebox);
        sim.run(10_000_000);
        // The server can't reassemble the shifted request, so no
        // response ever comes: the client times out.
        assert_eq!(sim.client.outcome(), Outcome::Timeout);
        assert!(!sim.server.responded_any());
    }
}
