//! Wrap-aware TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a 2³² ring; ordinary `<` breaks at the
//! wrap. These helpers implement the standard "serial number" compare:
//! `a < b` iff `(b - a) mod 2³²` is in `(0, 2³¹)`.

/// `a < b` on the sequence ring.
pub fn seq_lt(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

/// `a <= b` on the sequence ring.
pub fn seq_leq(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` on the sequence ring.
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` on the sequence ring.
pub fn seq_geq(a: u32, b: u32) -> bool {
    a == b || seq_gt(a, b)
}

/// Is `x` within the half-open window `[lo, lo + len)` on the ring?
pub fn seq_in_window(x: u32, lo: u32, len: u32) -> bool {
    len != 0 && x.wrapping_sub(lo) < len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_leq(5, 5));
        assert!(seq_gt(9, 3));
        assert!(seq_geq(9, 9));
    }

    #[test]
    fn wraparound_ordering() {
        assert!(seq_lt(0xFFFF_FFF0, 0x10)); // across the wrap
        assert!(seq_gt(0x10, 0xFFFF_FFF0));
        assert!(seq_lt(0xFFFF_FFFF, 0));
    }

    #[test]
    fn window_membership() {
        assert!(seq_in_window(5, 5, 10));
        assert!(seq_in_window(14, 5, 10));
        assert!(!seq_in_window(15, 5, 10));
        assert!(!seq_in_window(4, 5, 10));
        assert!(seq_in_window(2, 0xFFFF_FFFE, 10)); // window spans the wrap
        assert!(!seq_in_window(9, 0xFFFF_FFFE, 10));
        assert!(!seq_in_window(0, 0, 0)); // empty window holds nothing
    }
}
