//! Wrap-aware TCP sequence-number arithmetic (RFC 793 §3.3).
//!
//! Sequence numbers live on a 2³² ring; ordinary `<` breaks at the
//! wrap. These helpers implement the standard "serial number" compare:
//! `a < b` iff `(b - a) mod 2³²` is in `(0, 2³¹)`.

/// `a < b` on the sequence ring.
///
/// Serial-number comparison (RFC 1982) is undefined when the two
/// numbers sit exactly half the ring apart — both `a < b` and `b < a`
/// would be false. Debug builds reject the ambiguous compare.
pub fn seq_lt(a: u32, b: u32) -> bool {
    debug_assert!(
        b.wrapping_sub(a) != 0x8000_0000,
        "ambiguous compare: {a:#010x} and {b:#010x} are antipodal on the sequence ring"
    );
    a != b && b.wrapping_sub(a) < 0x8000_0000
}

/// `a <= b` on the sequence ring.
pub fn seq_leq(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// `a > b` on the sequence ring.
pub fn seq_gt(a: u32, b: u32) -> bool {
    seq_lt(b, a)
}

/// `a >= b` on the sequence ring.
pub fn seq_geq(a: u32, b: u32) -> bool {
    a == b || seq_gt(a, b)
}

/// Is `x` within the half-open window `[lo, lo + len)` on the ring?
///
/// A window wider than half the ring would make membership disagree
/// with serial-number ordering; real TCP windows (≤ 2¹⁶ · 2¹⁴ with
/// scaling) are far inside the bound.
pub fn seq_in_window(x: u32, lo: u32, len: u32) -> bool {
    debug_assert!(
        len <= 0x8000_0000,
        "window of {len} bytes covers more than half the sequence ring"
    );
    len != 0 && x.wrapping_sub(lo) < len
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn plain_ordering() {
        assert!(seq_lt(1, 2));
        assert!(!seq_lt(2, 1));
        assert!(!seq_lt(5, 5));
        assert!(seq_leq(5, 5));
        assert!(seq_gt(9, 3));
        assert!(seq_geq(9, 9));
    }

    #[test]
    fn wraparound_ordering() {
        assert!(seq_lt(0xFFFF_FFF0, 0x10)); // across the wrap
        assert!(seq_gt(0x10, 0xFFFF_FFF0));
        assert!(seq_lt(0xFFFF_FFFF, 0));
    }

    #[test]
    fn window_membership() {
        assert!(seq_in_window(5, 5, 10));
        assert!(seq_in_window(14, 5, 10));
        assert!(!seq_in_window(15, 5, 10));
        assert!(!seq_in_window(4, 5, 10));
        assert!(seq_in_window(2, 0xFFFF_FFFE, 10)); // window spans the wrap
        assert!(!seq_in_window(9, 0xFFFF_FFFE, 10));
        assert!(!seq_in_window(0, 0, 0)); // empty window holds nothing
    }

    #[test]
    fn ordering_is_antisymmetric_off_the_antipode() {
        // For any non-antipodal pair, exactly one of <, ==, > holds.
        for (a, b) in [(0u32, 1u32), (0xFFFF_FFF0, 0x10), (7, 7), (0, 0x7FFF_FFFF)] {
            let outcomes = [seq_lt(a, b), a == b, seq_gt(a, b)]
                .iter()
                .filter(|&&x| x)
                .count();
            assert_eq!(outcomes, 1, "trichotomy failed for ({a:#x}, {b:#x})");
        }
    }

    #[test]
    fn half_ring_window_is_still_accepted() {
        // The largest unambiguous window: exactly half the ring.
        assert!(seq_in_window(0x7FFF_FFFF, 0, 0x8000_0000));
        assert!(!seq_in_window(0x8000_0000, 0, 0x8000_0000));
    }

    #[test]
    #[should_panic(expected = "antipodal")]
    #[cfg(debug_assertions)]
    fn antipodal_compare_panics_in_debug_builds() {
        let _ = seq_lt(0, 0x8000_0000);
    }
}
