//! In-order byte-stream reassembly from (possibly out-of-order,
//! possibly overlapping) TCP segments.
//!
//! Used by endpoint stacks to deliver application data, and reused by
//! censor models that *can* reassemble (the GFW's HTTP box) — while
//! boxes that cannot (FTP, SMTP, India, Iran, Kazakhstan) simply don't
//! instantiate one, which is exactly the deficiency Strategy 8
//! exploits.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::seq::seq_lt;
use std::collections::BTreeMap;

/// Reassembles a byte stream starting at a given initial sequence
/// number. Segments may arrive out of order and overlap; bytes are
/// released strictly in order.
#[derive(Debug, Clone)]
pub struct StreamAssembler {
    /// Sequence number of the next byte to release.
    next_seq: u32,
    /// Out-of-order segments, keyed by offset from the initial seq.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Offset (from initial seq) of `next_seq`, for key computation.
    base_offset: u64,
    initial_seq: u32,
    /// Total buffered out-of-order bytes (bounded).
    buffered: usize,
    /// Cap on buffered out-of-order data.
    max_buffer: usize,
}

impl StreamAssembler {
    /// New assembler expecting the first byte at `initial_seq`.
    pub fn new(initial_seq: u32) -> Self {
        StreamAssembler {
            next_seq: initial_seq,
            pending: BTreeMap::new(),
            base_offset: 0,
            initial_seq,
            buffered: 0,
            max_buffer: 1 << 20,
        }
    }

    /// Sequence number of the next in-order byte.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Force the expected sequence number (used by censor resync logic,
    /// which is the paper's entire attack surface). Discards pending
    /// out-of-order data.
    pub fn resync_to(&mut self, seq: u32) {
        self.next_seq = seq;
        self.initial_seq = seq;
        self.base_offset = 0;
        self.pending.clear();
        self.buffered = 0;
    }

    /// Offer a segment; returns any newly contiguous bytes.
    pub fn push(&mut self, seq: u32, data: &[u8]) -> Vec<u8> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut seq = seq;
        let mut data = data;
        // Trim the part that duplicates already-released bytes.
        if seq_lt(seq, self.next_seq) {
            let overlap = self.next_seq.wrapping_sub(seq) as usize;
            if overlap >= data.len() {
                return Vec::new(); // wholly stale
            }
            data = &data[overlap..];
            seq = self.next_seq;
        }
        // Store at its stream offset.
        let offset = self.base_offset + u64::from(seq.wrapping_sub(self.next_seq));
        if self.buffered + data.len() <= self.max_buffer {
            self.buffered += data.len();
            // Keep the longest data at an offset (handles retransmits).
            let entry = self.pending.entry(offset).or_default();
            if data.len() > entry.len() {
                *entry = data.to_vec();
            }
        }
        self.drain()
    }

    fn drain(&mut self) -> Vec<u8> {
        let mut released = Vec::new();
        while let Some((&offset, _)) = self.pending.first_key_value() {
            if offset > self.base_offset {
                break; // gap
            }
            let (offset, chunk) = self
                .pending
                .pop_first()
                .expect("first_key_value saw an entry");
            self.buffered -= chunk.len();
            let skip = (self.base_offset - offset) as usize;
            if skip >= chunk.len() {
                continue; // fully shadowed by earlier chunks
            }
            let fresh = &chunk[skip..];
            released.extend_from_slice(fresh);
            self.base_offset += fresh.len() as u64;
            self.next_seq = self.next_seq.wrapping_add(fresh.len() as u32);
        }
        released
    }

    /// Is out-of-order data waiting for a gap to fill?
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut a = StreamAssembler::new(100);
        assert_eq!(a.push(100, b"hel"), b"hel");
        assert_eq!(a.push(103, b"lo"), b"lo");
        assert_eq!(a.next_seq(), 105);
    }

    #[test]
    fn out_of_order_hole_fill() {
        let mut a = StreamAssembler::new(0);
        assert_eq!(a.push(3, b"lo!"), b"");
        assert!(a.has_pending());
        assert_eq!(a.push(0, b"hel"), b"hello!");
        assert!(!a.has_pending());
    }

    #[test]
    fn duplicate_and_overlap_trimmed() {
        let mut a = StreamAssembler::new(10);
        assert_eq!(a.push(10, b"abcd"), b"abcd");
        assert_eq!(a.push(10, b"abcd"), b""); // pure retransmit
        assert_eq!(a.push(12, b"cdef"), b"ef"); // overlapping tail
    }

    #[test]
    fn one_byte_gap_blocks_everything() {
        // This is the GFW desync-by-1 mechanism: a censor resynced one
        // byte behind never releases the real request bytes.
        let mut a = StreamAssembler::new(1000);
        assert_eq!(a.push(1001, b"GET /?q=forbidden"), b"");
        assert!(a.has_pending());
        assert_eq!(a.next_seq(), 1000);
    }

    #[test]
    fn resync_discards_and_retargets() {
        let mut a = StreamAssembler::new(5);
        a.push(50, b"future");
        a.resync_to(200);
        assert!(!a.has_pending());
        assert_eq!(a.push(200, b"now"), b"now");
    }

    #[test]
    fn wraparound_sequence_numbers() {
        let mut a = StreamAssembler::new(0xFFFF_FFFE);
        assert_eq!(a.push(0xFFFF_FFFE, b"ab"), b"ab"); // crosses the wrap
        assert_eq!(a.next_seq(), 0);
        assert_eq!(a.push(0, b"cd"), b"cd");
        assert_eq!(a.next_seq(), 2);
    }

    #[test]
    fn stale_segment_fully_before_cursor() {
        let mut a = StreamAssembler::new(100);
        a.push(100, b"0123456789");
        assert_eq!(a.push(95, b"abc"), b""); // entirely old
        assert_eq!(a.next_seq(), 110);
    }

    #[test]
    fn buffer_cap_drops_excess() {
        let mut a = StreamAssembler::new(0);
        a.max_buffer = 8;
        assert_eq!(a.push(100, &[1u8; 16]), b""); // over cap, dropped
        assert_eq!(a.push(0, b"ok"), b"ok"); // in-order still flows
    }
}
