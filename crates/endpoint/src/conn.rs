//! The endpoint TCP state machine.
//!
//! A deliberately compact but *behaviorally faithful* subset of RFC
//! 793, covering exactly the segment-arrival rules the paper's eleven
//! strategies lean on:
//!
//! * **SYN-SENT**: a RST without ACK is ignored (Strategy 1's inert
//!   RST); a SYN+ACK with an unacceptable ack number elicits a RST
//!   *with seq = the bogus ack* and the connection stays half-open
//!   (Strategies 3–7's "induced RST"); a bare SYN triggers
//!   **simultaneous open** — the client answers with a SYN+ACK whose
//!   sequence number is *not* incremented (the GFW's resync bug,
//!   Strategies 1–3); packets with none of ACK/RST/SYN are dropped
//!   (Strategy 6's FIN-with-payload, Strategy 11's null flags).
//! * **SYN-RECEIVED** (after simultaneous open): an acceptable ACK
//!   completes the handshake; a duplicate SYN triggers a SYN+ACK
//!   retransmission.
//! * **ESTABLISHED**: in-window RSTs tear the connection down (this is
//!   how censorship manifests); stray SYNs get a challenge ACK; data
//!   is reassembled and acknowledged; the send side is segmented by
//!   the peer's MSS *and advertised window* — a SYN+ACK advertising a
//!   10-byte window makes an unmodified client split its request
//!   (Strategy 8 / brdgrd).
//!
//! Retransmission is limited to the SYN (driven by the host's timer);
//! the simulated path is lossless except for deliberate censor drops,
//! which are precisely the failures the experiments measure.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use crate::profile::OsProfile;
use crate::reassembly::StreamAssembler;
use crate::seq::{seq_in_window, seq_lt};
use packet::{Packet, TcpFlags, TcpOption};

/// Connection state (the subset of RFC 793 states we traverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Waiting for a peer SYN (server).
    Listen,
    /// SYN sent, waiting for SYN+ACK or SYN (client).
    SynSent,
    /// SYN+ACK sent (server, or client after simultaneous open).
    SynRcvd,
    /// Handshake complete; data flows.
    Established,
    /// Peer closed its direction (we keep receiving-side simplicity).
    CloseWait,
    /// Torn down.
    Reset,
}

/// Why a connection stopped working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakReason {
    /// An acceptable RST arrived.
    RstReceived,
    /// A payload-bearing SYN+ACK broke this OS's handshake
    /// (Windows/macOS behavior from paper §7).
    SynAckPayload,
}

/// Which role this endpoint plays (affects ISN bookkeeping only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates the connection.
    Client,
    /// Accepts the connection.
    Server,
}

/// One TCP connection endpoint.
#[derive(Debug, Clone)]
pub struct TcpConn {
    /// Current state.
    pub state: TcpState,
    /// OS behavior profile.
    pub profile: OsProfile,
    role: Role,
    local: ([u8; 4], u16),
    remote: ([u8; 4], u16),

    iss: u32,
    snd_nxt: u32,
    snd_una: u32,
    irs: u32,
    rcv_nxt: u32,

    /// Peer's advertised window, already scaled.
    peer_window: u32,
    peer_wscale: u8,
    wscale_negotiated: bool,
    /// Effective outgoing MSS (min of ours and the peer's option).
    mss: u16,

    send_queue: Vec<u8>,
    /// Bytes of `send_queue` already emitted onto the wire.
    sent_off: usize,
    /// Stream seq of `send_queue[0]`.
    send_base: u32,

    asm: Option<StreamAssembler>,
    received: Vec<u8>,
    /// Set when the connection broke.
    pub broken: Option<BreakReason>,
    /// Did the handshake complete via simultaneous open?
    pub via_simultaneous_open: bool,
    /// Has the peer sent FIN?
    pub peer_fin: bool,
}

const OWN_WINDOW: u16 = 64240;
const OWN_MSS: u16 = 1460;
const OWN_WSCALE: u8 = 7;

impl TcpConn {
    /// A client connection; call [`TcpConn::open`] to emit the SYN.
    pub fn client(
        local: ([u8; 4], u16),
        remote: ([u8; 4], u16),
        isn: u32,
        profile: OsProfile,
    ) -> Self {
        TcpConn::new(Role::Client, local, remote, isn, profile)
    }

    /// A listening server endpoint.
    pub fn server(local: ([u8; 4], u16), isn: u32, profile: OsProfile) -> Self {
        let mut conn = TcpConn::new(Role::Server, local, ([0; 4], 0), isn, profile);
        conn.state = TcpState::Listen;
        conn
    }

    fn new(
        role: Role,
        local: ([u8; 4], u16),
        remote: ([u8; 4], u16),
        isn: u32,
        profile: OsProfile,
    ) -> Self {
        TcpConn {
            state: TcpState::SynSent, // client default; server overrides
            profile,
            role,
            local,
            remote,
            iss: isn,
            snd_nxt: isn,
            snd_una: isn,
            irs: 0,
            rcv_nxt: 0,
            peer_window: 0,
            peer_wscale: 0,
            wscale_negotiated: false,
            mss: OWN_MSS,
            send_queue: Vec::new(),
            sent_off: 0,
            send_base: isn.wrapping_add(1),
            asm: None,
            received: Vec::new(),
            broken: None,
            via_simultaneous_open: false,
            peer_fin: false,
        }
    }

    /// Is the handshake complete (data may flow)?
    pub fn is_established(&self) -> bool {
        matches!(self.state, TcpState::Established | TcpState::CloseWait)
    }

    /// Local (addr, port).
    pub fn local(&self) -> ([u8; 4], u16) {
        self.local
    }

    /// Remote (addr, port) — meaningful once known.
    pub fn remote(&self) -> ([u8; 4], u16) {
        self.remote
    }

    /// Our initial send sequence number.
    pub fn iss(&self) -> u32 {
        self.iss
    }

    /// Sequence number of the next byte we will send.
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Sequence number of the next byte we expect from the peer
    /// (exposed for instrumented probes, e.g. the §6 TTL experiment).
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Take all application bytes received so far.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.received)
    }

    /// Client: emit the opening SYN.
    pub fn open(&mut self, out: &mut Vec<Packet>) {
        debug_assert_eq!(self.role, Role::Client);
        self.state = TcpState::SynSent;
        let mut syn = self.mk(TcpFlags::SYN, self.iss, 0, vec![]);
        Self::add_syn_options(&mut syn);
        self.snd_nxt = self.iss.wrapping_add(1);
        out.push(syn);
    }

    /// Client: retransmit the SYN (host timer-driven).
    pub fn retransmit_syn(&mut self, out: &mut Vec<Packet>) {
        if self.state == TcpState::SynSent {
            let mut syn = self.mk(TcpFlags::SYN, self.iss, 0, vec![]);
            Self::add_syn_options(&mut syn);
            out.push(syn);
        }
    }

    /// Is any transmitted data still unacknowledged (or queued)?
    pub fn has_unacked(&self) -> bool {
        self.snd_una != self.snd_nxt || self.sent_off < self.send_queue.len()
    }

    /// Timer-driven retransmission: resend whatever the peer hasn't
    /// acknowledged — the SYN in SYN-SENT, our SYN+ACK in
    /// SYN-RECEIVED, or the oldest outstanding data segment once
    /// established. This is what lets exchanges survive the
    /// fault-injected lossy links of the robustness experiments.
    pub fn retransmit_pending(&mut self, out: &mut Vec<Packet>) {
        match self.state {
            TcpState::SynSent => self.retransmit_syn(out),
            TcpState::SynRcvd => {
                let mut syn_ack = self.mk(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, vec![]);
                Self::add_syn_options(&mut syn_ack);
                out.push(syn_ack);
            }
            TcpState::Established | TcpState::CloseWait => {
                if self.snd_una != self.snd_nxt {
                    let offset = self.snd_una.wrapping_sub(self.send_base) as usize;
                    if offset < self.sent_off {
                        let end = self.sent_off.min(offset + usize::from(self.mss));
                        let payload = self.send_queue[offset..end].to_vec();
                        let pkt = self.mk(TcpFlags::PSH_ACK, self.snd_una, self.rcv_nxt, payload);
                        out.push(pkt);
                    }
                } else {
                    // Window may have been updated while we were idle.
                    self.pump(out);
                }
            }
            _ => {}
        }
    }

    fn add_syn_options(pkt: &mut Packet) {
        let header = pkt.tcp_header_mut().expect("syn is tcp");
        header.options = vec![
            TcpOption::Mss(OWN_MSS),
            TcpOption::SackPermitted,
            TcpOption::WindowScale(OWN_WSCALE),
        ];
        pkt.finalize();
    }

    /// Queue application data and emit whatever the window allows.
    pub fn queue_data(&mut self, data: &[u8], out: &mut Vec<Packet>) {
        self.send_queue.extend_from_slice(data);
        self.pump(out);
    }

    /// Are all queued bytes acknowledged by the peer?
    pub fn all_sent_and_acked(&self) -> bool {
        self.sent_off == self.send_queue.len() && self.snd_una == self.snd_nxt
    }

    fn effective_peer_window(&self) -> u32 {
        self.peer_window
    }

    /// Emit as much queued data as MSS and the peer window allow.
    fn pump(&mut self, out: &mut Vec<Packet>) {
        if !self.is_established() {
            return;
        }
        loop {
            let remaining = self.send_queue.len() - self.sent_off;
            if remaining == 0 {
                break;
            }
            let in_flight = self.snd_nxt.wrapping_sub(self.snd_una);
            let window = self.effective_peer_window();
            if in_flight >= window {
                break; // window full; wait for ACKs
            }
            let room = (window - in_flight) as usize;
            let chunk = remaining.min(room).min(usize::from(self.mss));
            if chunk == 0 {
                break;
            }
            let payload = self.send_queue[self.sent_off..self.sent_off + chunk].to_vec();
            let seq = self.snd_nxt;
            let pkt = self.mk(TcpFlags::PSH_ACK, seq, self.rcv_nxt, payload);
            self.sent_off += chunk;
            self.snd_nxt = self.snd_nxt.wrapping_add(chunk as u32);
            out.push(pkt);
        }
    }

    /// Process one delivered (checksum-valid) packet.
    pub fn on_packet(&mut self, pkt: &Packet, out: &mut Vec<Packet>) {
        let Some(tcp) = pkt.tcp_header() else { return };
        // Port match (server in LISTEN accepts any remote).
        if tcp.dst_port != self.local.1 {
            return;
        }
        if self.state != TcpState::Listen && (pkt.ip.src, tcp.src_port) != self.remote {
            return;
        }
        let tcp = tcp.clone();
        match self.state {
            TcpState::Listen => self.in_listen(pkt, &tcp, out),
            TcpState::SynSent => self.in_syn_sent(pkt, &tcp, out),
            TcpState::SynRcvd => self.in_syn_rcvd(pkt, &tcp, out),
            TcpState::Established | TcpState::CloseWait => self.in_established(pkt, &tcp, out),
            TcpState::Reset => {}
        }
    }

    fn learn_peer_options(&mut self, tcp: &packet::TcpHeader, is_syn: bool) {
        if is_syn {
            for option in &tcp.options {
                match option {
                    TcpOption::Mss(mss) => self.mss = self.mss.min(*mss).max(1),
                    TcpOption::WindowScale(s) => {
                        self.peer_wscale = (*s).min(14);
                        self.wscale_negotiated = true;
                    }
                    _ => {}
                }
            }
            // Window in a SYN/SYN+ACK is never scaled.
            self.peer_window = u32::from(tcp.window);
        } else {
            let shift = if self.wscale_negotiated {
                self.peer_wscale
            } else {
                0
            };
            self.peer_window = u32::from(tcp.window) << shift;
        }
    }

    fn in_listen(&mut self, pkt: &Packet, tcp: &packet::TcpHeader, out: &mut Vec<Packet>) {
        if !tcp.flags.is_syn() {
            return; // LISTEN ignores everything but a fresh SYN
        }
        self.remote = (pkt.ip.src, tcp.src_port);
        self.irs = tcp.seq;
        self.rcv_nxt = tcp.seq.wrapping_add(1);
        self.asm = Some(StreamAssembler::new(self.rcv_nxt));
        self.learn_peer_options(tcp, true);
        let mut syn_ack = self.mk(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, vec![]);
        Self::add_syn_options(&mut syn_ack);
        self.snd_nxt = self.iss.wrapping_add(1);
        self.state = TcpState::SynRcvd;
        out.push(syn_ack);
    }

    fn in_syn_sent(&mut self, pkt: &Packet, tcp: &packet::TcpHeader, out: &mut Vec<Packet>) {
        let flags = tcp.flags;
        let has_ack = flags.contains(TcpFlags::ACK);
        // 1. ACK acceptability (RFC 793 p.66).
        if has_ack {
            let acceptable = tcp.ack == self.snd_nxt;
            if !acceptable {
                if flags.contains(TcpFlags::RST) {
                    return; // RST with bad ack: drop
                }
                // Induced RST: <SEQ=SEG.ACK><CTL=RST>. The connection
                // STAYS half-open — Strategies 3–7 depend on both facts.
                let rst = self.mk(TcpFlags::RST, tcp.ack, 0, vec![]);
                out.push(rst);
                return;
            }
        }
        // 2. RST.
        if flags.contains(TcpFlags::RST) {
            if has_ack {
                self.state = TcpState::Reset;
                self.broken = Some(BreakReason::RstReceived);
            }
            // A RST *without* ACK in SYN-SENT is ignored by every modern
            // stack (Strategy 1's inert RST).
            return;
        }
        // 3. SYN.
        if flags.contains(TcpFlags::SYN) {
            if has_ack && !pkt.payload.is_empty() && !self.profile.ignores_synack_payload {
                // Windows/macOS: payload on SYN+ACK wrecks the handshake.
                self.state = TcpState::Reset;
                self.broken = Some(BreakReason::SynAckPayload);
                let rst = self.mk(TcpFlags::RST, tcp.ack, 0, vec![]);
                out.push(rst);
                return;
            }
            self.irs = tcp.seq;
            self.rcv_nxt = tcp.seq.wrapping_add(1);
            self.asm = Some(StreamAssembler::new(self.rcv_nxt));
            self.learn_peer_options(tcp, true);
            if has_ack {
                // Normal SYN+ACK: complete the handshake.
                self.snd_una = tcp.ack;
                self.state = TcpState::Established;
                let ack = self.mk(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, vec![]);
                out.push(ack);
                self.pump(out);
            } else {
                // Simultaneous open: reply SYN+ACK with the UN-incremented
                // sequence number (the GFW resync bug's precondition).
                self.via_simultaneous_open = true;
                let mut syn_ack = self.mk(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, vec![]);
                Self::add_syn_options(&mut syn_ack);
                self.state = TcpState::SynRcvd;
                out.push(syn_ack);
            }
        }
        // 4. No ACK, no RST, no SYN: drop (null flags, FIN-with-payload…).
    }

    fn in_syn_rcvd(&mut self, pkt: &Packet, tcp: &packet::TcpHeader, out: &mut Vec<Packet>) {
        let flags = tcp.flags;
        if flags.contains(TcpFlags::RST) {
            if seq_in_window(tcp.seq, self.rcv_nxt, u32::from(OWN_WINDOW)) {
                self.state = TcpState::Reset;
                self.broken = Some(BreakReason::RstReceived);
            }
            return;
        }
        let ack_ok = flags.contains(TcpFlags::ACK) && tcp.ack == self.iss.wrapping_add(1);
        if flags.contains(TcpFlags::SYN) && tcp.seq == self.irs {
            // Duplicate SYN (or the peer's simultaneous-open SYN+ACK).
            if !pkt.payload.is_empty()
                && flags.contains(TcpFlags::ACK)
                && !self.profile.ignores_synack_payload
            {
                self.state = TcpState::Reset;
                self.broken = Some(BreakReason::SynAckPayload);
                return;
            }
            if ack_ok {
                // Their SYN+ACK both acks our SYN and re-sends theirs:
                // complete the handshake and ACK it (the bare ACK seen
                // in Figure 1 right after the client's SYN+ACK).
                self.establish(tcp);
                let ack = self.mk(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, vec![]);
                out.push(ack);
                self.pump(out);
            } else {
                // Plain duplicate SYN: retransmit our SYN+ACK.
                let mut syn_ack = self.mk(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, vec![]);
                Self::add_syn_options(&mut syn_ack);
                out.push(syn_ack);
            }
            return;
        }
        if ack_ok {
            self.establish(tcp);
            // Any data riding on the handshake-completing ACK counts.
            self.absorb_data(pkt, tcp, out);
            self.pump(out);
        }
    }

    fn establish(&mut self, tcp: &packet::TcpHeader) {
        self.snd_una = tcp.ack;
        self.snd_nxt = self.iss.wrapping_add(1);
        self.send_base = self.iss.wrapping_add(1);
        self.learn_peer_options(tcp, false);
        self.state = TcpState::Established;
    }

    fn in_established(&mut self, pkt: &Packet, tcp: &packet::TcpHeader, out: &mut Vec<Packet>) {
        let flags = tcp.flags;
        if flags.contains(TcpFlags::RST) {
            // In-window check: on-path censors know exact sequence
            // numbers, so their RSTs pass; garbage RSTs do not.
            if seq_in_window(tcp.seq, self.rcv_nxt, u32::from(OWN_WINDOW))
                || tcp.seq == self.rcv_nxt
            {
                self.state = TcpState::Reset;
                self.broken = Some(BreakReason::RstReceived);
            }
            return;
        }
        if flags.contains(TcpFlags::SYN) {
            // Stray SYN in ESTABLISHED: challenge ACK (the client "ACK"s
            // seen in Figure 2 for Kazakhstan's triple-load strategy).
            let ack = self.mk(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, vec![]);
            out.push(ack);
            return;
        }
        if flags.contains(TcpFlags::ACK) {
            // Acceptable ack: snd_una < ack <= snd_nxt. The send window
            // is refreshed only by segments that acknowledge NEW data
            // (a conservative reading of RFC 793's WL1/WL2 update rule;
            // see DESIGN.md — this is what lets a Strategy-8-reduced
            // handshake window govern the client's first flight even in
            // server-greets-first protocols).
            let ack = tcp.ack;
            if seq_lt(self.snd_una, ack) && !seq_lt(self.snd_nxt, ack) {
                self.snd_una = ack;
                self.learn_peer_options(tcp, false);
            }
        }
        self.absorb_data(pkt, tcp, out);
        if flags.contains(TcpFlags::FIN) && tcp.seq == self.rcv_nxt {
            self.peer_fin = true;
            self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            self.state = TcpState::CloseWait;
            let ack = self.mk(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, vec![]);
            out.push(ack);
            return;
        }
        self.pump(out);
    }

    fn absorb_data(&mut self, pkt: &Packet, tcp: &packet::TcpHeader, out: &mut Vec<Packet>) {
        if pkt.payload.is_empty() {
            return;
        }
        let Some(asm) = self.asm.as_mut() else { return };
        let delivered = asm.push(tcp.seq, &pkt.payload);
        self.rcv_nxt = asm.next_seq();
        self.received.extend_from_slice(&delivered);
        // ACK what we have (immediate ACK policy).
        let ack = self.mk(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, vec![]);
        out.push(ack);
    }

    /// Build a finalized packet from us to the peer.
    fn mk(&self, flags: TcpFlags, seq: u32, ack: u32, payload: Vec<u8>) -> Packet {
        let mut pkt = Packet::tcp(
            self.local.0,
            self.local.1,
            self.remote.0,
            self.remote.1,
            flags,
            seq,
            ack,
            payload,
        );
        pkt.tcp_header_mut().expect("tcp").window = OWN_WINDOW;
        pkt.finalize();
        pkt
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use crate::profile::OsProfile;

    const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
    const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);

    fn client() -> TcpConn {
        TcpConn::client(CLIENT, SERVER, 1000, OsProfile::linux())
    }

    fn server() -> TcpConn {
        TcpConn::server(SERVER, 9000, OsProfile::linux())
    }

    /// Deliver `pkts` to `conn`, collecting replies.
    fn deliver(conn: &mut TcpConn, pkts: &[Packet]) -> Vec<Packet> {
        let mut out = Vec::new();
        for p in pkts {
            conn.on_packet(p, &mut out);
        }
        out
    }

    fn run_handshake(c: &mut TcpConn, s: &mut TcpConn) {
        let mut out = Vec::new();
        c.open(&mut out);
        let syn_ack = deliver(s, &out);
        assert_eq!(syn_ack.len(), 1);
        assert!(syn_ack[0].flags().is_syn_ack());
        let ack = deliver(c, &syn_ack);
        assert!(c.is_established());
        deliver(s, &ack);
        assert!(s.is_established());
    }

    #[test]
    fn three_way_handshake_and_data() {
        let (mut c, mut s) = (client(), server());
        run_handshake(&mut c, &mut s);

        let mut out = Vec::new();
        c.queue_data(b"GET / HTTP/1.1\r\n\r\n", &mut out);
        assert_eq!(out.len(), 1, "one segment within window");
        let acks = deliver(&mut s, &out);
        assert_eq!(s.take_received(), b"GET / HTTP/1.1\r\n\r\n");
        deliver(&mut c, &acks);
        assert!(c.all_sent_and_acked());
    }

    #[test]
    fn rst_without_ack_in_syn_sent_is_ignored() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out);
        let rst = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::RST,
            5000,
            0,
            vec![],
        );
        let replies = deliver(&mut c, &[rst]);
        assert!(replies.is_empty());
        assert_eq!(c.state, TcpState::SynSent);
        assert!(c.broken.is_none());
    }

    #[test]
    fn rst_ack_with_acceptable_ack_resets_syn_sent() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out);
        let rst = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::RST_ACK,
            0,
            1001,
            vec![],
        );
        deliver(&mut c, &[rst]);
        assert_eq!(c.state, TcpState::Reset);
        assert_eq!(c.broken, Some(BreakReason::RstReceived));
    }

    #[test]
    fn corrupted_ack_synack_induces_rst_and_stays_half_open() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out);
        let bad = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::SYN_ACK,
            7000,
            0xDEAD_BEEF,
            vec![],
        );
        let replies = deliver(&mut c, &[bad]);
        assert_eq!(replies.len(), 1);
        let rst = replies[0].tcp_header().unwrap();
        assert_eq!(replies[0].flags(), TcpFlags::RST);
        assert_eq!(
            rst.seq, 0xDEAD_BEEF,
            "induced RST carries the bogus ack as seq"
        );
        assert_eq!(c.state, TcpState::SynSent, "connection survives");
        // The genuine SYN+ACK still completes the handshake.
        let good = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::SYN_ACK,
            7000,
            1001,
            vec![],
        );
        let replies = deliver(&mut c, &[good]);
        assert!(c.is_established());
        assert_eq!(replies[0].flags(), TcpFlags::ACK);
    }

    #[test]
    fn simultaneous_open_keeps_unincremented_seq() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out); // iss = 1000
        let syn = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::SYN,
            9000,
            0,
            vec![],
        );
        let replies = deliver(&mut c, &[syn]);
        assert_eq!(replies.len(), 1);
        let sa = replies[0].tcp_header().unwrap();
        assert!(replies[0].flags().is_syn_ack());
        assert_eq!(sa.seq, 1000, "sim-open SYN+ACK must NOT increment seq");
        assert_eq!(sa.ack, 9001);
        assert_eq!(c.state, TcpState::SynRcvd);
        assert!(c.via_simultaneous_open);
        // Server's plain ACK completes it; first data byte is iss+1.
        let ack = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::ACK,
            9001,
            1001,
            vec![],
        );
        deliver(&mut c, &[ack]);
        assert!(c.is_established());
        let mut out = Vec::new();
        c.queue_data(b"x", &mut out);
        assert_eq!(out[0].tcp_header().unwrap().seq, 1001);
    }

    #[test]
    fn null_flags_and_fin_payload_dropped_in_syn_sent() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out);
        let null = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::NONE,
            1,
            0,
            vec![],
        );
        let fin = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::FIN,
            2,
            0,
            b"garbage".to_vec(),
        );
        let replies = deliver(&mut c, &[null, fin]);
        assert!(replies.is_empty());
        assert_eq!(c.state, TcpState::SynSent);
    }

    #[test]
    fn synack_payload_linux_ignores_windows_breaks() {
        for (profile, should_break) in [(OsProfile::linux(), false), (OsProfile::windows(), true)] {
            let mut c = TcpConn::client(CLIENT, SERVER, 1000, profile);
            let mut out = Vec::new();
            c.open(&mut out);
            let sa = Packet::tcp(
                SERVER.0,
                SERVER.1,
                CLIENT.0,
                CLIENT.1,
                TcpFlags::SYN_ACK,
                7000,
                1001,
                b"\xde\xad".to_vec(),
            );
            deliver(&mut c, &[sa]);
            if should_break {
                assert_eq!(
                    c.broken,
                    Some(BreakReason::SynAckPayload),
                    "{}",
                    profile.name
                );
            } else {
                assert!(c.is_established(), "{}", profile.name);
                assert!(c.take_received().is_empty(), "payload must be ignored");
            }
        }
    }

    #[test]
    fn payload_on_bare_syn_is_harmless_everywhere() {
        for profile in [OsProfile::linux(), OsProfile::windows()] {
            let mut c = TcpConn::client(CLIENT, SERVER, 1000, profile);
            let mut out = Vec::new();
            c.open(&mut out);
            let syn1 = Packet::tcp(
                SERVER.0,
                SERVER.1,
                CLIENT.0,
                CLIENT.1,
                TcpFlags::SYN,
                9000,
                0,
                vec![],
            );
            let syn2 = Packet::tcp(
                SERVER.0,
                SERVER.1,
                CLIENT.0,
                CLIENT.1,
                TcpFlags::SYN,
                9000,
                0,
                b"\xca\xfe".to_vec(),
            );
            let replies = deliver(&mut c, &[syn1, syn2]);
            assert!(c.broken.is_none(), "{}", profile.name);
            // First SYN → sim-open SYN+ACK; duplicate SYN → SYN+ACK again.
            assert_eq!(replies.len(), 2);
            assert!(replies.iter().all(|r| r.flags().is_syn_ack()));
        }
    }

    #[test]
    fn tiny_window_segments_the_request() {
        let mut c = client();
        let mut out = Vec::new();
        c.open(&mut out);
        // SYN+ACK advertising a 10-byte window, no wscale (Strategy 8).
        let mut sa = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::SYN_ACK,
            7000,
            1001,
            vec![],
        );
        sa.tcp_header_mut().unwrap().window = 10;
        sa.finalize();
        deliver(&mut c, &[sa]);
        assert!(c.is_established());
        let mut out = Vec::new();
        c.queue_data(b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n", &mut out);
        assert_eq!(out.len(), 1, "only one window's worth flies");
        assert_eq!(out[0].payload, b"GET /?q=ul");
        // Server ACKs the 10 bytes and opens the window.
        let ack = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::ACK,
            7001,
            1001 + 10,
            vec![],
        );
        let more = deliver(&mut c, &[ack]);
        let sent: Vec<u8> = more.iter().flat_map(|p| p.payload.to_vec()).collect();
        assert_eq!(sent, b"trasurf HTTP/1.1\r\n\r\n");
    }

    #[test]
    fn established_rst_in_window_tears_down() {
        let (mut c, mut s) = (client(), server());
        run_handshake(&mut c, &mut s);
        let rst = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::RST,
            c_rcv_nxt(&c),
            0,
            vec![],
        );
        deliver(&mut c, &[rst]);
        assert_eq!(c.broken, Some(BreakReason::RstReceived));
    }

    fn c_rcv_nxt(c: &TcpConn) -> u32 {
        c.rcv_nxt
    }

    #[test]
    fn established_syn_gets_challenge_ack() {
        let (mut c, mut s) = (client(), server());
        run_handshake(&mut c, &mut s);
        let stray = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::SYN_ACK,
            4242,
            1001,
            b"load".to_vec(),
        );
        let replies = deliver(&mut c, &[stray]);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].flags(), TcpFlags::ACK);
        assert!(c.broken.is_none());
    }

    #[test]
    fn out_of_order_segments_reassemble_and_ack() {
        let (mut c, mut s) = (client(), server());
        run_handshake(&mut c, &mut s);
        let base = s_snd(&s);
        let seg2 = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::PSH_ACK,
            base + 3,
            1001,
            b"lo!".to_vec(),
        );
        let seg1 = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::PSH_ACK,
            base,
            1001,
            b"hel".to_vec(),
        );
        deliver(&mut c, &[seg2, seg1]);
        assert_eq!(c.take_received(), b"hello!");
    }

    fn s_snd(s: &TcpConn) -> u32 {
        s.snd_nxt()
    }

    #[test]
    fn fin_moves_to_close_wait() {
        let (mut c, mut s) = (client(), server());
        run_handshake(&mut c, &mut s);
        let fin = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            TcpFlags::FIN_PSH_ACK,
            s.snd_nxt(),
            1001,
            vec![],
        );
        let replies = deliver(&mut c, &[fin]);
        assert!(c.peer_fin);
        assert_eq!(c.state, TcpState::CloseWait);
        assert_eq!(replies.last().unwrap().flags(), TcpFlags::ACK);
    }

    #[test]
    fn listen_ignores_non_syn() {
        let mut s = server();
        let ack = Packet::tcp(
            CLIENT.0,
            CLIENT.1,
            SERVER.0,
            SERVER.1,
            TcpFlags::ACK,
            1,
            1,
            vec![],
        );
        let replies = deliver(&mut s, &[ack]);
        assert!(replies.is_empty());
        assert_eq!(s.state, TcpState::Listen);
    }

    #[test]
    fn server_accepts_simopen_synack_and_acks() {
        // The server side of Strategy 1: its SYN+ACK was transformed on
        // the wire, and the client's sim-open SYN+ACK arrives instead of
        // a plain ACK.
        let (mut c, mut s) = (client(), server());
        let mut out = Vec::new();
        c.open(&mut out);
        let _synack = deliver(&mut s, &out); // server now SYN_RCVD, iss 9000
                                             // Client never saw the SYN+ACK (strategy replaced it); instead it
                                             // did simultaneous open and sends SYN+ACK seq=1000 ack=9001.
        let simopen_sa = Packet::tcp(
            CLIENT.0,
            CLIENT.1,
            SERVER.0,
            SERVER.1,
            TcpFlags::SYN_ACK,
            1000,
            9001,
            vec![],
        );
        let replies = deliver(&mut s, &[simopen_sa]);
        assert!(s.is_established());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].flags(), TcpFlags::ACK, "plain ACK, not SYN+ACK");
        assert_eq!(replies[0].tcp_header().unwrap().ack, 1001);
    }

    #[test]
    fn wrong_port_ignored() {
        let (mut c, _s) = (client(), server());
        let mut out = Vec::new();
        c.open(&mut out);
        let other = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            40001,
            TcpFlags::SYN_ACK,
            1,
            1001,
            vec![],
        );
        let replies = deliver(&mut c, &[other]);
        assert!(replies.is_empty());
        assert_eq!(c.state, TcpState::SynSent);
    }
}
