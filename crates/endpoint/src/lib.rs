//! # endpoint — unmodified-client TCP behavior (and a plain server)
//!
//! The paper's central constraint is that evasion must work with
//! **completely unmodified clients**: every effect a server-side
//! strategy achieves is mediated by stock RFC 793 client behavior —
//! ignoring a RST without ACK in SYN-SENT, answering a bare SYN with a
//! SYN+ACK (simultaneous open), RST-ing a SYN+ACK whose ack number is
//! unacceptable, segmenting a request to fit a tiny advertised window.
//!
//! This crate implements that behavior:
//!
//! * [`conn::TcpConn`] — a TCP state machine faithful to the RFC 793
//!   segment-arrival rules the strategies exercise, including
//!   simultaneous open and window-driven send segmentation;
//! * [`profile::OsProfile`] — the per-OS behavioral differences §7
//!   measures (17 OS versions), chiefly whether a SYN+ACK carrying a
//!   payload breaks the handshake (Windows/macOS) or is ignored
//!   (Linux/Android/iOS), and checksum validation that makes
//!   corrupted-checksum insertion packets invisible to every OS;
//! * [`hosts::ClientHost`] / [`hosts::ServerHost`] — `netsim`
//!   endpoints gluing a [`conn::TcpConn`] to an application session
//!   (the `appproto` crate provides the sessions), with app-level
//!   retries (DNS-over-TCP) and timeouts (blackhole detection).

pub mod conn;
pub mod hosts;
pub mod profile;
pub mod reassembly;
pub mod seq;

pub use conn::{BreakReason, TcpConn, TcpState};
pub use hosts::{
    ClientApp, ClientHost, OneShotServer, Outcome, ServerApp, ServerHost, ServerSession,
};
pub use profile::{OsFamily, OsProfile};
pub use reassembly::StreamAssembler;
