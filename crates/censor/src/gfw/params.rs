//! Calibrated per-box GFW parameters.
//!
//! The mechanisms (resync targets, the simultaneous-open off-by-one,
//! teardown asymmetry, reassembly blindness, DNS retry amplification)
//! are structural and live in [`super::GfwBox`]. What *is*
//! probabilistic in the wild — how often each anomaly actually trips a
//! box into its resynchronization state — the paper reports only as
//! frequencies ("about 50 %", Table 2). Those frequencies are model
//! parameters here, set per protocol box from the paper's own
//! Table-2/§5 measurements. Each box having its *own* numbers is
//! itself the paper's §6 finding: five separate stacks, five separate
//! bug profiles.

use appproto::AppProtocol;

/// One censorship box's behavioral parameters.
#[derive(Debug, Clone)]
pub struct GfwBoxParams {
    /// Protocols this box censors (one for the standard GFW; all five
    /// for the single-box ablation).
    pub protocols: Vec<AppProtocol>,
    /// Forbidden tokens, parallel to `protocols`.
    pub keywords: Vec<String>,
    /// Per-flow probability the box simply misses the request
    /// (Table 2 "No evasion" row).
    pub baseline_miss: f64,
    /// Rule 2: P(server RST ⇒ resync armed on the next client packet).
    pub p_resync_on_server_rst: f64,
    /// Rule 1: P(server payload on a non-SYN+ACK ⇒ resync armed on the
    /// next server SYN+ACK or next client ACK-flagged packet).
    pub p_resync_on_server_payload: f64,
    /// Rule 3: P(server SYN+ACK with a wrong ack number ⇒ resync armed
    /// on the next client packet). Only the FTP stack has this
    /// meaningfully (§5.1, Strategy 3 discussion).
    pub p_resync_on_corrupt_ack: f64,
    /// FTP-stack quirk: the corrupt-ack probability when the flow has
    /// already seen another server-side anomaly (Strategy 7's boost).
    pub p_resync_on_corrupt_ack_after_anomaly: f64,
    /// Quirk: P(bare SYN from the server ⇒ resync), applied
    /// unconditionally (HTTPS shows a small one — Strategy 1's 14 %).
    pub p_resync_on_server_syn: f64,
    /// FTP-stack quirk: P(bare server SYN ⇒ resync) when a corrupt-ack
    /// was already seen (Strategy 3 vs Strategy 4).
    pub p_resync_on_server_syn_after_corrupt_ack: f64,
    /// FTP-stack quirk: P(payload on a SYN+ACK ⇒ resync) when a
    /// corrupt-ack was already seen (Strategy 5's 97 %).
    pub p_resync_on_synack_payload_after_corrupt_ack: f64,
    /// Per-flow probability the box can reassemble TCP segments. Flows
    /// where it can't are inspected per-packet (Strategy 8's target).
    pub p_reassembly_works: f64,
    /// Residual censorship duration after a censorship event
    /// (HTTP: ~90 s), microseconds.
    pub residual_us: Option<u64>,
    /// Where a corrupt-ack-triggered resync lands. The paper's revised
    /// model: the next client packet (true). Prior work's model (Wang
    /// et al.): the next server SYN+ACK or client data packet (false) —
    /// which always re-synchronizes correctly for server-side
    /// strategies, predicting (wrongly) that none of them can work.
    pub corrupt_ack_lands_on_client: bool,
}

impl GfwBoxParams {
    /// The standard parameters for one of the five boxes.
    pub fn for_protocol(proto: AppProtocol) -> GfwBoxParams {
        let base = GfwBoxParams {
            protocols: vec![proto],
            keywords: vec![proto.default_keyword().to_string()],
            baseline_miss: 0.03,
            p_resync_on_server_rst: 0.53,
            p_resync_on_server_payload: 0.52,
            p_resync_on_corrupt_ack: 0.01,
            p_resync_on_corrupt_ack_after_anomaly: 0.01,
            p_resync_on_server_syn: 0.0,
            p_resync_on_server_syn_after_corrupt_ack: 0.0,
            p_resync_on_synack_payload_after_corrupt_ack: 0.0,
            p_reassembly_works: 1.0,
            residual_us: None,
            corrupt_ack_lands_on_client: true,
        };
        match proto {
            AppProtocol::Http => GfwBoxParams {
                residual_us: Some(90_000_000),
                ..base
            },
            AppProtocol::Https => GfwBoxParams {
                // §5.1: a RST does NOT put the HTTPS stack into the
                // resync state (Strategies 1/7 ≈ baseline); a small
                // residue from the sim-open SYN explains S1's 14 %.
                p_resync_on_server_rst: 0.0,
                p_resync_on_server_payload: 0.53,
                p_resync_on_server_syn: 0.11,
                p_resync_on_corrupt_ack: 0.0,
                p_resync_on_corrupt_ack_after_anomaly: 0.0,
                ..base
            },
            AppProtocol::DnsTcp => GfwBoxParams {
                baseline_miss: 0.007, // 3-try amplification → ~2 %
                p_resync_on_server_rst: 0.50,
                p_resync_on_server_payload: 0.44,
                p_resync_on_corrupt_ack: 0.017,
                p_resync_on_corrupt_ack_after_anomaly: 0.017,
                p_resync_on_server_syn_after_corrupt_ack: 0.074,
                p_resync_on_synack_payload_after_corrupt_ack: 0.03,
                ..base
            },
            AppProtocol::Ftp => GfwBoxParams {
                p_resync_on_server_rst: 0.50,
                p_resync_on_server_payload: 0.33,
                p_resync_on_corrupt_ack: 0.31,
                p_resync_on_corrupt_ack_after_anomaly: 0.65,
                p_resync_on_server_syn_after_corrupt_ack: 0.50,
                p_resync_on_synack_payload_after_corrupt_ack: 0.95,
                // "frequently incapable" of reassembly: Strategy 8 ≈ 47 %.
                p_reassembly_works: 0.55,
                ..base
            },
            AppProtocol::Smtp => GfwBoxParams {
                baseline_miss: 0.26,
                p_resync_on_server_rst: 0.60,
                p_resync_on_server_payload: 0.42,
                p_resync_on_corrupt_ack: 0.0,
                p_resync_on_corrupt_ack_after_anomaly: 0.0,
                // The SMTP stack never reassembles: Strategy 8 = 100 %.
                p_reassembly_works: 0.0,
                ..base
            },
        }
    }

    /// Ablation: prior work's single-rule resynchronization model
    /// (Wang et al. 2017): only a SYN+ACK with an incorrect ack number
    /// triggers the resync state (for every protocol), landing on the
    /// next server SYN+ACK or client packet. Under this model the
    /// paper's Strategies 1/2/6/7 should NOT work — our ablation bench
    /// demonstrates the difference.
    pub fn old_single_rule_model(proto: AppProtocol) -> GfwBoxParams {
        let mut params = GfwBoxParams::for_protocol(proto);
        params.p_resync_on_server_rst = 0.0;
        params.p_resync_on_server_payload = 0.0;
        params.p_resync_on_server_syn = 0.0;
        params.p_resync_on_server_syn_after_corrupt_ack = 0.0;
        params.p_resync_on_synack_payload_after_corrupt_ack = 0.0;
        params.p_resync_on_corrupt_ack = 0.5;
        params.p_resync_on_corrupt_ack_after_anomaly = 0.5;
        params.corrupt_ack_lands_on_client = false;
        params
    }

    /// Ablation: one box with one (HTTP-like) stack censoring all five
    /// protocols — the "single censorship box" model the paper's §6
    /// evidence rejects.
    pub fn single_box_ablation() -> GfwBoxParams {
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
        params.protocols = AppProtocol::all().to_vec();
        params.keywords = AppProtocol::all()
            .iter()
            .map(|p| p.default_keyword().to_string())
            .collect();
        params.residual_us = None;
        params
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn each_box_has_consistent_tables() {
        for proto in AppProtocol::all() {
            let p = GfwBoxParams::for_protocol(proto);
            assert_eq!(p.protocols, vec![proto]);
            assert_eq!(p.keywords.len(), 1);
            assert!(p.baseline_miss < 0.5);
            assert!((0.0..=1.0).contains(&p.p_reassembly_works));
        }
    }

    #[test]
    fn only_http_has_residual_censorship() {
        for proto in AppProtocol::all() {
            let p = GfwBoxParams::for_protocol(proto);
            assert_eq!(
                p.residual_us.is_some(),
                proto == AppProtocol::Http,
                "{proto}"
            );
        }
    }

    #[test]
    fn https_is_rst_resync_immune() {
        let p = GfwBoxParams::for_protocol(AppProtocol::Https);
        assert_eq!(p.p_resync_on_server_rst, 0.0);
    }

    #[test]
    fn ablation_box_covers_all_protocols() {
        let p = GfwBoxParams::single_box_ablation();
        assert_eq!(p.protocols.len(), 5);
        assert_eq!(p.keywords.len(), 5);
    }
}
