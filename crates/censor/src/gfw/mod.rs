//! China's Great Firewall: five on-path censorship boxes, one per
//! application protocol, each with its own network stack and bugs.
//!
//! ## The revised resynchronization-state model (§5.1)
//!
//! 1. A **payload from the server on a non-SYN+ACK** packet arms a
//!    resync that lands on the *next server SYN+ACK or next client
//!    packet with ACK set* — for every protocol.
//! 2. A **RST from the server** arms a resync that lands on the *next
//!    client packet* — for every protocol except HTTPS.
//! 3. A **SYN+ACK with a corrupted ack number** arms a resync (landing
//!    on the next client packet) — only the FTP stack.
//!
//! ## The simultaneous-open bug
//!
//! When a resync lands on a packet, the box adopts `seq + len` as the
//! client's next data byte — correct for an ordinary ACK, but **one
//! too low** for a simultaneous-open SYN+ACK (whose SYN consumes a
//! sequence number the box fails to count). The result is a censor
//! whose cursor sits one byte before the real request forever.
//!
//! ## Teardown asymmetry (§3)
//!
//! A valid RST *from the client* deletes the TCB (the classic
//! client-side TCB-teardown evasion). The same RST *from the server*
//! does not — it merely arms rule 2. This asymmetry is why client-side
//! strategies do not generalize to the server side.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
pub mod params;

pub use params::GfwBoxParams;

use crate::stream::{CensorStream, InspectMode};
use appproto::forbidden_in;
use netsim::{Direction, Middlebox, Verdict};
use packet::packet::FlowKey;
use packet::{Packet, TcpFlags};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Where an armed resynchronization will land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResyncTarget {
    /// Rules 2 and 3: the next packet from the client, whatever it is.
    NextClientPacket,
    /// Rule 1: the next SYN+ACK from the server, or the next
    /// ACK-flagged packet from the client.
    NextServerSynAckOrClientAck,
}

/// Per-flow censor state.
#[derive(Debug)]
struct BoxTcb {
    client: ([u8; 4], u16),
    server: ([u8; 4], u16),
    client_isn: u32,
    /// The box's belief of the server's next sequence number (used to
    /// craft acceptable RSTs toward the client).
    server_next: u32,
    stream: CensorStream,
    arm: Option<ResyncTarget>,
    saw_server_rst: bool,
    saw_corrupt_ack: bool,
    torn_down: bool,
    censored: bool,
    /// Has the box seen the client complete the handshake (a pure ACK)?
    /// Server payloads after this point are ordinary traffic and no
    /// longer arm the rule-1 resync (otherwise every response packet of
    /// every connection would churn the resync state).
    handshake_done: bool,
    /// Sampled per flow: this flow escapes DPI entirely.
    miss: bool,
    /// This flow is inspected per-packet (no reassembly).
    per_packet: bool,
    /// A per-packet parser that saw a split protocol unit wedges: it
    /// cannot find the next unit boundary and stops inspecting — the
    /// mechanism behind Strategy 8's success on SMTP/FTP.
    wedged: bool,
    /// Flow opened while residual censorship was active.
    residual_flagged: bool,
}

/// One GFW censorship box.
pub struct GfwBox {
    /// This box's stack parameters.
    pub params: GfwBoxParams,
    rng: StdRng,
    flows: HashMap<FlowKey, BoxTcb>,
    /// Residual censorship registry: (server addr, port) → active until.
    residual: HashMap<([u8; 4], u16), u64>,
    /// Count of censorship events (diagnostics).
    pub censor_events: u64,
}

impl GfwBox {
    /// A box with the given parameters and RNG seed.
    pub fn new(params: GfwBoxParams, seed: u64) -> GfwBox {
        GfwBox {
            params,
            rng: StdRng::seed_from_u64(seed),
            flows: HashMap::new(),
            residual: HashMap::new(),
            censor_events: 0,
        }
    }

    /// Observe one packet; returns (injections toward client,
    /// injections toward server).
    pub fn observe(&mut self, pkt: &Packet, now: u64) -> (Vec<Packet>, Vec<Packet>) {
        let Some(tcp) = pkt.tcp_header() else {
            return (Vec::new(), Vec::new());
        };
        let key = pkt.flow_key();
        if !self.flows.contains_key(&key) {
            if !tcp.flags.is_syn() {
                return (Vec::new(), Vec::new()); // mid-flow: no TCB, no care
            }
            let miss = self.rng.gen::<f64>() < self.params.baseline_miss;
            let reassembles = self.rng.gen::<f64>() < self.params.p_reassembly_works;
            let per_packet = !reassembles;
            let mode = if reassembles {
                InspectMode::Stream
            } else {
                InspectMode::PerPacket
            };
            let residual_flagged = self
                .residual
                .get(&pkt.dst())
                .map(|&until| now < until)
                .unwrap_or(false);
            self.flows.insert(
                key,
                BoxTcb {
                    client: pkt.src(),
                    server: pkt.dst(),
                    client_isn: tcp.seq,
                    server_next: 0,
                    stream: CensorStream::new(tcp.seq.wrapping_add(1), mode),
                    arm: None,
                    saw_server_rst: false,
                    saw_corrupt_ack: false,
                    torn_down: false,
                    censored: false,
                    handshake_done: false,
                    miss,
                    per_packet,
                    wedged: false,
                    residual_flagged,
                },
            );
            return (Vec::new(), Vec::new());
        }

        // Split borrows: we need rng + params alongside the TCB.
        let tcb = self.flows.get_mut(&key).expect("present");
        if tcb.torn_down {
            return (Vec::new(), Vec::new());
        }
        let from_client = pkt.src() == tcb.client;
        let mut to_client = Vec::new();
        let mut to_server = Vec::new();

        if from_client {
            if tcp.flags.contains(TcpFlags::ACK) {
                // Any ACK-flagged client packet (including a
                // simultaneous-open SYN+ACK) tells the box the
                // handshake is done; server payloads from here on are
                // ordinary data, not anomalies.
                tcb.handshake_done = true;
            }
            // --- resync landing ---
            let consumes = match tcb.arm {
                Some(ResyncTarget::NextClientPacket) => true,
                Some(ResyncTarget::NextServerSynAckOrClientAck) => {
                    tcp.flags.contains(TcpFlags::ACK)
                }
                None => false,
            };
            if consumes {
                // THE BUG: `seq + len`, never `+1` for a SYN flag — a
                // simultaneous-open SYN+ACK leaves the cursor 1 low.
                tcb.arm = None;
                tcb.stream
                    .resync_to(tcp.seq.wrapping_add(pkt.payload.len() as u32));
                return (to_client, to_server);
            }
            // --- client teardown (valid RST only) ---
            if tcp.flags.contains(TcpFlags::RST) {
                if tcp.seq == tcb.stream.expected() {
                    tcb.torn_down = true;
                }
                return (to_client, to_server);
            }
            // --- residual censorship fires right after the handshake ---
            if tcb.residual_flagged
                && !tcb.censored
                && tcp.flags.contains(TcpFlags::ACK)
                && !tcp.flags.contains(TcpFlags::SYN)
            {
                tcb.censored = true;
                self.censor_events += 1;
                let expected = tcb.stream.expected();
                to_client.push(teardown_rst(tcb.server, tcb.client, tcb.server_next));
                to_server.push(teardown_rst(tcb.client, tcb.server, expected));
                return (to_client, to_server);
            }
            // --- DPI over the tracked client stream ---
            if !pkt.payload.is_empty() && !tcb.censored {
                let views = tcb.stream.push(tcp.seq, &pkt.payload);
                if tcb.per_packet && !views.is_empty() && !tcb.wedged {
                    // Per-packet parsers wedge on a split protocol unit.
                    let complete = self
                        .params
                        .protocols
                        .iter()
                        .any(|proto| appproto::dpi::is_complete_unit(*proto, &pkt.payload));
                    if !complete {
                        tcb.wedged = true;
                    }
                }
                if !tcb.miss && (!tcb.per_packet || !tcb.wedged) {
                    let hit = views.iter().any(|view| {
                        self.params
                            .protocols
                            .iter()
                            .zip(&self.params.keywords)
                            .any(|(proto, kw)| forbidden_in(*proto, view, kw))
                    });
                    if hit {
                        tcb.censored = true;
                        self.censor_events += 1;
                        let expected = tcb.stream.expected();
                        to_client.push(teardown_rst(tcb.server, tcb.client, tcb.server_next));
                        to_server.push(teardown_rst(tcb.client, tcb.server, expected));
                        if let Some(dur) = self.params.residual_us {
                            self.residual.insert(tcb.server, now + dur);
                        }
                    }
                }
            }
        } else {
            // --- packets from the server: resync-state events ---
            let flags = tcp.flags;
            // A server SYN+ACK can LAND an armed rule-1 resync.
            if flags.is_syn_ack() && tcb.arm == Some(ResyncTarget::NextServerSynAckOrClientAck) {
                tcb.arm = None;
                // The box adopts the SYN+ACK's ack number as the
                // client's next byte (garbage ack ⇒ blind censor).
                tcb.stream.resync_to(tcp.ack);
                return (to_client, to_server);
            }
            if flags.is_syn_ack() {
                tcb.server_next = tcp
                    .seq
                    .wrapping_add(1)
                    .wrapping_add(pkt.payload.len() as u32);
                let corrupt_ack = tcp.ack != tcb.client_isn.wrapping_add(1);
                if corrupt_ack {
                    // The FTP stack's corrupt-ack sensitivity is higher
                    // when a server RST already disturbed the flow
                    // (Strategy 7's boost over Strategy 4).
                    let p = if tcb.saw_server_rst {
                        self.params.p_resync_on_corrupt_ack_after_anomaly
                    } else {
                        self.params.p_resync_on_corrupt_ack
                    };
                    let target = if self.params.corrupt_ack_lands_on_client {
                        ResyncTarget::NextClientPacket
                    } else {
                        ResyncTarget::NextServerSynAckOrClientAck
                    };
                    maybe_arm(&mut self.rng, p, target, &mut tcb.arm);
                    tcb.saw_corrupt_ack = true;
                }
                if !pkt.payload.is_empty() && tcb.saw_corrupt_ack && !tcb.handshake_done {
                    maybe_arm(
                        &mut self.rng,
                        self.params.p_resync_on_synack_payload_after_corrupt_ack,
                        ResyncTarget::NextClientPacket,
                        &mut tcb.arm,
                    );
                }
            } else if flags.is_syn() {
                tcb.server_next = tcp
                    .seq
                    .wrapping_add(1)
                    .wrapping_add(pkt.payload.len() as u32);
                if tcb.saw_server_rst {
                    // HTTPS quirk: a bare SYN right after a server RST
                    // occasionally trips the resync state (Strategy 1's
                    // 14 % vs Strategies 3/7's ~4 %).
                    maybe_arm(
                        &mut self.rng,
                        self.params.p_resync_on_server_syn,
                        ResyncTarget::NextClientPacket,
                        &mut tcb.arm,
                    );
                }
                if tcb.saw_corrupt_ack {
                    maybe_arm(
                        &mut self.rng,
                        self.params.p_resync_on_server_syn_after_corrupt_ack,
                        ResyncTarget::NextClientPacket,
                        &mut tcb.arm,
                    );
                }
                if !pkt.payload.is_empty() && !tcb.handshake_done {
                    // Rule 1: payload on a non-SYN+ACK (a bare SYN with
                    // a load counts — Strategy 2's second packet).
                    maybe_arm(
                        &mut self.rng,
                        self.params.p_resync_on_server_payload,
                        ResyncTarget::NextServerSynAckOrClientAck,
                        &mut tcb.arm,
                    );
                }
            } else {
                if flags.contains(TcpFlags::RST) {
                    // Rule 2 — the server's RST never tears down.
                    maybe_arm(
                        &mut self.rng,
                        self.params.p_resync_on_server_rst,
                        ResyncTarget::NextClientPacket,
                        &mut tcb.arm,
                    );
                    tcb.saw_server_rst = true;
                }
                if !pkt.payload.is_empty() {
                    // Track the server's data cursor so injected RSTs
                    // toward the client stay in-window.
                    tcb.server_next = tcp
                        .seq
                        .wrapping_add(pkt.payload.len() as u32)
                        .wrapping_add(u32::from(flags.contains(TcpFlags::FIN)));
                    // Rule 1 — handshake-time payloads only; response
                    // data on an established connection is not an
                    // anomaly and must not churn the resync state.
                    if !tcb.handshake_done {
                        maybe_arm(
                            &mut self.rng,
                            self.params.p_resync_on_server_payload,
                            ResyncTarget::NextServerSynAckOrClientAck,
                            &mut tcb.arm,
                        );
                    }
                } else if flags.contains(TcpFlags::ACK) && !flags.contains(TcpFlags::RST) {
                    tcb.server_next = tcp.seq; // plain ACK: seq is next byte
                }
            }
        }
        (to_client, to_server)
    }
}

/// Arm a resync target with probability `p`.
fn maybe_arm(rng: &mut StdRng, p: f64, target: ResyncTarget, slot: &mut Option<ResyncTarget>) {
    if p > 0.0 && rng.gen::<f64>() < p {
        *slot = Some(target);
    }
}

/// A censor-injected RST from `src` to `dst` with the given seq.
fn teardown_rst(src: ([u8; 4], u16), dst: ([u8; 4], u16), seq: u32) -> Packet {
    let mut rst = Packet::tcp(src.0, src.1, dst.0, dst.1, TcpFlags::RST, seq, 0, vec![]);
    rst.finalize();
    rst
}

/// The composite GFW: every box sees every packet (the §6 multi-box
/// architecture); being on-path, it always forwards and only injects.
pub struct Gfw {
    /// The individual censorship boxes.
    pub boxes: Vec<GfwBox>,
}

impl Gfw {
    /// The standard five-box GFW.
    pub fn standard(seed: u64) -> Gfw {
        Gfw {
            boxes: appproto::AppProtocol::all()
                .iter()
                .enumerate()
                .map(|(i, proto)| {
                    GfwBox::new(
                        GfwBoxParams::for_protocol(*proto),
                        seed.wrapping_add(i as u64 * 0x9E37),
                    )
                })
                .collect(),
        }
    }

    /// A GFW with a single box censoring one protocol (unit tests,
    /// per-protocol experiments).
    pub fn single(proto: appproto::AppProtocol, seed: u64) -> Gfw {
        Gfw {
            boxes: vec![GfwBox::new(GfwBoxParams::for_protocol(proto), seed)],
        }
    }

    /// The §6 ablation: one box, one (HTTP-like) stack, all protocols.
    pub fn single_box_ablation(seed: u64) -> Gfw {
        Gfw {
            boxes: vec![GfwBox::new(GfwBoxParams::single_box_ablation(), seed)],
        }
    }

    /// Prior work's resync model (ablation): five boxes, each with the
    /// single-rule resynchronization behavior of Wang et al.
    pub fn old_resync_model(seed: u64) -> Gfw {
        Gfw {
            boxes: appproto::AppProtocol::all()
                .iter()
                .enumerate()
                .map(|(i, proto)| {
                    GfwBox::new(
                        GfwBoxParams::old_single_rule_model(*proto),
                        seed.wrapping_add(i as u64 * 0x9E37),
                    )
                })
                .collect(),
        }
    }

    /// Total censorship events across boxes.
    pub fn censor_events(&self) -> u64 {
        self.boxes.iter().map(|b| b.censor_events).sum()
    }
}

impl Middlebox for Gfw {
    fn process(&mut self, pkt: &Packet, _dir: Direction, now: u64) -> Verdict {
        let mut verdict = Verdict::pass(pkt.clone());
        for b in &mut self.boxes {
            let (to_client, to_server) = b.observe(pkt, now);
            verdict.inject_to_client.extend(to_client);
            verdict.inject_to_server.extend(to_server);
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use appproto::AppProtocol;

    const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
    const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);

    fn pkt(
        from: ([u8; 4], u16),
        to: ([u8; 4], u16),
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: &[u8],
    ) -> Packet {
        let mut p = Packet::tcp(
            from.0,
            from.1,
            to.0,
            to.1,
            flags,
            seq,
            ack,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    fn http_box(seed: u64) -> GfwBox {
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
        params.baseline_miss = 0.0; // determinism for unit tests
        GfwBox::new(params, seed)
    }

    const REQ: &[u8] = b"GET /?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n";

    /// Drive a plain censored exchange; returns censor injections on
    /// the request packet.
    fn run_plain(b: &mut GfwBox) -> (Vec<Packet>, Vec<Packet>) {
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::ACK, 1001, 9001, b""), 2);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 9001, REQ), 3)
    }

    #[test]
    fn plain_forbidden_request_is_censored_with_valid_rsts() {
        let mut b = http_box(1);
        let (to_client, to_server) = run_plain(&mut b);
        assert_eq!(b.censor_events, 1);
        assert_eq!(to_client.len(), 1);
        assert_eq!(to_server.len(), 1);
        let rst_c = to_client[0].tcp_header().unwrap();
        assert_eq!(to_client[0].flags(), TcpFlags::RST);
        assert_eq!(rst_c.seq, 9001, "RST to client uses server's next seq");
        let rst_s = to_server[0].tcp_header().unwrap();
        assert_eq!(rst_s.seq, 1001 + REQ.len() as u32);
        assert!(to_client[0].checksums_ok());
    }

    #[test]
    fn benign_request_passes() {
        let mut b = http_box(1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 1);
        let (c, s) = b.observe(
            &pkt(
                CLIENT,
                SERVER,
                TcpFlags::PSH_ACK,
                1001,
                9001,
                b"GET /kittens HTTP/1.1\r\nHost: example.com\r\n\r\n",
            ),
            2,
        );
        assert!(c.is_empty() && s.is_empty());
        assert_eq!(b.censor_events, 0);
    }

    #[test]
    fn client_rst_tears_down_server_rst_does_not() {
        // Client RST with the right seq: TCB gone, request sails through.
        let mut b = http_box(1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::RST, 1001, 0, b""), 1);
        let (c, s) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 0, REQ), 2);
        assert!(c.is_empty() && s.is_empty(), "torn down ⇒ blind");

        // Server RST (arming disabled via p=0 to isolate teardown):
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
        params.baseline_miss = 0.0;
        params.p_resync_on_server_rst = 0.0;
        let mut b = GfwBox::new(params, 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::RST, 9000, 0, b""), 1);
        let (c, _s) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 0, REQ), 2);
        assert!(!c.is_empty(), "server RST must NOT tear down the TCB");
    }

    #[test]
    fn garbage_client_rst_does_not_tear_down() {
        let mut b = http_box(1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::RST, 0xDEAD, 0, b""), 1);
        let (c, _) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 0, REQ), 2);
        assert!(!c.is_empty(), "bogus RST ignored, censorship proceeds");
    }

    #[test]
    fn rule2_resync_on_simopen_synack_desyncs_by_one() {
        // Force rule 2 to always arm, then replay Strategy 1's packet
        // sequence; the box must land one byte low and go blind.
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
        params.baseline_miss = 0.0;
        params.p_resync_on_server_rst = 1.0;
        let mut b = GfwBox::new(params, 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        // Strategy 1's transformed SYN+ACK: a RST then a SYN.
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::RST, 9000, 1001, b""), 1);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN, 9000, 1001, b""), 2);
        // Client's simultaneous-open SYN+ACK: seq NOT incremented.
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN_ACK, 1000, 9001, b""), 3);
        // Server's plain ACK, then the request at the *real* seq 1001.
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::ACK, 9001, 1001, b""), 4);
        let (c, s) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 9001, REQ), 5);
        assert!(c.is_empty() && s.is_empty(), "desynced by 1 ⇒ blind");
        assert_eq!(b.censor_events, 0);
        // Confirmation experiment: a request shifted to seq 1000 (the
        // paper's seq−1 instrumented client) IS censored.
        let mut b2 = {
            let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
            params.baseline_miss = 0.0;
            params.p_resync_on_server_rst = 1.0;
            GfwBox::new(params, 1)
        };
        b2.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b2.observe(&pkt(SERVER, CLIENT, TcpFlags::RST, 9000, 1001, b""), 1);
        b2.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN, 9000, 1001, b""), 2);
        b2.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN_ACK, 1000, 9001, b""), 3);
        let (c, _) = b2.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1000, 9001, REQ), 4);
        assert!(!c.is_empty(), "seq−1 request matches the desynced cursor");
    }

    #[test]
    fn rule1_lands_on_corrupt_ack_synack() {
        // Strategy 6's mechanism: FIN+load arms rule 1; the corrupted
        // SYN+ACK is the landing target; its garbage ack poisons the
        // cursor even though the client's own RST is dropped.
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Http);
        params.baseline_miss = 0.0;
        params.p_resync_on_server_payload = 1.0;
        let mut b = GfwBox::new(params, 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::FIN, 9000, 0, b"\xAA\xBB"), 1);
        b.observe(
            &pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 0xBAD0_0000, b""),
            2,
        );
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 3);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::ACK, 1001, 9001, b""), 4);
        let (c, _) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 9001, REQ), 5);
        assert!(c.is_empty(), "cursor poisoned with the garbage ack");
    }

    #[test]
    fn normal_interactive_traffic_resyncs_harmlessly() {
        // Rule 1 arms on a server banner (FTP-style), but the landing
        // target — the client's ordinary ACK — carries the correct seq,
        // so the censor stays synchronized.
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Ftp);
        params.baseline_miss = 0.0;
        params.p_resync_on_server_payload = 1.0;
        params.p_reassembly_works = 1.0;
        let mut b = GfwBox::new(params, 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::ACK, 1001, 9001, b""), 2);
        b.observe(
            &pkt(
                SERVER,
                CLIENT,
                TcpFlags::PSH_ACK,
                9001,
                1001,
                b"220 ready\r\n",
            ),
            3,
        );
        // Client ACKs the banner (rule-1 landing, correct seq).
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::ACK, 1001, 9012, b""), 4);
        let (c, _) = b.observe(
            &pkt(
                CLIENT,
                SERVER,
                TcpFlags::PSH_ACK,
                1001,
                9012,
                b"RETR ultrasurf\r\n",
            ),
            5,
        );
        assert!(!c.is_empty(), "still synchronized ⇒ still censoring");
    }

    #[test]
    fn residual_censorship_kills_followup_connections() {
        let mut b = http_box(1);
        run_plain(&mut b); // censor event at t≈3, residual until 90 s
                           // A brand-new connection (different client port) shortly after:
        let client2 = ([10, 0, 0, 1], 40001);
        b.observe(
            &pkt(client2, SERVER, TcpFlags::SYN, 5000, 0, b""),
            1_000_000,
        );
        b.observe(
            &pkt(SERVER, client2, TcpFlags::SYN_ACK, 7000, 5001, b""),
            1_000_001,
        );
        let (c, s) = b.observe(
            &pkt(client2, SERVER, TcpFlags::ACK, 5001, 7001, b""),
            1_000_002,
        );
        assert!(!c.is_empty() && !s.is_empty(), "residual teardown");
        // After expiry (90 s), a new connection is untouched.
        let client3 = ([10, 0, 0, 1], 40002);
        b.observe(
            &pkt(client3, SERVER, TcpFlags::SYN, 6000, 0, b""),
            95_000_000,
        );
        let (c, _) = b.observe(
            &pkt(client3, SERVER, TcpFlags::ACK, 6001, 0, b""),
            95_000_001,
        );
        assert!(c.is_empty(), "residual expired");
    }

    #[test]
    fn non_http_boxes_have_no_residual() {
        let mut params = GfwBoxParams::for_protocol(AppProtocol::DnsTcp);
        params.baseline_miss = 0.0;
        let mut b = GfwBox::new(params, 1);
        let query = appproto::dns::build_query("www.wikipedia.org", 7);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 1);
        let (c, _) = b.observe(
            &pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 9001, &query),
            2,
        );
        assert!(!c.is_empty(), "query censored");
        // Immediate follow-up on a fresh connection is NOT blocked.
        let client2 = ([10, 0, 0, 1], 40001);
        b.observe(&pkt(client2, SERVER, TcpFlags::SYN, 5000, 0, b""), 3);
        b.observe(&pkt(SERVER, client2, TcpFlags::SYN_ACK, 7000, 5001, b""), 4);
        let (c, _) = b.observe(&pkt(client2, SERVER, TcpFlags::ACK, 5001, 7001, b""), 5);
        assert!(c.is_empty(), "no residual for DNS");
    }

    #[test]
    fn composite_gfw_forwards_and_boxes_are_isolated() {
        let mut gfw = Gfw::standard(42);
        assert_eq!(gfw.boxes.len(), 5);
        let syn = pkt(CLIENT, SERVER, TcpFlags::SYN, 1, 0, b"");
        let v = gfw.process(&syn, Direction::ToServer, 0);
        assert!(v.forward.is_some(), "on-path: always forwards");
    }

    #[test]
    fn smtp_box_cannot_reassemble_split_rcpt() {
        let mut params = GfwBoxParams::for_protocol(AppProtocol::Smtp);
        params.baseline_miss = 0.0;
        let mut b = GfwBox::new(params, 1);
        b.observe(&pkt(CLIENT, SERVER, TcpFlags::SYN, 1000, 0, b""), 0);
        b.observe(&pkt(SERVER, CLIENT, TcpFlags::SYN_ACK, 9000, 1001, b""), 1);
        // Whole line in one packet: censored.
        let line = b"RCPT TO:<xiazai@upup.info>\r\n";
        let (c, _) = b.observe(&pkt(CLIENT, SERVER, TcpFlags::PSH_ACK, 1001, 9001, line), 2);
        assert!(!c.is_empty());
        // Split across two packets (fresh flow): invisible.
        let client2 = ([10, 0, 0, 1], 40001);
        b.observe(&pkt(client2, SERVER, TcpFlags::SYN, 1000, 0, b""), 3);
        b.observe(&pkt(SERVER, client2, TcpFlags::SYN_ACK, 9000, 1001, b""), 4);
        let (c1, _) = b.observe(
            &pkt(client2, SERVER, TcpFlags::PSH_ACK, 1001, 9001, &line[..10]),
            5,
        );
        let (c2, _) = b.observe(
            &pkt(client2, SERVER, TcpFlags::PSH_ACK, 1011, 9001, &line[10..]),
            6,
        );
        assert!(
            c1.is_empty() && c2.is_empty(),
            "segmentation defeats SMTP box"
        );
    }
}
