//! Benign (non-censoring) carrier middleboxes — the §7 anecdote.
//!
//! The paper tested all strategies from an Android phone over wifi and
//! two cellular networks in a non-censoring country: everything worked
//! on wifi, but the **simultaneous-open strategies failed on cellular**
//! (Strategies 1 and 3 on T-Mobile; 1, 2, and 3 on AT&T). The culprit
//! is not a censor but ordinary in-network middleboxes (stateful NATs,
//! TCP normalizers) that refuse to deliver a bare SYN *toward* the
//! subscriber.
//!
//! The profiles below encode the observed matrix:
//!
//! * [`Carrier::Wifi`] — transparent;
//! * [`Carrier::TMobile`] — drops a server-originated bare SYN unless
//!   it is the **first** thing the server says (a fresh
//!   simultaneous-open attempt looks legitimate; a SYN arriving after
//!   a RST or a bogus SYN+ACK does not) — so Strategy 2 survives but
//!   1 and 3 do not;
//! * [`Carrier::Att`] — drops every server-originated bare SYN — all
//!   three simultaneous-open strategies die.

use netsim::{Direction, Middlebox, Verdict};
use packet::packet::FlowKey;
use packet::Packet;
use std::collections::HashSet;

/// A client-side access network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Carrier {
    /// Transparent (the paper's wifi baseline).
    Wifi,
    /// Drops non-initial server-originated bare SYNs.
    TMobile,
    /// Drops all server-originated bare SYNs.
    Att,
}

impl Carrier {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Carrier::Wifi => "wifi",
            Carrier::TMobile => "T-Mobile",
            Carrier::Att => "AT&T",
        }
    }

    /// All three profiles.
    pub fn all() -> [Carrier; 3] {
        [Carrier::Wifi, Carrier::TMobile, Carrier::Att]
    }
}

/// The middlebox implementing a [`Carrier`] profile.
#[derive(Debug)]
pub struct CarrierMiddlebox {
    /// Active profile.
    pub carrier: Carrier,
    /// Flows on which the server has already sent something.
    server_spoke: HashSet<FlowKey>,
    /// Count of dropped packets (diagnostics).
    pub dropped: u64,
}

impl CarrierMiddlebox {
    /// A middlebox for `carrier`.
    pub fn new(carrier: Carrier) -> Self {
        CarrierMiddlebox {
            carrier,
            server_spoke: HashSet::new(),
            dropped: 0,
        }
    }
}

impl Middlebox for CarrierMiddlebox {
    fn process(&mut self, pkt: &Packet, dir: Direction, _now: u64) -> Verdict {
        if dir != Direction::ToClient {
            return Verdict::pass(pkt.clone());
        }
        let Some(tcp) = pkt.tcp_header() else {
            return Verdict::pass(pkt.clone());
        };
        let key = pkt.flow_key();
        let first_from_server = self.server_spoke.insert(key);
        let is_bare_syn = tcp.flags.is_syn();
        let drop = match self.carrier {
            Carrier::Wifi => false,
            Carrier::TMobile => is_bare_syn && !first_from_server,
            Carrier::Att => is_bare_syn,
        };
        if drop {
            self.dropped += 1;
            Verdict::drop()
        } else {
            Verdict::pass(pkt.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::TcpFlags;

    fn s2c(flags: TcpFlags) -> Packet {
        let mut p = Packet::tcp([20, 0, 0, 9], 80, [10, 0, 0, 1], 40000, flags, 1, 2, vec![]);
        p.finalize();
        p
    }

    #[test]
    fn wifi_is_transparent() {
        let mut mb = CarrierMiddlebox::new(Carrier::Wifi);
        for flags in [TcpFlags::SYN, TcpFlags::RST, TcpFlags::SYN_ACK] {
            assert!(mb
                .process(&s2c(flags), Direction::ToClient, 0)
                .forward
                .is_some());
        }
        assert_eq!(mb.dropped, 0);
    }

    #[test]
    fn tmobile_allows_only_initial_server_syn() {
        let mut mb = CarrierMiddlebox::new(Carrier::TMobile);
        // Strategy 2's shape: SYN first — allowed.
        assert!(mb
            .process(&s2c(TcpFlags::SYN), Direction::ToClient, 0)
            .forward
            .is_some());
        // Strategy 1's shape on a fresh flow: RST first, then SYN — SYN dropped.
        let mut mb = CarrierMiddlebox::new(Carrier::TMobile);
        assert!(mb
            .process(&s2c(TcpFlags::RST), Direction::ToClient, 0)
            .forward
            .is_some());
        assert!(mb
            .process(&s2c(TcpFlags::SYN), Direction::ToClient, 1)
            .forward
            .is_none());
        assert_eq!(mb.dropped, 1);
    }

    #[test]
    fn att_drops_every_server_syn() {
        let mut mb = CarrierMiddlebox::new(Carrier::Att);
        assert!(mb
            .process(&s2c(TcpFlags::SYN), Direction::ToClient, 0)
            .forward
            .is_none());
        assert!(mb
            .process(&s2c(TcpFlags::SYN_ACK), Direction::ToClient, 1)
            .forward
            .is_some());
    }

    #[test]
    fn client_direction_untouched() {
        let mut mb = CarrierMiddlebox::new(Carrier::Att);
        let mut syn = Packet::tcp(
            [10, 0, 0, 1],
            40000,
            [20, 0, 0, 9],
            80,
            TcpFlags::SYN,
            1,
            0,
            vec![],
        );
        syn.finalize();
        assert!(mb.process(&syn, Direction::ToServer, 0).forward.is_some());
    }
}
