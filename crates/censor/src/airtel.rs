//! India's Airtel middlebox (§5.2).
//!
//! Measured behavior the model encodes:
//!
//! * **Stateless**: no connection tracking at all — a forbidden
//!   request with no preceding handshake still triggers censorship.
//! * **Port 80 only**: hosting on any other port defeats it entirely.
//! * **No TCP reassembly**: DPI is strictly per-packet, so Strategy
//!   8's induced segmentation wins 100 %.
//! * **On-path injection**: it does not drop the request; it injects
//!   an HTTP 200 block page in a FIN+PSH+ACK packet, plus a follow-up
//!   RST "for good measure" (Yadav et al., confirmed by the paper).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use appproto::http;
use netsim::{Direction, Middlebox, Verdict};
use packet::{Packet, TcpFlags};

/// The Airtel (India) HTTP censor.
#[derive(Debug, Default)]
pub struct AirtelCensor {
    /// Keyword list (blacklisted Host values / URL substrings).
    pub keywords: Vec<String>,
    /// Count of censorship events (diagnostics).
    pub censor_events: u64,
}

impl AirtelCensor {
    /// With the default blacklist.
    pub fn new() -> AirtelCensor {
        AirtelCensor {
            keywords: vec!["youtube.com".to_string(), "ultrasurf".to_string()],
            censor_events: 0,
        }
    }

    fn forbidden(&self, payload: &[u8]) -> bool {
        self.keywords
            .iter()
            .any(|kw| http::request_is_forbidden(payload, kw))
    }
}

impl Middlebox for AirtelCensor {
    fn process(&mut self, pkt: &Packet, dir: Direction, _now: u64) -> Verdict {
        let mut verdict = Verdict::pass(pkt.clone());
        if dir != Direction::ToServer {
            return verdict;
        }
        let Some(tcp) = pkt.tcp_header() else {
            return verdict;
        };
        if tcp.dst_port != 80 || pkt.payload.is_empty() {
            return verdict; // default port only; per-packet DPI
        }
        if !self.forbidden(&pkt.payload) {
            return verdict;
        }
        self.censor_events += 1;
        // Stateless injection: all fields derived from the offending
        // packet itself.
        let client = (pkt.ip.src, tcp.src_port);
        let server = (pkt.ip.dst, tcp.dst_port);
        let next_client_seq = tcp.seq.wrapping_add(pkt.payload.len() as u32);

        let mut block = Packet::tcp(
            server.0,
            server.1,
            client.0,
            client.1,
            TcpFlags::FIN_PSH_ACK,
            tcp.ack,
            next_client_seq,
            http::block_page(),
        );
        block.finalize();
        verdict.inject_to_client.push(block);

        let mut rst = Packet::tcp(
            server.0,
            server.1,
            client.0,
            client.1,
            TcpFlags::RST,
            tcp.ack.wrapping_add(http::block_page().len() as u32 + 1),
            0,
            vec![],
        );
        rst.finalize();
        verdict.inject_to_client.push(rst);
        verdict
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn request_pkt(dst_port: u16, payload: &[u8]) -> Packet {
        let mut p = Packet::tcp(
            [10, 0, 0, 1],
            40000,
            [20, 0, 0, 9],
            dst_port,
            TcpFlags::PSH_ACK,
            1001,
            9001,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    fn forbidden_request() -> Vec<u8> {
        appproto::http::HttpClientApp::for_blocked_host("youtube.com").request_bytes()
    }

    #[test]
    fn injects_block_page_and_rst_on_port_80() {
        let mut censor = AirtelCensor::new();
        let verdict = censor.process(
            &request_pkt(80, &forbidden_request()),
            Direction::ToServer,
            0,
        );
        assert!(
            verdict.forward.is_some(),
            "on-path: request still forwarded"
        );
        assert_eq!(verdict.inject_to_client.len(), 2);
        assert_eq!(verdict.inject_to_client[0].flags(), TcpFlags::FIN_PSH_ACK);
        assert!(
            String::from_utf8_lossy(&verdict.inject_to_client[0].payload)
                .contains(appproto::http::BLOCK_MARKER)
        );
        assert_eq!(verdict.inject_to_client[1].flags(), TcpFlags::RST);
        assert_eq!(censor.censor_events, 1);
    }

    #[test]
    fn other_ports_are_free() {
        let mut censor = AirtelCensor::new();
        let verdict = censor.process(
            &request_pkt(8080, &forbidden_request()),
            Direction::ToServer,
            0,
        );
        assert!(verdict.inject_to_client.is_empty());
    }

    #[test]
    fn stateless_no_handshake_needed() {
        // First packet the censor ever sees is the request: still fires.
        let mut censor = AirtelCensor::new();
        let verdict = censor.process(
            &request_pkt(80, &forbidden_request()),
            Direction::ToServer,
            0,
        );
        assert!(!verdict.inject_to_client.is_empty());
    }

    #[test]
    fn segmentation_is_invisible() {
        let mut censor = AirtelCensor::new();
        let req = forbidden_request();
        for chunk in req.chunks(10) {
            let verdict = censor.process(&request_pkt(80, chunk), Direction::ToServer, 0);
            assert!(
                verdict.inject_to_client.is_empty(),
                "per-packet DPI must miss"
            );
        }
        assert_eq!(censor.censor_events, 0);
    }

    #[test]
    fn benign_host_passes() {
        let mut censor = AirtelCensor::new();
        let req = appproto::http::HttpClientApp::for_blocked_host("example.org").request_bytes();
        let verdict = censor.process(&request_pkt(80, &req), Direction::ToServer, 0);
        assert!(verdict.inject_to_client.is_empty());
    }

    #[test]
    fn server_direction_ignored() {
        let mut censor = AirtelCensor::new();
        let mut p = request_pkt(80, &forbidden_request());
        p.tcp_header_mut().unwrap().dst_port = 80;
        let verdict = censor.process(&p, Direction::ToClient, 0);
        assert!(verdict.inject_to_client.is_empty());
    }
}
