//! Iran's DPI (§5.2).
//!
//! Measured behavior the model encodes:
//!
//! * **Stateless per-packet DPI** on the default ports only (80 for
//!   HTTP keywords/hosts, 443 for TLS SNI);
//! * **In-path blackholing**: on a match it drops the offending packet
//!   and every subsequent packet from the client in that flow for one
//!   minute — no RST, no block page, the connection just dies;
//! * **No TCP reassembly** — Strategy 8 wins 100 % for both HTTP and
//!   HTTPS;
//! * DNS-over-TCP is **not** censored (contrary to Aryan et al. 2013).

use appproto::{http, tls};
use netsim::{Direction, Middlebox, Verdict};
use packet::packet::FlowKey;
use packet::Packet;
use std::collections::HashMap;

/// Blackhole duration: one minute.
pub const BLACKHOLE_US: u64 = 60_000_000;

/// The Iranian censor.
#[derive(Debug, Default)]
pub struct IranCensor {
    /// Blacklisted names (Host header / SNI / URL substring).
    pub keywords: Vec<String>,
    /// Flows being blackholed, with expiry times.
    blackholed: HashMap<FlowKey, u64>,
    /// Count of censorship events (diagnostics).
    pub censor_events: u64,
}

impl IranCensor {
    /// With the default blacklist.
    pub fn new() -> IranCensor {
        IranCensor {
            keywords: vec!["youtube.com".to_string()],
            blackholed: HashMap::new(),
            censor_events: 0,
        }
    }

    fn forbidden(&self, dst_port: u16, payload: &[u8]) -> bool {
        match dst_port {
            80 => self
                .keywords
                .iter()
                .any(|kw| http::request_is_forbidden(payload, kw)),
            443 => tls::parse_sni(payload)
                .map(|sni| self.keywords.iter().any(|kw| sni.contains(kw)))
                .unwrap_or(false),
            _ => false, // default ports only
        }
    }
}

impl Middlebox for IranCensor {
    fn process(&mut self, pkt: &Packet, dir: Direction, now: u64) -> Verdict {
        let Some(tcp) = pkt.tcp_header() else {
            return Verdict::pass(pkt.clone());
        };
        let key = pkt.flow_key();
        // Active blackhole: client→server packets vanish.
        if dir == Direction::ToServer {
            if let Some(&until) = self.blackholed.get(&key) {
                if now < until {
                    return Verdict::drop();
                }
                self.blackholed.remove(&key);
            }
        }
        if dir == Direction::ToServer
            && !pkt.payload.is_empty()
            && self.forbidden(tcp.dst_port, &pkt.payload)
        {
            self.censor_events += 1;
            self.blackholed.insert(key, now + BLACKHOLE_US);
            return Verdict::drop(); // the offending packet never arrives
        }
        Verdict::pass(pkt.clone())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;
    use packet::TcpFlags;

    fn pkt(dst_port: u16, seq: u32, payload: &[u8]) -> Packet {
        let mut p = Packet::tcp(
            [10, 0, 0, 1],
            40000,
            [20, 0, 0, 9],
            dst_port,
            TcpFlags::PSH_ACK,
            seq,
            9001,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    #[test]
    fn forbidden_http_blackholes_the_flow() {
        let mut censor = IranCensor::new();
        let req = http::HttpClientApp::for_blocked_host("youtube.com").request_bytes();
        let verdict = censor.process(&pkt(80, 1001, &req), Direction::ToServer, 0);
        assert!(verdict.forward.is_none(), "offending packet dropped");
        // Later innocuous packet on the same flow, still inside 60 s:
        let verdict = censor.process(&pkt(80, 2000, b"hello"), Direction::ToServer, 1_000_000);
        assert!(verdict.forward.is_none(), "blackholed");
        // After 60 s the flow breathes again.
        let verdict = censor.process(&pkt(80, 3000, b"hello"), Direction::ToServer, 61_000_001);
        assert!(verdict.forward.is_some());
    }

    #[test]
    fn sni_censorship_on_443() {
        let mut censor = IranCensor::new();
        let hello = tls::client_hello("youtube.com", 5);
        let verdict = censor.process(&pkt(443, 1001, &hello), Direction::ToServer, 0);
        assert!(verdict.forward.is_none());
        assert_eq!(censor.censor_events, 1);
        // A benign SNI passes (fresh flow — the first one is now
        // blackholed, which is the point).
        let ok = tls::client_hello("example.org", 5);
        let mut fresh = pkt(443, 1001, &ok);
        fresh.tcp_header_mut().unwrap().src_port = 40001;
        fresh.finalize();
        let verdict = censor.process(&fresh, Direction::ToServer, 0);
        assert!(verdict.forward.is_some());
    }

    #[test]
    fn non_default_ports_are_free() {
        let mut censor = IranCensor::new();
        let req = http::HttpClientApp::for_blocked_host("youtube.com").request_bytes();
        let verdict = censor.process(&pkt(8443, 1001, &req), Direction::ToServer, 0);
        assert!(verdict.forward.is_some());
    }

    #[test]
    fn segmentation_is_invisible() {
        let mut censor = IranCensor::new();
        let hello = tls::client_hello("youtube.com", 5);
        for chunk in hello.chunks(10) {
            let verdict = censor.process(&pkt(443, 1001, chunk), Direction::ToServer, 0);
            assert!(verdict.forward.is_some());
        }
        assert_eq!(censor.censor_events, 0);
    }

    #[test]
    fn server_packets_never_blackholed() {
        let mut censor = IranCensor::new();
        let req = http::HttpClientApp::for_blocked_host("youtube.com").request_bytes();
        censor.process(&pkt(80, 1001, &req), Direction::ToServer, 0);
        // Server→client traffic on the same flow still flows (the paper
        // observes the *client's* packets being dropped).
        let mut reply = Packet::tcp(
            [20, 0, 0, 9],
            80,
            [10, 0, 0, 1],
            40000,
            TcpFlags::ACK,
            9001,
            1001,
            vec![],
        );
        reply.finalize();
        let verdict = censor.process(&reply, Direction::ToClient, 1);
        assert!(verdict.forward.is_some());
    }
}
