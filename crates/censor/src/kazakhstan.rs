//! Kazakhstan's in-path HTTP censor (§5.3).
//!
//! Measured behavior the model encodes:
//!
//! * **In-path MITM**: on a forbidden `Host:` it intercepts the flow —
//!   client packets (including the offending request) are dropped for
//!   ~15 seconds — and injects a FIN+PSH+ACK block page;
//! * **Per-packet DPI, port 80 only, no reassembly** (Strategy 8);
//! * a **normal-HTTP-connection pattern monitor**: the censor gives up
//!   on ("ignores") a connection whose handshake doesn't look normal.
//!   The paper's probes pin down three give-up conditions, which are
//!   Strategies 9–11:
//!   - **three or more** payload-bearing server packets during the
//!     handshake (one or two are tolerated — Strategy 9's controls);
//!   - **two** well-formed (up to `HTTP1.`) GET requests *from the
//!     server* during the handshake — the censor concludes the server
//!     is actually the client (Strategy 10);
//!   - any handshake packet whose flags include none of
//!     FIN/RST/SYN/ACK (Strategy 11's null flags).
//! * the paper's censor-probing quirk: when the *second* server-GET is
//!   a forbidden request, the censor processes it and responds (the
//!   first one only breaks it out of its handshake state).

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use appproto::http;
use netsim::{Direction, Middlebox, Verdict};
use packet::packet::FlowKey;
use packet::{Packet, TcpFlags};
use std::collections::HashMap;

/// Interception window after a censorship event: ~15 seconds.
pub const INTERCEPT_US: u64 = 15_000_000;

#[derive(Debug, Default)]
struct KzFlow {
    /// Handshake phase ends at the client's first payload.
    client_data_seen: bool,
    server_handshake_payloads: u32,
    server_handshake_gets: u32,
    /// The censor has written this flow off as not-normal-HTTP.
    ignored: bool,
    intercept_until: Option<u64>,
}

/// The Kazakh censor.
#[derive(Debug, Default)]
pub struct KazakhstanCensor {
    /// Blacklisted Host values.
    pub keywords: Vec<String>,
    flows: HashMap<FlowKey, KzFlow>,
    /// Count of censorship events against clients (diagnostics).
    pub censor_events: u64,
    /// Count of censor responses elicited by server-side probes
    /// (the §5.3 double-GET probing experiment).
    pub probe_responses: u64,
}

/// Is this payload a well-formed GET prefix up to the version dot
/// (`GET <path> HTTP1.` / `GET <path> HTTP/1.`)?
fn is_wellformed_get_prefix(payload: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(payload) else {
        return false;
    };
    let Some(rest) = text.strip_prefix("GET ") else {
        return false;
    };
    let Some((path, rest)) = rest.split_once(' ') else {
        return false;
    };
    !path.is_empty() && (rest.starts_with("HTTP1.") || rest.starts_with("HTTP/1."))
}

impl KazakhstanCensor {
    /// With the default blacklist.
    pub fn new() -> KazakhstanCensor {
        KazakhstanCensor {
            keywords: vec!["youtube.com".to_string()],
            ..KazakhstanCensor::default()
        }
    }

    fn forbidden(&self, payload: &[u8]) -> bool {
        self.keywords
            .iter()
            .any(|kw| http::request_is_forbidden(payload, kw))
    }

    fn block_page_packet(from: ([u8; 4], u16), to: ([u8; 4], u16), seq: u32, ack: u32) -> Packet {
        let mut block = Packet::tcp(
            from.0,
            from.1,
            to.0,
            to.1,
            TcpFlags::FIN_PSH_ACK,
            seq,
            ack,
            http::block_page(),
        );
        block.finalize();
        block
    }
}

impl Middlebox for KazakhstanCensor {
    fn process(&mut self, pkt: &Packet, dir: Direction, now: u64) -> Verdict {
        let Some(tcp) = pkt.tcp_header() else {
            return Verdict::pass(pkt.clone());
        };
        // Port 80 only (either direction of a port-80 flow).
        if tcp.dst_port != 80 && tcp.src_port != 80 {
            return Verdict::pass(pkt.clone());
        }
        let key = pkt.flow_key();
        // Precompute DPI verdicts before borrowing flow state.
        let payload_forbidden = !pkt.payload.is_empty() && self.forbidden(&pkt.payload);
        let flow = self.flows.entry(key).or_default();

        // Active interception: the client's packets never reach the
        // server (the MITM holds the connection).
        if dir == Direction::ToServer {
            if let Some(until) = flow.intercept_until {
                if now < until {
                    return Verdict::drop();
                }
                flow.intercept_until = None;
            }
        }

        match dir {
            Direction::ToClient => {
                if !flow.client_data_seen && !flow.ignored {
                    let flags = tcp.flags;
                    // Null/esoteric flags break the handshake model.
                    if !flags
                        .intersects(TcpFlags::FIN | TcpFlags::RST | TcpFlags::SYN | TcpFlags::ACK)
                    {
                        flow.ignored = true;
                        return Verdict::pass(pkt.clone());
                    }
                    if !pkt.payload.is_empty() {
                        flow.server_handshake_payloads += 1;
                        if flow.server_handshake_payloads >= 3 {
                            // Three payload-bearing handshake packets:
                            // this is not a normal HTTP connection.
                            flow.ignored = true;
                        }
                        if is_wellformed_get_prefix(&pkt.payload) {
                            flow.server_handshake_gets += 1;
                            if flow.server_handshake_gets == 2 {
                                if payload_forbidden {
                                    // Probing quirk: the SECOND injected
                                    // request is processed — the censor
                                    // answers the "client" (our server).
                                    self.probe_responses += 1;
                                    let mut verdict = Verdict::pass(pkt.clone());
                                    verdict.inject_to_server.push(Self::block_page_packet(
                                        (pkt.ip.dst, tcp.dst_port),
                                        (pkt.ip.src, tcp.src_port),
                                        tcp.ack,
                                        tcp.seq.wrapping_add(pkt.payload.len() as u32),
                                    ));
                                    flow.ignored = true;
                                    return verdict;
                                }
                                // Two benign GETs from the "server":
                                // roles look inverted; give up.
                                flow.ignored = true;
                            }
                        }
                    }
                }
                Verdict::pass(pkt.clone())
            }
            Direction::ToServer => {
                if !pkt.payload.is_empty() {
                    flow.client_data_seen = true;
                    if !flow.ignored && payload_forbidden {
                        self.censor_events += 1;
                        flow.intercept_until = Some(now + INTERCEPT_US);
                        let mut verdict = Verdict::drop();
                        verdict.inject_to_client.push(Self::block_page_packet(
                            (pkt.ip.dst, tcp.dst_port),
                            (pkt.ip.src, tcp.src_port),
                            tcp.ack,
                            tcp.seq.wrapping_add(pkt.payload.len() as u32),
                        ));
                        return verdict;
                    }
                }
                Verdict::pass(pkt.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
    const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);

    fn c2s(flags: TcpFlags, seq: u32, payload: &[u8]) -> Packet {
        let mut p = Packet::tcp(
            CLIENT.0,
            CLIENT.1,
            SERVER.0,
            SERVER.1,
            flags,
            seq,
            9001,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    fn s2c(flags: TcpFlags, seq: u32, payload: &[u8]) -> Packet {
        let mut p = Packet::tcp(
            SERVER.0,
            SERVER.1,
            CLIENT.0,
            CLIENT.1,
            flags,
            seq,
            1001,
            payload.to_vec(),
        );
        p.finalize();
        p
    }

    fn forbidden_request() -> Vec<u8> {
        http::HttpClientApp::for_blocked_host("youtube.com").request_bytes()
    }

    #[test]
    fn forbidden_request_is_intercepted_with_block_page() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        censor.process(&s2c(TcpFlags::SYN_ACK, 9000, b""), Direction::ToClient, 1);
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            2,
        );
        assert!(verdict.forward.is_none(), "in-path: request intercepted");
        assert_eq!(verdict.inject_to_client.len(), 1);
        assert_eq!(verdict.inject_to_client[0].flags(), TcpFlags::FIN_PSH_ACK);
        // Subsequent client packets swallowed for 15 s…
        let verdict = censor.process(
            &c2s(TcpFlags::ACK, 2000, b"x"),
            Direction::ToServer,
            1_000_000,
        );
        assert!(verdict.forward.is_none());
        // …and released afterwards.
        let verdict = censor.process(
            &c2s(TcpFlags::ACK, 2001, b"x"),
            Direction::ToServer,
            2 + INTERCEPT_US + 1,
        );
        assert!(verdict.forward.is_some());
    }

    #[test]
    fn triple_payload_makes_flow_ignored() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        for i in 0..3 {
            censor.process(
                &s2c(TcpFlags::SYN_ACK, 9000, b"\xAA\xBB\xCC"),
                Direction::ToClient,
                1 + i,
            );
        }
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            10,
        );
        assert!(verdict.forward.is_some(), "flow ignored ⇒ request passes");
        assert_eq!(censor.censor_events, 0);
    }

    #[test]
    fn one_or_two_payloads_are_not_enough() {
        for count in [1u64, 2] {
            let mut censor = KazakhstanCensor::new();
            censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
            for i in 0..count {
                censor.process(
                    &s2c(TcpFlags::SYN_ACK, 9000, b"\xAA\xBB"),
                    Direction::ToClient,
                    1 + i,
                );
            }
            let verdict = censor.process(
                &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
                Direction::ToServer,
                10,
            );
            assert!(
                verdict.forward.is_none(),
                "{count} payloads: still censored"
            );
        }
    }

    #[test]
    fn double_benign_get_confuses_roles() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        for i in 0..2 {
            censor.process(
                &s2c(TcpFlags::SYN_ACK, 9000, b"GET / HTTP1."),
                Direction::ToClient,
                1 + i,
            );
        }
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            10,
        );
        assert!(verdict.forward.is_some(), "double GET ⇒ ignored");
    }

    #[test]
    fn single_get_or_malformed_get_fails() {
        // One GET only.
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        censor.process(
            &s2c(TcpFlags::SYN_ACK, 9000, b"GET / HTTP1."),
            Direction::ToClient,
            1,
        );
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            10,
        );
        assert!(verdict.forward.is_none(), "one GET is not enough");

        // Two malformed GETs (missing the version dot).
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        for i in 0..2 {
            censor.process(
                &s2c(TcpFlags::SYN_ACK, 9000, b"GET / HTT"),
                Direction::ToClient,
                1 + i,
            );
        }
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            10,
        );
        assert!(verdict.forward.is_none(), "malformed GETs don't count");
    }

    #[test]
    fn null_flags_packet_breaks_the_monitor() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        censor.process(&s2c(TcpFlags::NONE, 9000, b""), Direction::ToClient, 1);
        censor.process(&s2c(TcpFlags::SYN_ACK, 9000, b""), Direction::ToClient, 2);
        let verdict = censor.process(
            &c2s(TcpFlags::PSH_ACK, 1001, &forbidden_request()),
            Direction::ToServer,
            10,
        );
        assert!(verdict.forward.is_some(), "null flags ⇒ ignored");
    }

    #[test]
    fn probe_second_forbidden_get_elicits_response() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        let forbidden = forbidden_request();
        // First forbidden GET from the server: no response.
        let v1 = censor.process(
            &s2c(TcpFlags::SYN_ACK, 9000, &forbidden),
            Direction::ToClient,
            1,
        );
        assert!(v1.inject_to_server.is_empty());
        // Second forbidden GET: censor answers the server.
        let v2 = censor.process(
            &s2c(TcpFlags::SYN_ACK, 9000, &forbidden),
            Direction::ToClient,
            2,
        );
        assert_eq!(v2.inject_to_server.len(), 1);
        assert_eq!(censor.probe_responses, 1);
    }

    #[test]
    fn probe_forbidden_then_benign_is_silent() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        let forbidden = forbidden_request();
        let benign = http::HttpClientApp::for_blocked_host("example.org").request_bytes();
        censor.process(
            &s2c(TcpFlags::SYN_ACK, 9000, &forbidden),
            Direction::ToClient,
            1,
        );
        let v2 = censor.process(
            &s2c(TcpFlags::SYN_ACK, 9000, &benign),
            Direction::ToClient,
            2,
        );
        assert!(
            v2.inject_to_server.is_empty(),
            "second request is the processed one"
        );
        assert_eq!(censor.probe_responses, 0);
    }

    #[test]
    fn segmentation_is_invisible() {
        let mut censor = KazakhstanCensor::new();
        censor.process(&c2s(TcpFlags::SYN, 1000, b""), Direction::ToServer, 0);
        let req = forbidden_request();
        let mut seq = 1001;
        for chunk in req.chunks(10) {
            let verdict =
                censor.process(&c2s(TcpFlags::PSH_ACK, seq, chunk), Direction::ToServer, 5);
            assert!(verdict.forward.is_some());
            seq += chunk.len() as u32;
        }
        assert_eq!(censor.censor_events, 0);
    }

    #[test]
    fn non_port_80_is_free() {
        let mut censor = KazakhstanCensor::new();
        let mut p = Packet::tcp(
            CLIENT.0,
            CLIENT.1,
            SERVER.0,
            8080,
            TcpFlags::PSH_ACK,
            1001,
            0,
            forbidden_request(),
        );
        p.finalize();
        let verdict = censor.process(&p, Direction::ToServer, 0);
        assert!(verdict.forward.is_some());
    }
}
