//! # censor — behavioral models of four nation-state censors
//!
//! The paper measures live censors; we cannot, so this crate encodes
//! everything §2, §5, and §6 establish about how each censor behaves,
//! as an executable model (`netsim::Middlebox` implementations):
//!
//! * [`gfw`] — China's Great Firewall as **five independent
//!   censorship boxes**, one per application protocol (the §6
//!   multi-box finding), each an on-path device with its own TCB
//!   store, its own resynchronization-state machine (the §5 revised
//!   three-rule model), its own reassembly (dis)ability, and its own
//!   stack bugs. Residual censorship for HTTP only (§4.2).
//! * [`airtel`] — India (Airtel): stateless per-packet DPI on port
//!   80, HTTP-200 block-page injection plus a follow-up RST (§5.2).
//! * [`iran`] — Iran: stateless per-packet DPI on ports 80/443
//!   (HTTP keyword + TLS SNI), 60-second flow blackholing (§5.2).
//! * [`kazakhstan`] — an in-path MITM for HTTP with a
//!   normal-connection pattern monitor; on trigger it intercepts the
//!   flow for 15 s and injects a block page (§5.3).
//!
//! All stochastic behavior draws from per-censor seeded RNGs, so every
//! experiment replays bit-for-bit.

#![forbid(unsafe_code)]

pub mod airtel;
pub mod carrier;
pub mod dns_udp;
pub mod gfw;
pub mod iran;
pub mod kazakhstan;
pub mod stream;

pub use airtel::AirtelCensor;
pub use carrier::{Carrier, CarrierMiddlebox};
pub use dns_udp::DnsUdpInjector;
pub use gfw::{Gfw, GfwBox, GfwBoxParams};
pub use iran::IranCensor;
pub use kazakhstan::KazakhstanCensor;
pub use stream::CensorStream;

use netsim::Middlebox;

/// The four censoring countries of the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Country {
    /// China (GFW): DNS, FTP, HTTP, HTTPS, SMTP.
    China,
    /// India (Airtel ISP): HTTP only.
    India,
    /// Iran: HTTP and HTTPS (DNS-over-TCP no longer censored).
    Iran,
    /// Kazakhstan: HTTP (HTTPS MITM currently inactive).
    Kazakhstan,
}

impl Country {
    /// All four, in Table-1 order.
    pub fn all() -> [Country; 4] {
        [
            Country::China,
            Country::India,
            Country::Iran,
            Country::Kazakhstan,
        ]
    }

    /// Parse a case-insensitive country name (the geo-file spelling).
    pub fn parse(s: &str) -> Option<Country> {
        Country::all()
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(s))
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Country::China => "China",
            Country::India => "India",
            Country::Iran => "Iran",
            Country::Kazakhstan => "Kazakhstan",
        }
    }

    /// Protocols this censor actually censors (Table 2's "no evasion"
    /// row is 100 % success everywhere else).
    pub fn censored_protocols(self) -> &'static [appproto::AppProtocol] {
        use appproto::AppProtocol as P;
        match self {
            Country::China => &[P::DnsTcp, P::Ftp, P::Http, P::Https, P::Smtp],
            Country::India => &[P::Http],
            Country::Iran => &[P::Http, P::Https],
            Country::Kazakhstan => &[P::Http],
        }
    }

    /// Build this country's censor with a deterministic seed.
    pub fn build(self, seed: u64) -> Box<dyn Middlebox> {
        match self {
            Country::China => Box::new(Gfw::standard(seed)),
            Country::India => Box::new(AirtelCensor::new()),
            Country::Iran => Box::new(IranCensor::new()),
            Country::Kazakhstan => Box::new(KazakhstanCensor::new()),
        }
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
