//! The GFW's classic DNS-over-UDP response injector (§2.1 background).
//!
//! "On-path censors have been observed to inject … DNS lemon responses
//! to thwart address lookup." For a UDP query there is no connection
//! state to desynchronize: the injector sees the (plaintext) QNAME in
//! a single datagram and races a forged answer back to the client.
//! Because the censor sits closer to the client than the resolver, the
//! forgery always wins the race — which is exactly why the paper's DNS
//! evasion work happens over **TCP**, where the handshake gives a
//! server-side strategy something to manipulate.

use appproto::dns;
use netsim::{Direction, Middlebox, Verdict};
use packet::Packet;

/// The UDP DNS injector.
#[derive(Debug, Default)]
pub struct DnsUdpInjector {
    /// Censored QNAME substrings.
    pub keywords: Vec<String>,
    /// Count of injected forgeries (diagnostics).
    pub injections: u64,
}

impl DnsUdpInjector {
    /// With the default blocklist.
    pub fn new() -> DnsUdpInjector {
        DnsUdpInjector {
            keywords: vec!["wikipedia".to_string()],
            injections: 0,
        }
    }
}

impl Middlebox for DnsUdpInjector {
    fn process(&mut self, pkt: &Packet, dir: Direction, _now: u64) -> Verdict {
        let mut verdict = Verdict::pass(pkt.clone());
        if dir != Direction::ToServer {
            return verdict;
        }
        let Some(udp) = pkt.udp_header() else {
            return verdict;
        };
        if udp.dst_port != 53 {
            return verdict;
        }
        let Some(qname) = dns::parse_query_name_udp(&pkt.payload) else {
            return verdict;
        };
        if !self.keywords.iter().any(|kw| qname.contains(kw)) {
            return verdict;
        }
        if let Some(forged) = dns::build_response_message(&pkt.payload, dns::LEMON_IP) {
            self.injections += 1;
            let mut lemon = Packet::udp(pkt.ip.dst, udp.dst_port, pkt.ip.src, udp.src_port, forged);
            lemon.finalize();
            // On-path: the query still reaches the resolver; the
            // forgery just arrives first.
            verdict.inject_to_client.push(lemon);
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    fn query_pkt(name: &str) -> Packet {
        let mut p = Packet::udp(
            [10, 0, 0, 1],
            40000,
            [8, 8, 8, 8],
            53,
            dns::build_query_message(name, 0x1234),
        );
        p.finalize();
        p
    }

    #[test]
    fn forbidden_query_draws_a_lemon() {
        let mut injector = DnsUdpInjector::new();
        let verdict = injector.process(&query_pkt("www.wikipedia.org"), Direction::ToServer, 0);
        assert!(verdict.forward.is_some(), "on-path: query still forwarded");
        assert_eq!(verdict.inject_to_client.len(), 1);
        let forged = &verdict.inject_to_client[0];
        assert_eq!(dns::response_answer(&forged.payload), Some(dns::LEMON_IP));
        // The forgery answers the client's exact transaction.
        assert_eq!(&forged.payload[0..2], &0x1234u16.to_be_bytes());
        assert_eq!(injector.injections, 1);
    }

    #[test]
    fn benign_query_passes_clean() {
        let mut injector = DnsUdpInjector::new();
        let verdict = injector.process(&query_pkt("example.org"), Direction::ToServer, 0);
        assert!(verdict.inject_to_client.is_empty());
    }

    #[test]
    fn non_dns_udp_ignored() {
        let mut injector = DnsUdpInjector::new();
        let mut p = Packet::udp([10, 0, 0, 1], 40000, [8, 8, 8, 8], 123, b"ntp".to_vec());
        p.finalize();
        let verdict = injector.process(&p, Direction::ToServer, 0);
        assert!(verdict.inject_to_client.is_empty());
    }

    #[test]
    fn responses_are_not_reinjected() {
        let mut injector = DnsUdpInjector::new();
        let q = dns::build_query_message("www.wikipedia.org", 1);
        let resp = dns::build_response_message(&q, dns::ANSWER_IP).unwrap();
        let mut p = Packet::udp([8, 8, 8, 8], 53, [10, 0, 0, 1], 40000, resp);
        p.finalize();
        let verdict = injector.process(&p, Direction::ToClient, 0);
        assert!(verdict.inject_to_client.is_empty());
    }
}
