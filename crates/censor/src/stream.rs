//! Censor-side client-stream tracking.
//!
//! Differs from an endpoint's reassembler ([`endpoint::StreamAssembler`])
//! in two censor-specific ways established by the paper's follow-up
//! experiments:
//!
//! 1. **No overlap trimming.** A segment whose sequence number is
//!    *below* the expected cursor is discarded outright — the §5.1
//!    seq−1 experiment shows the GFW never matches a request shifted
//!    one byte early, whereas a real server trims the overlap and
//!    recovers the request.
//! 2. **Two inspection modes.** A *stream* censor accumulates in-order
//!    bytes and runs DPI over the whole buffer (GFW HTTP/HTTPS/DNS).
//!    A *per-packet* censor inspects each in-sequence payload in
//!    isolation (GFW SMTP, often FTP; India; Iran; Kazakhstan) —
//!    "incapable of reassembling TCP segments", the deficiency
//!    Strategy 8 exploits.
//!
//! Both modes still *track* the sequence cursor, which is what the
//! desynchronization strategies (1–7) poison via `resync_to`.

// Wire formats truncate by definition: length, checksum, and offset
// fields are specified modulo their width.
#![allow(clippy::cast_possible_truncation)]
use std::collections::BTreeMap;

/// How a censor inspects the bytes it tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectMode {
    /// Accumulate in-order bytes; DPI sees the growing stream.
    Stream,
    /// DPI sees each in-sequence packet payload in isolation.
    PerPacket,
}

/// One direction's tracked byte stream inside a censor TCB.
#[derive(Debug, Clone)]
pub struct CensorStream {
    expected: u32,
    mode: InspectMode,
    /// Accumulated in-order bytes (Stream mode only).
    buffer: Vec<u8>,
    /// Buffered out-of-order segments (Stream mode only), keyed by
    /// absolute sequence number.
    pending: BTreeMap<u32, Vec<u8>>,
    /// Cap on accumulated state.
    max_bytes: usize,
}

impl CensorStream {
    /// Track a stream whose next byte is `initial_seq`.
    pub fn new(initial_seq: u32, mode: InspectMode) -> Self {
        CensorStream {
            expected: initial_seq,
            mode,
            buffer: Vec::new(),
            pending: BTreeMap::new(),
            max_bytes: 64 << 10,
        }
    }

    /// The cursor: sequence number of the next expected byte.
    pub fn expected(&self) -> u32 {
        self.expected
    }

    /// Poison (or fix) the cursor — the resynchronization-state
    /// mechanism. Pending data is discarded.
    pub fn resync_to(&mut self, seq: u32) {
        self.expected = seq;
        self.buffer.clear();
        self.pending.clear();
    }

    /// Offer one client segment; returns the buffers DPI should now
    /// inspect (empty when the segment was ignored or buffered).
    pub fn push(&mut self, seq: u32, payload: &[u8]) -> Vec<Vec<u8>> {
        if payload.is_empty() {
            return Vec::new();
        }
        let offset = seq.wrapping_sub(self.expected);
        if offset >= 0x8000_0000 {
            // seq < expected: censors discard early/overlapping
            // segments entirely (the seq−1 experiment).
            return Vec::new();
        }
        match self.mode {
            InspectMode::PerPacket => {
                if offset != 0 {
                    return Vec::new(); // can't reassemble: gap → blind
                }
                self.expected = self.expected.wrapping_add(payload.len() as u32);
                vec![payload.to_vec()]
            }
            InspectMode::Stream => {
                if offset == 0 {
                    self.append(payload);
                    self.drain_pending();
                } else if self.pending.len() < 32 {
                    self.pending.insert(seq, payload.to_vec());
                    return Vec::new();
                } else {
                    return Vec::new();
                }
                vec![self.buffer.clone()]
            }
        }
    }

    fn append(&mut self, payload: &[u8]) {
        let room = self.max_bytes.saturating_sub(self.buffer.len());
        self.buffer
            .extend_from_slice(&payload[..payload.len().min(room)]);
        self.expected = self.expected.wrapping_add(payload.len() as u32);
    }

    /// Splice buffered future segments that have become contiguous.
    /// Segments that fell behind the cursor are discarded (no overlap
    /// trimming — censor semantics).
    fn drain_pending(&mut self) {
        loop {
            let mut appended = false;
            let mut stale: Option<u32> = None;
            for (&seq, data) in &self.pending {
                let offset = seq.wrapping_sub(self.expected);
                if offset == 0 {
                    let data = data.clone();
                    self.append(&data);
                    stale = Some(seq);
                    appended = true;
                    break;
                }
                if offset >= 0x8000_0000 {
                    stale = Some(seq); // now early: discard
                    break;
                }
            }
            if let Some(seq) = stale {
                self.pending.remove(&seq);
            }
            if !appended && stale.is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
    use super::*;

    #[test]
    fn per_packet_mode_inspects_each_aligned_segment() {
        let mut s = CensorStream::new(100, InspectMode::PerPacket);
        assert_eq!(s.push(100, b"RETR ultra"), vec![b"RETR ultra".to_vec()]);
        assert_eq!(s.push(110, b"surf\r\n"), vec![b"surf\r\n".to_vec()]);
        assert_eq!(s.expected(), 116);
    }

    #[test]
    fn per_packet_mode_ignores_gaps() {
        let mut s = CensorStream::new(100, InspectMode::PerPacket);
        assert!(s.push(105, b"later").is_empty());
        assert_eq!(s.expected(), 100, "cursor unmoved by a gap");
    }

    #[test]
    fn stream_mode_accumulates() {
        let mut s = CensorStream::new(0, InspectMode::Stream);
        assert_eq!(s.push(0, b"GET /?q=ul"), vec![b"GET /?q=ul".to_vec()]);
        let views = s.push(10, b"trasurf");
        assert_eq!(views, vec![b"GET /?q=ultrasurf".to_vec()]);
    }

    #[test]
    fn early_segments_are_discarded_not_trimmed() {
        // The seq−1 experiment: data one byte early must never surface.
        let mut s = CensorStream::new(1000, InspectMode::Stream);
        assert!(s
            .push(999, b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n")
            .is_empty());
        assert_eq!(s.expected(), 1000);
        let mut p = CensorStream::new(1000, InspectMode::PerPacket);
        assert!(p.push(999, b"whole request").is_empty());
    }

    #[test]
    fn desynced_by_one_never_matches() {
        // The strategies-1/2 mechanism: cursor poisoned one byte low.
        let mut s = CensorStream::new(1000, InspectMode::Stream);
        s.resync_to(999);
        // Real data arrives at 1000: a one-byte gap the censor waits on
        // forever (Stream) or ignores (PerPacket).
        assert!(s
            .push(1000, b"GET /?q=ultrasurf HTTP/1.1\r\n\r\n")
            .is_empty());
    }

    #[test]
    fn resync_to_garbage_blinds_the_censor() {
        let mut s = CensorStream::new(1000, InspectMode::Stream);
        s.resync_to(0xDEAD_BEEF);
        assert!(s.push(1000, b"forbidden").is_empty());
    }

    #[test]
    fn out_of_order_buffering_in_stream_mode() {
        let mut s = CensorStream::new(0, InspectMode::Stream);
        assert!(s.push(5, b"world").is_empty());
        let views = s.push(0, b"hello");
        assert_eq!(views, vec![b"helloworld".to_vec()]);
        assert_eq!(s.expected(), 10);
    }

    #[test]
    fn buffer_cap_respected() {
        let mut s = CensorStream::new(0, InspectMode::Stream);
        s.max_bytes = 4;
        s.push(0, b"abcdef");
        assert_eq!(s.buffer, b"abcd");
        assert_eq!(s.expected(), 6, "cursor still advances");
    }
}
