#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)] // test code
//! Property tests: censor models must be total — no packet sequence,
//! however deranged (it's produced by a genetic algorithm!), may crash
//! them, and on-path censors must never block traffic.

use censor::{AirtelCensor, Country, Gfw, IranCensor, KazakhstanCensor};
use netsim::{Direction, Middlebox};
use packet::{Packet, TcpFlags};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct FuzzPacket {
    from_client: bool,
    flags: u8,
    seq: u32,
    ack: u32,
    sport: u16,
    payload: Vec<u8>,
}

fn arb_packet() -> impl Strategy<Value = FuzzPacket> {
    (
        any::<bool>(),
        any::<u8>(),
        any::<u32>(),
        any::<u32>(),
        prop_oneof![Just(40000u16), 1024u16..65535],
        prop_oneof![
            Just(Vec::new()),
            prop::collection::vec(any::<u8>(), 1..64),
            Just(b"GET /?q=ultrasurf HTTP/1.1\r\nHost: youtube.com\r\n\r\n".to_vec()),
            Just(b"RCPT TO:<xiazai@upup.info>\r\n".to_vec()),
        ],
    )
        .prop_map(
            |(from_client, flags, seq, ack, sport, payload)| FuzzPacket {
                from_client,
                flags,
                seq,
                ack,
                sport,
                payload,
            },
        )
}

fn build(fp: &FuzzPacket) -> (Packet, Direction) {
    const CLIENT: ([u8; 4], u16) = ([10, 0, 0, 1], 40000);
    const SERVER: ([u8; 4], u16) = ([20, 0, 0, 9], 80);
    let (src, dst, sport, dport, dir) = if fp.from_client {
        (CLIENT.0, SERVER.0, fp.sport, SERVER.1, Direction::ToServer)
    } else {
        (SERVER.0, CLIENT.0, SERVER.1, fp.sport, Direction::ToClient)
    };
    let mut p = Packet::tcp(
        src,
        sport,
        dst,
        dport,
        TcpFlags(fp.flags),
        fp.seq,
        fp.ack,
        fp.payload.clone(),
    );
    p.finalize();
    (p, dir)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn gfw_is_total_and_always_forwards(
        packets in prop::collection::vec(arb_packet(), 1..30),
        seed in any::<u64>(),
    ) {
        let mut gfw = Gfw::standard(seed);
        for (i, fp) in packets.iter().enumerate() {
            let (pkt, dir) = build(fp);
            let verdict = gfw.process(&pkt, dir, i as u64 * 1000);
            // On-path: NEVER drops. Fail-open is §6's architectural
            // consequence of the multi-box design.
            prop_assert!(verdict.forward.is_some());
            for inj in verdict.inject_to_client.iter().chain(&verdict.inject_to_server) {
                prop_assert!(inj.checksums_ok(), "censor injected invalid packet");
            }
        }
    }

    #[test]
    fn all_censors_are_total(
        packets in prop::collection::vec(arb_packet(), 1..30),
        seed in any::<u64>(),
    ) {
        let mut censors: Vec<Box<dyn Middlebox>> = vec![
            Box::new(AirtelCensor::new()),
            Box::new(IranCensor::new()),
            Box::new(KazakhstanCensor::new()),
            Box::new(Gfw::single_box_ablation(seed)),
            Box::new(Gfw::old_resync_model(seed)),
        ];
        for censor in &mut censors {
            for (i, fp) in packets.iter().enumerate() {
                let (pkt, dir) = build(fp);
                let _ = censor.process(&pkt, dir, i as u64 * 1000); // must not panic
            }
        }
    }

    #[test]
    fn country_builders_are_total(
        packets in prop::collection::vec(arb_packet(), 1..15),
        seed in any::<u64>(),
    ) {
        for country in Country::all() {
            let mut censor = country.build(seed);
            for (i, fp) in packets.iter().enumerate() {
                let (pkt, dir) = build(fp);
                let _ = censor.process(&pkt, dir, i as u64 * 1000);
            }
        }
    }
}
