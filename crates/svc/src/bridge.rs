//! The socket front end: live frames in and out of the data plane.
//!
//! [`Bridge`] implements [`dplane::PacketIo`] over nonblocking
//! `std::net` sockets. The encapsulation is *frame-in-datagram*: every
//! UDP datagram carries exactly one raw IPv4 frame (the bytes
//! [`packet::Packet::serialize_raw`] would produce), and a TCP ingress
//! stream carries the same frames behind a 4-byte big-endian length
//! prefix. This keeps the front end deployable without privileges — no
//! raw sockets, no pcap, no tun device — while still moving the exact
//! bytes the evasion programs produce, deliberately broken checksums
//! included.
//!
//! Routing is learned, not configured: when a frame arrives, the
//! bridge remembers *inner source address → socket peer*. Emissions
//! whose inner destination matches a learned address go back to that
//! peer; everything else is forwarded to the configured upstream (the
//! protected origin server in a real deployment, the loopback echo
//! harness in tests). Because the origin's own frames teach the bridge
//! where the origin lives, a symmetric flow needs no static routes at
//! all.
//!
//! ## Two backends, one contract
//!
//! The bridge runs one of two interchangeable socket backends,
//! selected at runtime ([`BackendChoice`]):
//!
//! * **epoll** (Linux, the default where it works): a single
//!   level-triggered epoll instance watches the UDP socket, the TCP
//!   listener, every ingress connection, and a wakeup eventfd. UDP
//!   ingress drains in ≤[`RECV_BATCH`]-frame `recvmmsg` batches into a
//!   preallocated arena (no per-datagram allocation in the I/O layer),
//!   UDP egress leaves in `sendmmsg` batches, and a full socket buffer
//!   arms `EPOLLOUT` instead of sleeping. Idle waits block in
//!   `epoll_wait` until traffic or a [`crate::sys::Waker`] kick.
//! * **poll** (portable fallback, also the test oracle): the original
//!   readiness-poll loop over nonblocking `std::net` calls — one
//!   syscall per datagram, timed idle sleeps. No `unsafe`, no
//!   platform assumptions.
//!
//! Both backends feed the same parse → learn → queue path and the same
//! egress queues, so the data plane cannot tell them apart — the
//! dual-backend byte-identity test in `tests/service.rs` holds the two
//! to bit-equal emissions.
//!
//! Egress is **queued on both backends**: `emit` serializes into a
//! recycled buffer and enqueues; the actual sends happen in
//! [`Bridge::flush`] (called by the data plane at the end of every
//! pump via [`dplane::PacketIo::flush`]). A slow TCP peer accumulates
//! into its per-connection write buffer (bounded by
//! [`TCP_EGRESS_CAP`]; beyond that the connection is poisoned) rather
//! than blocking the data thread — the 1ms sleep-retry loop this
//! replaces is gone on both backends.
//!
//! Timestamps handed to the data plane are microseconds from a
//! process-local monotonic epoch, so flow idle expiry sees real time.

use crate::sys;
use packet::Packet;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;
use std::time::Instant;

/// Largest encapsulated frame we accept (an IPv4 packet cannot exceed
/// 65535 bytes; the TCP framing rejects anything claiming more).
pub const MAX_FRAME: usize = 65_535;

/// Upper bound on concurrently tracked TCP ingress connections.
/// Learned peer routes index into the connection table, so closed
/// slots are retired in place rather than removed; the cap keeps a
/// connect-flood from growing the table without bound.
pub const MAX_CONNS: usize = 1024;

/// Datagrams per `recvmmsg`/`sendmmsg` batch on the epoll backend.
pub const RECV_BATCH: usize = 64;

/// Cap on queued-but-unsent UDP egress frames; beyond this the newest
/// frame is dropped (counted unroutable), the same contract a full
/// NIC ring gives a real middlebox.
pub const UDP_EGRESS_CAP: usize = 16_384;

/// Cap on one TCP connection's unsent egress bytes. A peer slower
/// than this is poisoned (connection dropped) rather than allowed to
/// wedge the data thread's memory.
pub const TCP_EGRESS_CAP: usize = 64 * 1024 * 1024;

/// Upper edges of the `frames_per_batch` histogram buckets.
pub const FPB_BUCKET_EDGES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Which socket backend to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// epoll where supported (Linux, IPv4 sockets), else poll.
    #[default]
    Auto,
    /// Require the epoll backend; binding fails where unsupported.
    Epoll,
    /// Force the portable readiness-poll backend.
    Poll,
}

impl BackendChoice {
    /// Parse an operator-facing name (`auto` / `epoll` / `poll`).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s {
            "auto" => Some(BackendChoice::Auto),
            "epoll" => Some(BackendChoice::Epoll),
            "poll" => Some(BackendChoice::Poll),
            _ => None,
        }
    }
}

/// The backend a bridge actually runs (after `Auto` resolution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// Event-driven: epoll + recvmmsg/sendmmsg + eventfd.
    Epoll,
    /// Portable readiness polling over plain `std::net`.
    #[default]
    Poll,
}

impl BackendKind {
    /// Stable operator-facing name (appears in `/status`, Prometheus
    /// labels, and `BENCH_svc.json`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Epoll => "epoll",
            BackendKind::Poll => "poll",
        }
    }
}

/// Where the bridge listens and where unroutable emissions go.
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// UDP bind address for frame-in-datagram ingress/egress.
    pub udp: SocketAddr,
    /// Optional TCP bind address for length-prefixed frame streams.
    pub tcp: Option<SocketAddr>,
    /// Default egress for emissions whose inner destination has no
    /// learned peer (typically the origin server's bridge).
    pub upstream: SocketAddr,
    /// Socket backend selection.
    pub backend: BackendChoice,
}

/// Counters the control plane folds into `/status`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BridgeStats {
    /// Frames decapsulated and queued for the data plane.
    pub frames_in: u64,
    /// Frames encapsulated and sent (UDP: handed to the kernel; TCP:
    /// appended to a live connection's write buffer).
    pub frames_out: u64,
    /// Datagrams / stream frames that did not parse as IPv4 packets.
    pub parse_errors: u64,
    /// Emissions dropped because no peer and no upstream would take
    /// them (send failure, closed connection, or egress cap).
    pub unroutable: u64,
    /// TCP ingress connections accepted.
    pub tcp_accepted: u64,
    /// Syscalls made by this bridge (both backends count, via
    /// [`crate::sys::SyscallCounter`]).
    pub syscalls: u64,
    /// Ingress batches that delivered at least one frame (a fallback
    /// `recv_from` counts as a batch of 1).
    pub recv_batches: u64,
    /// Histogram of frames per ingress batch; bucket upper edges are
    /// [`FPB_BUCKET_EDGES`].
    pub frames_per_batch: [u64; 7],
    /// Egress attempts that hit a full socket buffer and were deferred
    /// (epoll: `EPOLLOUT` armed; poll: retried next flush).
    pub egress_backpressure_events: u64,
    /// The backend this bridge runs.
    pub backend: BackendKind,
}

impl BridgeStats {
    fn note_batch(&mut self, frames: usize) {
        if frames == 0 {
            return;
        }
        self.recv_batches += 1;
        let frames = frames as u64;
        let idx = FPB_BUCKET_EDGES
            .iter()
            .position(|&edge| frames <= edge)
            .unwrap_or(FPB_BUCKET_EDGES.len() - 1);
        self.frames_per_batch[idx] += 1;
    }
}

/// Which socket a learned inner address lives behind.
#[derive(Debug, Clone, Copy)]
enum Peer {
    /// A UDP peer at this socket address.
    Udp(SocketAddr),
    /// A TCP ingress connection, by index into `Bridge::conns`.
    Tcp(usize),
}

/// One TCP ingress connection with its reassembly and write buffers.
struct Conn {
    stream: Option<TcpStream>,
    rd: Vec<u8>,
    /// Unsent egress bytes (length-prefixed frames); `wr_pos` is the
    /// cursor of what the kernel has taken, so draining the front
    /// never memmoves.
    wr: Vec<u8>,
    wr_pos: usize,
    /// epoll backend: EPOLLOUT currently armed for this connection.
    out_armed: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.wr.len() - self.wr_pos
    }
}

/// The epoll backend's owned state: the epoll instance, the recvmmsg
/// arena, sendmmsg scratch, and the event buffer.
#[cfg(target_os = "linux")]
struct EpollState {
    ep: sys::Epoll,
    arena: sys::RecvArena,
    scratch: sys::SendScratch,
    events: Vec<sys::Event>,
    /// EPOLLOUT currently armed on the UDP socket.
    udp_out_armed: bool,
}

/// Event tokens for the epoll backend.
#[cfg(target_os = "linux")]
const TOKEN_UDP: u64 = 0;
#[cfg(target_os = "linux")]
const TOKEN_LISTENER: u64 = 1;
#[cfg(target_os = "linux")]
const TOKEN_WAKER: u64 = 2;
#[cfg(target_os = "linux")]
const TOKEN_CONN_BASE: u64 = 3;

/// A live socket [`dplane::PacketIo`]: `poll` drains the sockets into
/// an internal queue, `recv` hands queued frames to the data plane,
/// `emit` routes rewritten frames into the egress queues, and `flush`
/// pushes those queues to the kernel.
pub struct Bridge {
    udp: UdpSocket,
    tcp: Option<TcpListener>,
    conns: Vec<Conn>,
    peers: HashMap<[u8; 4], Peer>,
    upstream: SocketAddr,
    epoch: Instant,
    queue: VecDeque<(u64, Packet)>,
    buf: Vec<u8>,
    /// Queued UDP egress: destination + serialized frame.
    udp_out: VecDeque<(SocketAddr, Vec<u8>)>,
    /// Recycled egress buffers (capacity survives the round trip).
    spare: Vec<Vec<u8>>,
    ctr: sys::SyscallCounter,
    waker: sys::Waker,
    #[cfg(target_os = "linux")]
    ep: Option<EpollState>,
    /// Live counters, exported via `/status`.
    pub stats: BridgeStats,
}

impl Bridge {
    /// Bind the front-end sockets (nonblocking). Port 0 works; the
    /// bound addresses are readable via [`Bridge::udp_addr`] /
    /// [`Bridge::tcp_addr`]. With [`BackendChoice::Auto`] the epoll
    /// backend is used where it can be (Linux, IPv4 bind); forcing
    /// [`BackendChoice::Epoll`] elsewhere is a bind error.
    pub fn bind(cfg: &BridgeConfig) -> io::Result<Bridge> {
        let udp = UdpSocket::bind(cfg.udp)?;
        udp.set_nonblocking(true)?;
        let tcp = match cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let mut bridge = Bridge {
            udp,
            tcp,
            conns: Vec::new(),
            peers: HashMap::new(),
            upstream: cfg.upstream,
            epoch: Instant::now(),
            queue: VecDeque::new(),
            buf: vec![0u8; MAX_FRAME],
            udp_out: VecDeque::new(),
            spare: Vec::new(),
            ctr: sys::SyscallCounter::new(),
            waker: sys::Waker::default(),
            #[cfg(target_os = "linux")]
            ep: None,
            stats: BridgeStats::default(),
        };
        bridge.select_backend(cfg.backend)?;
        Ok(bridge)
    }

    #[cfg(target_os = "linux")]
    fn select_backend(&mut self, choice: BackendChoice) -> io::Result<()> {
        let want_epoll = match choice {
            BackendChoice::Poll => false,
            BackendChoice::Epoll => true,
            // Auto: sendmmsg needs sockaddr_in, so the bind must be
            // IPv4; anything else falls back to the portable loop.
            BackendChoice::Auto => self.udp.local_addr().map(|a| a.is_ipv4()).unwrap_or(false),
        };
        if !want_epoll {
            self.stats.backend = BackendKind::Poll;
            return Ok(());
        }
        if !self.udp.local_addr()?.is_ipv4() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires an IPv4 UDP bind",
            ));
        }
        let ep = sys::Epoll::new(self.ctr.clone())?;
        ep.add(self.udp.as_raw_fd(), TOKEN_UDP, sys::EV_READ)?;
        if let Some(listener) = &self.tcp {
            ep.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EV_READ)?;
        }
        self.ep = Some(EpollState {
            ep,
            arena: sys::RecvArena::new(RECV_BATCH, MAX_FRAME),
            scratch: sys::SendScratch::new(),
            events: Vec::with_capacity(RECV_BATCH),
            udp_out_armed: false,
        });
        self.stats.backend = BackendKind::Epoll;
        Ok(())
    }

    #[cfg(not(target_os = "linux"))]
    fn select_backend(&mut self, choice: BackendChoice) -> io::Result<()> {
        match choice {
            BackendChoice::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend is Linux-only",
            )),
            _ => {
                self.stats.backend = BackendKind::Poll;
                Ok(())
            }
        }
    }

    /// The backend this bridge resolved to.
    pub fn backend(&self) -> BackendKind {
        self.stats.backend
    }

    /// Resize the epoll backend's `recvmmsg` arena (frames per batch).
    /// `cay bench` uses this to sweep batch sizes; the poll backend has
    /// no batching, so this is a no-op there.
    pub fn set_recv_batch(&mut self, batch: usize) {
        #[cfg(target_os = "linux")]
        if let Some(st) = &mut self.ep {
            st.arena = sys::RecvArena::new(batch.clamp(1, RECV_BATCH), MAX_FRAME);
        }
        #[cfg(not(target_os = "linux"))]
        let _ = batch;
    }

    /// Attach a wakeup handle: [`crate::sys::Waker::wake`] from any
    /// thread interrupts a blocked [`Bridge::wait`] (epoll backend;
    /// the poll backend never blocks longer than its idle sleep).
    pub fn attach_waker(&mut self, waker: sys::Waker) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        if let (Some(st), Some(fd)) = (&self.ep, waker.fd()) {
            st.ep.add(fd, TOKEN_WAKER, sys::EV_READ)?;
        }
        self.waker = waker;
        Ok(())
    }

    /// The bound UDP address (resolves port 0).
    pub fn udp_addr(&self) -> io::Result<SocketAddr> {
        self.udp.local_addr()
    }

    /// The bound TCP address, if a TCP listener was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Microseconds since the bridge was bound — the data plane's
    /// clock, so flow idle expiry tracks real time.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Frames queued but not yet pulled by the data plane.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Egress frames queued but not yet handed to the kernel.
    pub fn pending_out(&self) -> usize {
        self.udp_out.len() + self.conns.iter().map(Conn::pending_out).sum::<usize>()
    }

    /// Drain every readable socket into the frame queue and push any
    /// queued egress. Returns how many frames were queued (0 means the
    /// sockets were idle).
    pub fn poll(&mut self) -> usize {
        let queued = self.dispatch(0);
        self.flush_egress();
        self.stats.syscalls = self.ctr.get();
        queued
    }

    /// Idle wait: block until traffic, a waker kick, or `timeout_ms`
    /// (epoll backend — anything that arrived is already dispatched
    /// into the queues when this returns); the poll backend sleeps its
    /// historical 300µs tick instead. Returns frames queued.
    pub fn wait(&mut self, timeout_ms: i32) -> usize {
        #[cfg(target_os = "linux")]
        if self.ep.is_some() {
            let queued = self.dispatch(timeout_ms);
            self.flush_egress();
            self.stats.syscalls = self.ctr.get();
            return queued;
        }
        let _ = timeout_ms;
        // Poll fallback: park on the waker's portable gate instead of
        // a blind sleep, so shutdown/hot-reload kicks interrupt the
        // idle wait instead of racing it. The 300µs cap keeps socket
        // scanning responsive with no fd readiness to lean on.
        self.waker
            .wait_timeout(std::time::Duration::from_micros(300));
        0
    }

    /// One dispatch pass: epoll backend waits up to `timeout_ms` and
    /// services every returned event; poll backend scans all sockets.
    fn dispatch(&mut self, timeout_ms: i32) -> usize {
        #[cfg(target_os = "linux")]
        if self.ep.is_some() {
            return self.dispatch_epoll(timeout_ms);
        }
        let _ = timeout_ms;
        let mut queued = 0;
        queued += self.poll_udp();
        self.accept_tcp();
        queued += self.poll_conns();
        queued
    }

    #[cfg(target_os = "linux")]
    fn dispatch_epoll(&mut self, timeout_ms: i32) -> usize {
        let Some(mut st) = self.ep.take() else {
            return 0;
        };
        let mut queued = 0;
        st.events.clear();
        if st.ep.wait(&mut st.events, timeout_ms).is_ok() {
            for i in 0..st.events.len() {
                let ev = st.events[i];
                match ev.token {
                    TOKEN_UDP => {
                        if ev.readable() {
                            queued += self.drain_udp_batched(&mut st);
                        }
                        if ev.writable() {
                            self.flush_udp_epoll(&mut st);
                        }
                    }
                    TOKEN_LISTENER => self.accept_tcp_epoll(&st),
                    TOKEN_WAKER => self.waker.drain(),
                    token => {
                        let idx = usize::try_from(token - TOKEN_CONN_BASE).unwrap_or(usize::MAX);
                        if idx < self.conns.len() {
                            if ev.readable() {
                                queued += self.read_conn(idx);
                            }
                            if ev.writable() {
                                let blocked = self.flush_conn(idx);
                                self.arm_conn(&st, idx, blocked);
                            }
                        }
                    }
                }
            }
        }
        self.ep = Some(st);
        queued
    }

    /// Drain the UDP socket in recvmmsg batches until it reports
    /// empty (a short batch means the kernel queue is drained).
    #[cfg(target_os = "linux")]
    fn drain_udp_batched(&mut self, st: &mut EpollState) -> usize {
        let mut queued = 0;
        while let Ok(n) = sys::recv_batch(self.udp.as_raw_fd(), &mut st.arena, &self.ctr) {
            self.stats.note_batch(n);
            let now = self.now_us();
            for (bytes, from) in st.arena.frames() {
                match Packet::parse(bytes) {
                    Ok(pkt) => {
                        self.peers.insert(pkt.ip.src, Peer::Udp(from));
                        self.queue.push_back((now, pkt));
                        self.stats.frames_in += 1;
                        queued += 1;
                    }
                    Err(_) => self.stats.parse_errors += 1,
                }
            }
            if n < st.arena.batch() {
                break;
            }
        }
        queued
    }

    fn poll_udp(&mut self) -> usize {
        let mut queued = 0;
        loop {
            self.ctr.bump();
            match self.udp.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    self.stats.note_batch(1);
                    let now = self.now_us();
                    match Packet::parse(&self.buf[..n]) {
                        Ok(pkt) => {
                            self.peers.insert(pkt.ip.src, Peer::Udp(from));
                            self.queue.push_back((now, pkt));
                            self.stats.frames_in += 1;
                            queued += 1;
                        }
                        Err(_) => self.stats.parse_errors += 1,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        queued
    }

    /// Register a freshly accepted connection (epoll backend).
    #[cfg(target_os = "linux")]
    fn accept_tcp_epoll(&mut self, st: &EpollState) {
        let before = self.conns.len();
        self.accept_tcp();
        for idx in before..self.conns.len() {
            if let Some(stream) = &self.conns[idx].stream {
                let token = TOKEN_CONN_BASE + idx as u64;
                if st.ep.add(stream.as_raw_fd(), token, sys::EV_READ).is_err() {
                    self.conns[idx].stream = None;
                }
            }
        }
    }

    fn accept_tcp(&mut self) {
        let Some(listener) = &self.tcp else { return };
        loop {
            self.ctr.bump();
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.tcp_accepted += 1;
                    if self.conns.len() >= MAX_CONNS || stream.set_nonblocking(true).is_err() {
                        // Drop it: over cap (or unusable). The peer sees
                        // a closed connection and can retry later.
                        continue;
                    }
                    self.conns.push(Conn {
                        stream: Some(stream),
                        rd: Vec::new(),
                        wr: Vec::new(),
                        wr_pos: 0,
                        out_armed: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Drain one connection's read side, then extract frames. Closing
    /// the stream drops its fd, which also deregisters it from any
    /// epoll watching it.
    fn read_conn(&mut self, idx: usize) -> usize {
        let mut closed = false;
        {
            let Bridge {
                conns, buf, ctr, ..
            } = self;
            let conn = &mut conns[idx];
            if let Some(stream) = &mut conn.stream {
                loop {
                    ctr.bump();
                    match stream.read(buf) {
                        Ok(0) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => conn.rd.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            closed = true;
                            break;
                        }
                    }
                }
            }
        }
        let queued = self.extract_frames(idx);
        if closed {
            self.conns[idx].stream = None;
        }
        queued
    }

    fn poll_conns(&mut self) -> usize {
        let mut queued = 0;
        for idx in 0..self.conns.len() {
            if self.conns[idx].stream.is_some() {
                queued += self.read_conn(idx);
            }
        }
        queued
    }

    /// Pull complete `len:u32be ++ frame` records out of a connection's
    /// reassembly buffer.
    fn extract_frames(&mut self, idx: usize) -> usize {
        let mut queued = 0;
        loop {
            let rd = &self.conns[idx].rd;
            if rd.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rd[0], rd[1], rd[2], rd[3]]) as usize;
            if len == 0 || len > MAX_FRAME {
                // Corrupt framing: poison the connection.
                self.stats.parse_errors += 1;
                self.conns[idx].rd.clear();
                self.conns[idx].stream = None;
                break;
            }
            if rd.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = rd[4..4 + len].to_vec();
            self.conns[idx].rd.drain(..4 + len);
            let now = self.now_us();
            match Packet::parse(&frame) {
                Ok(pkt) => {
                    self.peers.insert(pkt.ip.src, Peer::Tcp(idx));
                    self.queue.push_back((now, pkt));
                    self.stats.frames_in += 1;
                    queued += 1;
                }
                Err(_) => self.stats.parse_errors += 1,
            }
        }
        queued
    }

    /// Route one serialized frame into the egress queues. UDP frames
    /// are counted `frames_out` when the kernel takes them; TCP frames
    /// when they enter a live connection's write buffer.
    fn route_frame(&mut self, dst: [u8; 4], bytes: Vec<u8>) {
        match self.peers.get(&dst).copied() {
            Some(Peer::Udp(addr)) => self.queue_udp(addr, bytes),
            Some(Peer::Tcp(idx)) => {
                self.queue_tcp(idx, &bytes);
                self.recycle(bytes);
            }
            None => {
                let upstream = self.upstream;
                self.queue_udp(upstream, bytes);
            }
        }
    }

    fn queue_udp(&mut self, addr: SocketAddr, bytes: Vec<u8>) {
        if self.udp_out.len() >= UDP_EGRESS_CAP {
            self.stats.unroutable += 1;
            self.recycle(bytes);
            return;
        }
        self.udp_out.push_back((addr, bytes));
    }

    fn queue_tcp(&mut self, idx: usize, bytes: &[u8]) {
        let conn = &mut self.conns[idx];
        if conn.stream.is_none() {
            self.stats.unroutable += 1;
            return;
        }
        if conn.pending_out() + 4 + bytes.len() > TCP_EGRESS_CAP {
            // Slower than the cap allows: poison the connection rather
            // than buffer without bound.
            conn.stream = None;
            conn.wr.clear();
            conn.wr_pos = 0;
            self.stats.unroutable += 1;
            return;
        }
        conn.wr
            .extend_from_slice(&(u32::try_from(bytes.len()).unwrap_or(0)).to_be_bytes());
        conn.wr.extend_from_slice(bytes);
        self.stats.frames_out += 1;
    }

    fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.spare.len() < RECV_BATCH * 2 {
            buf.clear();
            self.spare.push(buf);
        }
    }

    /// Push every egress queue toward the kernel; what the socket
    /// buffers refuse stays queued (epoll arms EPOLLOUT, poll retries
    /// on the next flush).
    fn flush_egress(&mut self) {
        #[cfg(target_os = "linux")]
        if let Some(mut st) = self.ep.take() {
            self.flush_udp_epoll(&mut st);
            for idx in 0..self.conns.len() {
                if self.conns[idx].pending_out() > 0 {
                    let blocked = self.flush_conn(idx);
                    self.arm_conn(&st, idx, blocked);
                }
            }
            self.ep = Some(st);
            return;
        }
        self.flush_udp_poll();
        for idx in 0..self.conns.len() {
            if self.conns[idx].pending_out() > 0 {
                self.flush_conn(idx);
            }
        }
    }

    /// sendmmsg the UDP egress queue; a refused batch arms EPOLLOUT so
    /// the event loop resumes exactly when the socket drains.
    #[cfg(target_os = "linux")]
    fn flush_udp_epoll(&mut self, st: &mut EpollState) {
        while !self.udp_out.is_empty() {
            // Drop non-IPv4 destinations (the epoll backend binds
            // IPv4-only, so these cannot be delivered).
            while let Some((SocketAddr::V6(_), _)) = self.udp_out.front() {
                if let Some((_, bytes)) = self.udp_out.pop_front() {
                    self.stats.unroutable += 1;
                    self.recycle(bytes);
                }
            }
            if self.udp_out.is_empty() {
                break;
            }
            let batch: Vec<(std::net::SocketAddrV4, &[u8])> = self
                .udp_out
                .iter()
                .take(RECV_BATCH)
                .map_while(|(addr, bytes)| match addr {
                    SocketAddr::V4(v4) => Some((*v4, bytes.as_slice())),
                    SocketAddr::V6(_) => None,
                })
                .collect();
            let want = batch.len();
            let sent =
                match sys::send_batch(self.udp.as_raw_fd(), &mut st.scratch, &batch, &self.ctr) {
                    Ok(n) => n,
                    Err(_) => {
                        // Hard send error: drop the head frame and
                        // keep going — matches the poll backend.
                        if let Some((_, bytes)) = self.udp_out.pop_front() {
                            self.stats.unroutable += 1;
                            self.recycle(bytes);
                        }
                        continue;
                    }
                };
            self.stats.frames_out += sent as u64;
            for _ in 0..sent {
                if let Some((_, bytes)) = self.udp_out.pop_front() {
                    self.recycle(bytes);
                }
            }
            if sent < want {
                // Socket buffer full: defer the rest to EPOLLOUT.
                self.stats.egress_backpressure_events += 1;
                if !st.udp_out_armed {
                    let _ = st.ep.modify(
                        self.udp.as_raw_fd(),
                        TOKEN_UDP,
                        sys::EV_READ | sys::EV_WRITE,
                    );
                    st.udp_out_armed = true;
                }
                return;
            }
        }
        if st.udp_out_armed {
            let _ = st.ep.modify(self.udp.as_raw_fd(), TOKEN_UDP, sys::EV_READ);
            st.udp_out_armed = false;
        }
    }

    /// Fallback UDP egress: one `send_to` per frame, deferring on
    /// `WouldBlock` (the next flush retries — no sleeping).
    fn flush_udp_poll(&mut self) {
        while let Some((addr, bytes)) = self.udp_out.front() {
            self.ctr.bump();
            match self.udp.send_to(bytes, *addr) {
                Ok(_) => {
                    self.stats.frames_out += 1;
                    if let Some((_, bytes)) = self.udp_out.pop_front() {
                        self.recycle(bytes);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.stats.egress_backpressure_events += 1;
                    return;
                }
                Err(_) => {
                    self.stats.unroutable += 1;
                    if let Some((_, bytes)) = self.udp_out.pop_front() {
                        self.recycle(bytes);
                    }
                }
            }
        }
    }

    /// Write one connection's buffered egress; returns true when the
    /// kernel refused bytes (`WouldBlock`) and some remain queued.
    fn flush_conn(&mut self, idx: usize) -> bool {
        let Bridge {
            conns, ctr, stats, ..
        } = self;
        let conn = &mut conns[idx];
        let Some(stream) = &mut conn.stream else {
            conn.wr.clear();
            conn.wr_pos = 0;
            return false;
        };
        let mut blocked = false;
        let mut dead = false;
        while conn.wr_pos < conn.wr.len() {
            ctr.bump();
            match stream.write(&conn.wr[conn.wr_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.wr_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    blocked = true;
                    stats.egress_backpressure_events += 1;
                    break;
                }
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            conn.stream = None;
        }
        if conn.stream.is_none() || conn.wr_pos >= conn.wr.len() {
            conn.wr.clear();
            conn.wr_pos = 0;
        }
        blocked
    }

    /// Arm (or disarm) EPOLLOUT for one connection after a flush.
    #[cfg(target_os = "linux")]
    fn arm_conn(&mut self, st: &EpollState, idx: usize, blocked: bool) {
        let conn = &mut self.conns[idx];
        let token = TOKEN_CONN_BASE + idx as u64;
        let Some(stream) = &conn.stream else { return };
        if blocked && !conn.out_armed {
            if st
                .ep
                .modify(stream.as_raw_fd(), token, sys::EV_READ | sys::EV_WRITE)
                .is_ok()
            {
                conn.out_armed = true;
            }
        } else if !blocked
            && conn.out_armed
            && st
                .ep
                .modify(stream.as_raw_fd(), token, sys::EV_READ)
                .is_ok()
        {
            conn.out_armed = false;
        }
    }
}

impl dplane::PacketIo for Bridge {
    fn recv(&mut self) -> Option<(u64, Packet)> {
        self.queue.pop_front()
    }

    fn emit(&mut self, _now: u64, pkt: Packet) {
        // `serialize_raw`: the program's deliberately broken checksums
        // and lengths must reach the wire verbatim — recomputing them
        // here would undo the evasion.
        let mut bytes = self.spare.pop().unwrap_or_default();
        bytes.clear();
        pkt.serialize_raw_into(&mut bytes);
        self.route_frame(pkt.ip.dst, bytes);
    }

    fn flush(&mut self) {
        self.flush_egress();
        self.stats.syscalls = self.ctr.get();
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use dplane::PacketIo;
    use packet::TcpFlags;

    fn frame(src: [u8; 4], dst: [u8; 4]) -> Packet {
        let mut p = Packet::tcp(src, 40000, dst, 80, TcpFlags::SYN, 1, 0, vec![]);
        p.finalize();
        p
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn bind(backend: BackendChoice, tcp: bool, upstream: SocketAddr) -> Bridge {
        Bridge::bind(&BridgeConfig {
            udp: loopback(),
            tcp: tcp.then(loopback),
            upstream,
            backend,
        })
        .unwrap()
    }

    fn both_backends() -> Vec<BackendChoice> {
        if sys::EPOLL_SUPPORTED {
            vec![BackendChoice::Epoll, BackendChoice::Poll]
        } else {
            vec![BackendChoice::Poll]
        }
    }

    #[test]
    fn udp_round_trip_learns_peers() {
        for backend in both_backends() {
            let mut bridge = bind(backend, false, loopback());
            let baddr = bridge.udp_addr().unwrap();
            let client = UdpSocket::bind(loopback()).unwrap();
            let pkt = frame([10, 7, 0, 2], [93, 184, 216, 34]);
            client.send_to(&pkt.serialize_raw(), baddr).unwrap();
            // Nonblocking poll loop: wait for the datagram to land.
            let mut got = 0;
            for _ in 0..200 {
                got = bridge.poll();
                if got > 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(got, 1, "{:?}", backend);
            let (_, rx) = bridge.recv().unwrap();
            assert_eq!(rx.serialize_raw(), pkt.serialize_raw());
            // Emitting toward the learned inner address routes back to
            // the client's socket once flushed.
            client
                .set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            let reply = frame([93, 184, 216, 34], [10, 7, 0, 2]);
            bridge.emit(0, reply.clone());
            bridge.flush();
            let mut buf = [0u8; MAX_FRAME];
            let (n, _) = client.recv_from(&mut buf).unwrap();
            assert_eq!(&buf[..n], reply.serialize_raw().as_slice());
            assert_eq!(bridge.stats.frames_in, 1);
            assert_eq!(bridge.stats.frames_out, 1);
            assert!(bridge.stats.recv_batches >= 1);
            assert!(bridge.stats.syscalls > 0);
        }
    }

    #[test]
    fn unknown_destination_goes_upstream() {
        for backend in both_backends() {
            let upstream = UdpSocket::bind(loopback()).unwrap();
            upstream
                .set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            let mut bridge = bind(backend, false, upstream.local_addr().unwrap());
            let pkt = frame([10, 7, 0, 2], [93, 184, 216, 34]);
            bridge.emit(0, pkt.clone());
            bridge.flush();
            let mut buf = [0u8; MAX_FRAME];
            let (n, _) = upstream.recv_from(&mut buf).unwrap();
            assert_eq!(&buf[..n], pkt.serialize_raw().as_slice());
        }
    }

    #[test]
    fn tcp_ingress_reassembles_length_prefixed_frames() {
        for backend in both_backends() {
            let mut bridge = bind(backend, true, loopback());
            let taddr = bridge.tcp_addr().unwrap();
            let mut client = TcpStream::connect(taddr).unwrap();
            let pkt = frame([10, 91, 0, 9], [93, 184, 216, 34]);
            let bytes = pkt.serialize_raw();
            let mut msg = (u32::try_from(bytes.len()).unwrap()).to_be_bytes().to_vec();
            msg.extend_from_slice(&bytes);
            // Split the write mid-frame to exercise reassembly.
            client.write_all(&msg[..7]).unwrap();
            client.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
            bridge.poll();
            assert_eq!(bridge.pending(), 0, "half a frame must not parse");
            client.write_all(&msg[7..]).unwrap();
            client.flush().unwrap();
            let mut got = 0;
            for _ in 0..200 {
                got = bridge.poll();
                if got > 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(got, 1, "{:?}", backend);
            let (_, rx) = bridge.recv().unwrap();
            assert_eq!(rx.serialize_raw(), bytes);
            // The reply routes back over the same TCP connection.
            let reply = frame([93, 184, 216, 34], [10, 91, 0, 9]);
            bridge.emit(0, reply.clone());
            bridge.flush();
            let mut hdr = [0u8; 4];
            client
                .set_read_timeout(Some(std::time::Duration::from_secs(2)))
                .unwrap();
            client.read_exact(&mut hdr).unwrap();
            let len = u32::from_be_bytes(hdr) as usize;
            let mut body = vec![0u8; len];
            client.read_exact(&mut body).unwrap();
            assert_eq!(body, reply.serialize_raw());
        }
    }

    #[test]
    fn garbage_datagrams_count_parse_errors() {
        for backend in both_backends() {
            let mut bridge = bind(backend, false, loopback());
            let baddr = bridge.udp_addr().unwrap();
            let client = UdpSocket::bind(loopback()).unwrap();
            client.send_to(b"not an ipv4 frame", baddr).unwrap();
            for _ in 0..200 {
                bridge.poll();
                if bridge.stats.parse_errors > 0 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(bridge.stats.parse_errors, 1, "{:?}", backend);
            assert_eq!(bridge.pending(), 0);
        }
    }

    #[test]
    fn backend_selection_honors_forced_choices() {
        let poll = bind(BackendChoice::Poll, false, loopback());
        assert_eq!(poll.backend(), BackendKind::Poll);
        if sys::EPOLL_SUPPORTED {
            let ep = bind(BackendChoice::Epoll, false, loopback());
            assert_eq!(ep.backend(), BackendKind::Epoll);
            let auto = bind(BackendChoice::Auto, false, loopback());
            assert_eq!(auto.backend(), BackendKind::Epoll);
        } else {
            assert!(Bridge::bind(&BridgeConfig {
                udp: loopback(),
                tcp: None,
                upstream: loopback(),
                backend: BackendChoice::Epoll,
            })
            .is_err());
        }
    }

    #[test]
    fn batched_ingress_fills_histogram_buckets() {
        if !sys::EPOLL_SUPPORTED {
            return;
        }
        let mut bridge = bind(BackendChoice::Epoll, false, loopback());
        let baddr = bridge.udp_addr().unwrap();
        let client = UdpSocket::bind(loopback()).unwrap();
        let pkt = frame([10, 7, 0, 3], [93, 184, 216, 34]);
        let bytes = pkt.serialize_raw();
        for _ in 0..32 {
            client.send_to(&bytes, baddr).unwrap();
        }
        let mut total = 0;
        for _ in 0..400 {
            total += bridge.poll();
            if total >= 32 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(total, 32);
        assert!(bridge.stats.recv_batches >= 1);
        // Far fewer batches than frames — the whole point.
        assert!(bridge.stats.recv_batches <= 32);
        let histogram_total: u64 = bridge.stats.frames_per_batch.iter().sum();
        assert_eq!(histogram_total, bridge.stats.recv_batches);
    }

    #[test]
    fn waker_interrupts_blocked_wait() {
        if !sys::EPOLL_SUPPORTED {
            return;
        }
        let mut bridge = bind(BackendChoice::Epoll, false, loopback());
        let waker = sys::Waker::new();
        bridge.attach_waker(waker.clone()).unwrap();
        let t0 = Instant::now();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            waker.wake();
        });
        // Blocks far short of the 5s timeout because the waker fires.
        bridge.wait(5_000);
        assert!(t0.elapsed() < std::time::Duration::from_secs(2));
    }
}
