//! The socket front end: live frames in and out of the data plane.
//!
//! [`Bridge`] implements [`dplane::PacketIo`] over nonblocking
//! `std::net` sockets. The encapsulation is *frame-in-datagram*: every
//! UDP datagram carries exactly one raw IPv4 frame (the bytes
//! [`packet::Packet::serialize_raw`] would produce), and a TCP ingress
//! stream carries the same frames behind a 4-byte big-endian length
//! prefix. This keeps the front end deployable without privileges — no
//! raw sockets, no pcap, no tun device — while still moving the exact
//! bytes the evasion programs produce, deliberately broken checksums
//! included.
//!
//! Routing is learned, not configured: when a frame arrives, the
//! bridge remembers *inner source address → socket peer*. Emissions
//! whose inner destination matches a learned address go back to that
//! peer; everything else is forwarded to the configured upstream (the
//! protected origin server in a real deployment, the loopback echo
//! harness in tests). Because the origin's own frames teach the bridge
//! where the origin lives, a symmetric flow needs no static routes at
//! all.
//!
//! The poll loop is plain readiness polling over nonblocking sockets
//! (`WouldBlock` means "drained for now") — std-only by design, per
//! the no-new-dependencies rule. Timestamps handed to the data plane
//! are microseconds from a process-local monotonic epoch, so flow idle
//! expiry sees real time.

use packet::Packet;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::time::Instant;

/// Largest encapsulated frame we accept (an IPv4 packet cannot exceed
/// 65535 bytes; the TCP framing rejects anything claiming more).
pub const MAX_FRAME: usize = 65_535;

/// Upper bound on concurrently tracked TCP ingress connections.
/// Learned peer routes index into the connection table, so closed
/// slots are retired in place rather than removed; the cap keeps a
/// connect-flood from growing the table without bound.
pub const MAX_CONNS: usize = 1024;

/// Where the bridge listens and where unroutable emissions go.
#[derive(Debug, Clone)]
pub struct BridgeConfig {
    /// UDP bind address for frame-in-datagram ingress/egress.
    pub udp: SocketAddr,
    /// Optional TCP bind address for length-prefixed frame streams.
    pub tcp: Option<SocketAddr>,
    /// Default egress for emissions whose inner destination has no
    /// learned peer (typically the origin server's bridge).
    pub upstream: SocketAddr,
}

/// Counters the control plane folds into `/status`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BridgeStats {
    /// Frames decapsulated and queued for the data plane.
    pub frames_in: u64,
    /// Frames encapsulated and sent.
    pub frames_out: u64,
    /// Datagrams / stream frames that did not parse as IPv4 packets.
    pub parse_errors: u64,
    /// Emissions dropped because no peer and no upstream would take
    /// them (send failure or closed connection).
    pub unroutable: u64,
    /// TCP ingress connections accepted.
    pub tcp_accepted: u64,
}

/// Which socket a learned inner address lives behind.
#[derive(Debug, Clone, Copy)]
enum Peer {
    /// A UDP peer at this socket address.
    Udp(SocketAddr),
    /// A TCP ingress connection, by index into `Bridge::conns`.
    Tcp(usize),
}

/// One TCP ingress connection with its reassembly buffer.
struct Conn {
    stream: Option<TcpStream>,
    rd: Vec<u8>,
}

/// A live socket [`dplane::PacketIo`]: `poll` drains the sockets into
/// an internal queue, `recv` hands queued frames to the data plane,
/// `emit` routes rewritten frames back out.
pub struct Bridge {
    udp: UdpSocket,
    tcp: Option<TcpListener>,
    conns: Vec<Conn>,
    peers: HashMap<[u8; 4], Peer>,
    upstream: SocketAddr,
    epoch: Instant,
    queue: VecDeque<(u64, Packet)>,
    buf: Vec<u8>,
    /// Live counters, exported via `/status`.
    pub stats: BridgeStats,
}

impl Bridge {
    /// Bind the front-end sockets (nonblocking). Port 0 works; the
    /// bound addresses are readable via [`Bridge::udp_addr`] /
    /// [`Bridge::tcp_addr`].
    pub fn bind(cfg: &BridgeConfig) -> io::Result<Bridge> {
        let udp = UdpSocket::bind(cfg.udp)?;
        udp.set_nonblocking(true)?;
        let tcp = match cfg.tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        Ok(Bridge {
            udp,
            tcp,
            conns: Vec::new(),
            peers: HashMap::new(),
            upstream: cfg.upstream,
            epoch: Instant::now(),
            queue: VecDeque::new(),
            buf: vec![0u8; MAX_FRAME],
            stats: BridgeStats::default(),
        })
    }

    /// The bound UDP address (resolves port 0).
    pub fn udp_addr(&self) -> io::Result<SocketAddr> {
        self.udp.local_addr()
    }

    /// The bound TCP address, if a TCP listener was configured.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Microseconds since the bridge was bound — the data plane's
    /// clock, so flow idle expiry tracks real time.
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Frames queued but not yet pulled by the data plane.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Drain every readable socket into the frame queue. Returns how
    /// many frames were queued (0 means the sockets were idle).
    pub fn poll(&mut self) -> usize {
        let mut queued = 0;
        queued += self.poll_udp();
        self.accept_tcp();
        queued += self.poll_conns();
        queued
    }

    fn poll_udp(&mut self) -> usize {
        let mut queued = 0;
        loop {
            match self.udp.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    let now = self.now_us();
                    match Packet::parse(&self.buf[..n]) {
                        Ok(pkt) => {
                            self.peers.insert(pkt.ip.src, Peer::Udp(from));
                            self.queue.push_back((now, pkt));
                            self.stats.frames_in += 1;
                            queued += 1;
                        }
                        Err(_) => self.stats.parse_errors += 1,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        queued
    }

    fn accept_tcp(&mut self) {
        let Some(listener) = &self.tcp else { return };
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    self.stats.tcp_accepted += 1;
                    if self.conns.len() >= MAX_CONNS || stream.set_nonblocking(true).is_err() {
                        // Drop it: over cap (or unusable). The peer sees
                        // a closed connection and can retry later.
                        continue;
                    }
                    self.conns.push(Conn {
                        stream: Some(stream),
                        rd: Vec::new(),
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn poll_conns(&mut self) -> usize {
        let mut queued = 0;
        for idx in 0..self.conns.len() {
            let mut closed = false;
            {
                let Bridge { conns, buf, .. } = self;
                let conn = &mut conns[idx];
                if let Some(stream) = &mut conn.stream {
                    loop {
                        match stream.read(buf) {
                            Ok(0) => {
                                closed = true;
                                break;
                            }
                            Ok(n) => conn.rd.extend_from_slice(&buf[..n]),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                closed = true;
                                break;
                            }
                        }
                    }
                }
            }
            queued += self.extract_frames(idx);
            if closed {
                self.conns[idx].stream = None;
            }
        }
        queued
    }

    /// Pull complete `len:u32be ++ frame` records out of a connection's
    /// reassembly buffer.
    fn extract_frames(&mut self, idx: usize) -> usize {
        let mut queued = 0;
        loop {
            let rd = &self.conns[idx].rd;
            if rd.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([rd[0], rd[1], rd[2], rd[3]]) as usize;
            if len == 0 || len > MAX_FRAME {
                // Corrupt framing: poison the connection.
                self.stats.parse_errors += 1;
                self.conns[idx].rd.clear();
                self.conns[idx].stream = None;
                break;
            }
            if rd.len() < 4 + len {
                break;
            }
            let frame: Vec<u8> = rd[4..4 + len].to_vec();
            self.conns[idx].rd.drain(..4 + len);
            let now = self.now_us();
            match Packet::parse(&frame) {
                Ok(pkt) => {
                    self.peers.insert(pkt.ip.src, Peer::Tcp(idx));
                    self.queue.push_back((now, pkt));
                    self.stats.frames_in += 1;
                    queued += 1;
                }
                Err(_) => self.stats.parse_errors += 1,
            }
        }
        queued
    }

    fn send_frame(&mut self, dst: [u8; 4], bytes: &[u8]) {
        let routed = match self.peers.get(&dst).copied() {
            Some(Peer::Udp(addr)) => self.udp.send_to(bytes, addr).is_ok(),
            Some(Peer::Tcp(idx)) => send_prefixed(&mut self.conns[idx], bytes),
            None => self.udp.send_to(bytes, self.upstream).is_ok(),
        };
        if routed {
            self.stats.frames_out += 1;
        } else {
            self.stats.unroutable += 1;
        }
    }
}

/// Write a length-prefixed frame to a nonblocking connection, retrying
/// briefly on `WouldBlock`. A full send buffer for longer than the
/// retry budget counts the frame unroutable (the slow peer loses it —
/// same contract a congested wire gives a real middlebox).
fn send_prefixed(conn: &mut Conn, bytes: &[u8]) -> bool {
    let Some(stream) = &mut conn.stream else {
        return false;
    };
    let mut msg = Vec::with_capacity(4 + bytes.len());
    msg.extend_from_slice(&(u32::try_from(bytes.len()).unwrap_or(0)).to_be_bytes());
    msg.extend_from_slice(bytes);
    let mut off = 0;
    let mut budget = 200u32; // ~200 ms worst case
    while off < msg.len() {
        match stream.write(&msg[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(_) => {
                conn.stream = None;
                return false;
            }
        }
    }
    true
}

impl dplane::PacketIo for Bridge {
    fn recv(&mut self) -> Option<(u64, Packet)> {
        self.queue.pop_front()
    }

    fn emit(&mut self, _now: u64, pkt: Packet) {
        // `serialize_raw`: the program's deliberately broken checksums
        // and lengths must reach the wire verbatim — recomputing them
        // here would undo the evasion.
        let bytes = pkt.serialize_raw();
        self.send_frame(pkt.ip.dst, &bytes);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;
    use dplane::PacketIo;
    use packet::TcpFlags;

    fn frame(src: [u8; 4], dst: [u8; 4]) -> Packet {
        let mut p = Packet::tcp(src, 40000, dst, 80, TcpFlags::SYN, 1, 0, vec![]);
        p.finalize();
        p
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    #[test]
    fn udp_round_trip_learns_peers() {
        let mut bridge = Bridge::bind(&BridgeConfig {
            udp: loopback(),
            tcp: None,
            upstream: loopback(),
        })
        .unwrap();
        let baddr = bridge.udp_addr().unwrap();
        let client = UdpSocket::bind(loopback()).unwrap();
        let pkt = frame([10, 7, 0, 2], [93, 184, 216, 34]);
        client.send_to(&pkt.serialize_raw(), baddr).unwrap();
        // Nonblocking poll loop: wait for the datagram to land.
        let mut got = 0;
        for _ in 0..200 {
            got = bridge.poll();
            if got > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 1);
        let (_, rx) = bridge.recv().unwrap();
        assert_eq!(rx.serialize_raw(), pkt.serialize_raw());
        // Emitting toward the learned inner address routes back to the
        // client's socket.
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let reply = frame([93, 184, 216, 34], [10, 7, 0, 2]);
        bridge.emit(0, reply.clone());
        let mut buf = [0u8; MAX_FRAME];
        let (n, _) = client.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], reply.serialize_raw().as_slice());
        assert_eq!(bridge.stats.frames_in, 1);
        assert_eq!(bridge.stats.frames_out, 1);
    }

    #[test]
    fn unknown_destination_goes_upstream() {
        let upstream = UdpSocket::bind(loopback()).unwrap();
        upstream
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let mut bridge = Bridge::bind(&BridgeConfig {
            udp: loopback(),
            tcp: None,
            upstream: upstream.local_addr().unwrap(),
        })
        .unwrap();
        let pkt = frame([10, 7, 0, 2], [93, 184, 216, 34]);
        bridge.emit(0, pkt.clone());
        let mut buf = [0u8; MAX_FRAME];
        let (n, _) = upstream.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], pkt.serialize_raw().as_slice());
    }

    #[test]
    fn tcp_ingress_reassembles_length_prefixed_frames() {
        let mut bridge = Bridge::bind(&BridgeConfig {
            udp: loopback(),
            tcp: Some(loopback()),
            upstream: loopback(),
        })
        .unwrap();
        let taddr = bridge.tcp_addr().unwrap();
        let mut client = TcpStream::connect(taddr).unwrap();
        let pkt = frame([10, 91, 0, 9], [93, 184, 216, 34]);
        let bytes = pkt.serialize_raw();
        let mut msg = (u32::try_from(bytes.len()).unwrap()).to_be_bytes().to_vec();
        msg.extend_from_slice(&bytes);
        // Split the write mid-frame to exercise reassembly.
        client.write_all(&msg[..7]).unwrap();
        client.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        bridge.poll();
        assert_eq!(bridge.pending(), 0, "half a frame must not parse");
        client.write_all(&msg[7..]).unwrap();
        client.flush().unwrap();
        let mut got = 0;
        for _ in 0..200 {
            got = bridge.poll();
            if got > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, 1);
        let (_, rx) = bridge.recv().unwrap();
        assert_eq!(rx.serialize_raw(), bytes);
        // The reply routes back over the same TCP connection.
        let reply = frame([93, 184, 216, 34], [10, 91, 0, 9]);
        bridge.emit(0, reply.clone());
        let mut hdr = [0u8; 4];
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        client.read_exact(&mut hdr).unwrap();
        let len = u32::from_be_bytes(hdr) as usize;
        let mut body = vec![0u8; len];
        client.read_exact(&mut body).unwrap();
        assert_eq!(body, reply.serialize_raw());
    }

    #[test]
    fn garbage_datagrams_count_parse_errors() {
        let mut bridge = Bridge::bind(&BridgeConfig {
            udp: loopback(),
            tcp: None,
            upstream: loopback(),
        })
        .unwrap();
        let baddr = bridge.udp_addr().unwrap();
        let client = UdpSocket::bind(loopback()).unwrap();
        client.send_to(b"not an ipv4 frame", baddr).unwrap();
        for _ in 0..200 {
            bridge.poll();
            if bridge.stats.parse_errors > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(bridge.stats.parse_errors, 1);
        assert_eq!(bridge.pending(), 0);
    }
}
