//! # svc — live-traffic front end and operator control plane
//!
//! Everything below `crates/svc` runs *offline*: simulated censors,
//! replayed pcaps, in-memory packet queues. This crate is the paper's
//! §8 deployment story made runnable: a process (`cay serve`) that
//! moves **live frames** through the compiled data plane and gives an
//! operator a control surface to watch and steer it.
//!
//! Three pieces:
//!
//! * [`bridge::Bridge`] — a socket-backed [`dplane::PacketIo`]:
//!   frame-in-datagram UDP (one raw IPv4 frame per datagram) plus
//!   length-prefixed TCP streams, nonblocking `std::net` only. Works
//!   unprivileged, so the whole service is testable on loopback.
//! * [`http`] — a hand-rolled HTTP/1.1 control plane: `GET /ready`,
//!   `GET /status`, `GET /metrics` (JSON or Prometheus text), `POST
//!   /config` (hot strategy reload through the proof gate, see
//!   [`control`]), `POST /shutdown` (graceful drain).
//! * [`Core`] + [`Service`] — the service loop. [`Core`] is
//!   socket-free (any [`dplane::PacketIo`] works), so the reload
//!   proptests and the offline-equivalence tests drive the *exact*
//!   production path without opening sockets; [`Service`] wires a
//!   [`bridge::Bridge`] and the control listener onto threads.
//!
//! Strategy selection is a [`harness::deploy::RolloutTable`]: longest-
//! prefix match on the client address, then a deterministic percentage
//! split (`ab_bucket`) across that prefix's arms — true A/B rollout,
//! swappable at runtime via `POST /config` without dropping a flow.
//!
//! Graceful shutdown: `std` cannot observe SIGTERM without a libc
//! binding (which the no-new-dependencies rule forbids), so `POST
//! /shutdown` is the SIGTERM stand-in — same semantics an init system
//! would get: stop admitting work, drain in-flight frames, publish a
//! final metrics snapshot, join every thread, exit 0.

pub mod bridge;
pub mod control;
pub mod gate;
pub mod http;
pub(crate) mod sync_shim;
pub mod sys;

pub use bridge::{BackendChoice, BackendKind, Bridge, BridgeConfig, BridgeStats};
pub use control::{apply_config, vet_config, ReloadOutcome};

use dplane::{Classifier, Dplane, DplaneConfig, MetricsReport, PacketIo, ProgramCache};
use geneva::Strategy;
use harness::deploy::{GeoEntry, GeoTable, RolloutTable};
use packet::Packet;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// State shared between the data thread, the control plane, and the
/// embedding process.
pub struct SvcShared {
    /// Process start, for `uptime_ms`.
    pub started: Instant,
    /// Set (by `POST /shutdown` or [`Service::shutdown`]) to begin a
    /// graceful drain.
    pub shutdown: AtomicBool,
    /// The data thread is draining; `/ready` turns false.
    pub draining: AtomicBool,
    /// Stops the control listener (set by [`Service::join`] after the
    /// data thread exits, so `/status` keeps answering during drain).
    pub control_stop: AtomicBool,
    /// The live rollout table; swapped whole by an accepted reload.
    pub rollout: RwLock<Arc<RolloutTable>>,
    /// The program cache the data plane compiles into; accepted
    /// reloads pre-seed it (counter-neutrally).
    pub cache: Arc<ProgramCache>,
    /// Latest published metrics snapshot (what `/metrics` serves).
    pub snapshot: Mutex<MetricsReport>,
    /// Latest bridge counters (what `/status` serves).
    pub bridge_stats: Mutex<BridgeStats>,
    /// Packets pumped through the plane since start.
    pub packets: AtomicU64,
    /// Accepted `POST /config` reloads.
    pub reloads: AtomicU64,
    /// Refused `POST /config` reloads (parse or proof-gate).
    pub reload_rejects: AtomicU64,
    /// The application protocol this deployment serves (gates which
    /// censors' verdicts can refuse a reload).
    pub protocol: appproto::AppProtocol,
    /// Client-prefix → country, for reload vetting.
    pub geo: GeoTable,
    /// Kicks the data thread out of a blocked idle wait (epoll
    /// backend; a no-op elsewhere). Fired on shutdown and on accepted
    /// reloads so neither waits out the idle timeout.
    pub data_waker: sys::Waker,
    /// Kicks the control listener out of its blocked accept wait so
    /// [`Service::join`] does not hang on an idle control plane.
    pub control_waker: sys::Waker,
}

impl SvcShared {
    /// Begin a graceful drain (what `POST /shutdown` and
    /// [`Service::shutdown`] do): set the flag, then wake the data
    /// thread so an idle service reacts immediately instead of at the
    /// end of its idle-wait timeout.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.data_waker.wake();
    }
}

impl SvcShared {
    /// Rule count of the live rollout table.
    pub fn rollout_rules(&self) -> usize {
        self.rollout.read().map(|t| t.len()).unwrap_or(0)
    }
}

/// Per-flow strategy selection for the live plane: longest-prefix
/// match + deterministic A/B split over the *client* address (the
/// non-server side of the flow, so either direction's first packet
/// classifies identically).
pub struct RolloutClassifier {
    shared: Arc<SvcShared>,
    server_addr: [u8; 4],
}

impl Classifier for RolloutClassifier {
    fn classify(&mut self, first_pkt: &Packet) -> Option<Arc<Strategy>> {
        let client = if first_pkt.ip.src == self.server_addr {
            first_pkt.ip.dst
        } else {
            first_pkt.ip.src
        };
        self.shared.rollout.read().ok()?.pick(client)
    }
}

/// Everything [`Core`] needs besides sockets.
pub struct CoreConfig {
    /// Data-plane sizing/seed/proof-gate configuration.
    pub dplane: DplaneConfig,
    /// The protected server's address (direction split, §8).
    pub server_addr: [u8; 4],
    /// Protocol this deployment serves.
    pub protocol: appproto::AppProtocol,
    /// Client-prefix geography.
    pub geo: Vec<GeoEntry>,
    /// Initial rollout table.
    pub rollout: RolloutTable,
}

/// The socket-free service core: a [`Dplane`] behind a
/// [`RolloutClassifier`], publishing service-path metrics snapshots.
/// [`Service`] drives it from a [`Bridge`]; tests drive it from a
/// [`dplane::VecIo`] — same code path either way, which is what makes
/// the live/offline byte-identity assertions meaningful.
pub struct Core {
    /// Shared state (hand clones to the control plane / tests).
    pub shared: Arc<SvcShared>,
    dp: Dplane<RolloutClassifier>,
    server_addr: [u8; 4],
}

impl Core {
    /// Build a core and publish its (empty) first snapshot.
    pub fn new(cfg: CoreConfig) -> Core {
        let cache = Arc::new(ProgramCache::new());
        let shared = Arc::new(SvcShared {
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            control_stop: AtomicBool::new(false),
            rollout: RwLock::new(Arc::new(cfg.rollout)),
            cache: cache.clone(),
            snapshot: Mutex::new(MetricsReport::default()),
            bridge_stats: Mutex::new(BridgeStats::default()),
            packets: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_rejects: AtomicU64::new(0),
            protocol: cfg.protocol,
            geo: GeoTable::new(cfg.geo),
            data_waker: sys::Waker::new(),
            control_waker: sys::Waker::new(),
        });
        let classifier = RolloutClassifier {
            shared: shared.clone(),
            server_addr: cfg.server_addr,
        };
        let dp = Dplane::with_cache(cfg.dplane, classifier, cache);
        let mut core = Core {
            shared,
            dp,
            server_addr: cfg.server_addr,
        };
        core.publish();
        core
    }

    /// Drain `io` through the plane; publishes a fresh snapshot when
    /// anything was processed. Returns the packet count.
    pub fn pump<I: PacketIo>(&mut self, io: &mut I) -> u64 {
        let n = self.dp.pump(io, self.server_addr);
        if n > 0 {
            self.shared.packets.fetch_add(n, Ordering::Relaxed);
            self.publish();
        }
        n
    }

    /// The plane's counters *without* the service-path fields — the
    /// exact report an offline [`dplane::Dplane`] run over the same
    /// packets produces (the live/offline equivalence oracle).
    pub fn offline_report(&self) -> MetricsReport {
        self.dp.metrics()
    }

    /// Publish a snapshot with the service-path fields filled in
    /// (uptime from the monotonic clock; ingest rate as the lifetime
    /// average, in milli-pps so the report stays `Eq`).
    pub fn publish(&mut self) {
        let mut report = self.dp.metrics();
        let uptime_ms =
            u64::try_from(self.shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
        let packets = self.shared.packets.load(Ordering::Relaxed);
        report.uptime_ms = Some(uptime_ms);
        report.ingest_pps_milli = Some(
            packets
                .saturating_mul(1_000_000)
                .checked_div(uptime_ms)
                .unwrap_or(0),
        );
        *self.shared.snapshot.lock().expect("snapshot poisoned") = report;
    }
}

/// How long the drain loop waits for the sockets to go quiet before
/// declaring the flows flushed.
const DRAIN_QUIET: Duration = Duration::from_millis(200);

/// Socket + control-plane configuration for [`Service::start`].
pub struct ServeConfig {
    /// Front-end socket binds and upstream.
    pub bridge: BridgeConfig,
    /// Control-plane HTTP bind address.
    pub control: SocketAddr,
    /// The data-plane core configuration.
    pub core: CoreConfig,
}

/// A running service: a data thread pumping a [`Bridge`] through a
/// [`Core`], and a control thread serving the operator HTTP plane.
pub struct Service {
    /// Shared state (the embedding process can watch or trigger
    /// shutdown directly).
    pub shared: Arc<SvcShared>,
    /// Bound UDP front-end address (resolves port 0).
    pub udp_addr: SocketAddr,
    /// Bound TCP front-end address, when configured.
    pub tcp_addr: Option<SocketAddr>,
    /// Bound control-plane address (resolves port 0).
    pub control_addr: SocketAddr,
    /// The socket backend the bridge resolved to.
    pub backend: bridge::BackendKind,
    data: JoinHandle<MetricsReport>,
    control: JoinHandle<()>,
}

impl Service {
    /// Bind every socket and start the data + control threads.
    pub fn start(cfg: ServeConfig) -> io::Result<Service> {
        let mut bridge = Bridge::bind(&cfg.bridge)?;
        let udp_addr = bridge.udp_addr()?;
        let tcp_addr = bridge.tcp_addr();
        let listener = TcpListener::bind(cfg.control)?;
        let control_addr = listener.local_addr()?;
        let core = Core::new(cfg.core);
        let shared = core.shared.clone();
        bridge.attach_waker(shared.data_waker.clone())?;
        let backend = bridge.backend();
        // Seed the published stats so `/status` names the right
        // backend before the first data-loop publish.
        *shared.bridge_stats.lock().expect("stats poisoned") = bridge.stats;
        let data = std::thread::Builder::new()
            .name("cay-data".into())
            .spawn(move || data_loop(core, bridge))?;
        let control_shared = shared.clone();
        let control = std::thread::Builder::new()
            .name("cay-control".into())
            .spawn(move || http::serve(&listener, &control_shared))?;
        Ok(Service {
            shared,
            udp_addr,
            tcp_addr,
            control_addr,
            backend,
            data,
            control,
        })
    }

    /// Trigger a graceful drain (same as `POST /shutdown`).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Wait for the drain to finish and both threads to exit; returns
    /// the final published metrics snapshot.
    pub fn join(self) -> MetricsReport {
        let report = self.data.join().unwrap_or_default();
        self.shared.control_stop.store(true, Ordering::Relaxed);
        self.shared.control_waker.wake();
        let _ = self.control.join();
        report
    }
}

/// The data thread: poll sockets → pump the plane → publish, then an
/// idle wait (epoll: blocked in `epoll_wait` until traffic or a waker
/// kick, bounded by the publish cadence; poll backend: the historical
/// 300µs sleep), and a quiet-period drain on shutdown.
fn data_loop(mut core: Core, mut bridge: Bridge) -> MetricsReport {
    let shared = core.shared.clone();
    let mut last_publish = Instant::now();
    loop {
        bridge.poll();
        let n = core.pump(&mut bridge);
        if n > 0 || last_publish.elapsed() > Duration::from_millis(250) {
            if n == 0 {
                core.publish();
            }
            *shared.bridge_stats.lock().expect("stats poisoned") = bridge.stats;
            last_publish = Instant::now();
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        if n == 0 {
            bridge.wait(250);
        }
    }
    // Drain: flows already admitted get their in-flight frames
    // processed; we stop once the sockets stay quiet for DRAIN_QUIET.
    shared.draining.store(true, Ordering::Relaxed);
    let mut quiet_since = Instant::now();
    loop {
        bridge.poll();
        if core.pump(&mut bridge) > 0 {
            quiet_since = Instant::now();
        }
        if quiet_since.elapsed() >= DRAIN_QUIET {
            break;
        }
        bridge.wait(2);
    }
    // Flush the final snapshot — the metrics an operator scrapes after
    // shutdown are complete.
    core.publish();
    *shared.bridge_stats.lock().expect("stats poisoned") = bridge.stats;
    shared
        .snapshot
        .lock()
        .map(|r| r.clone())
        .unwrap_or_default()
}
