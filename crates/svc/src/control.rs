//! Hot strategy reload through the proof gate.
//!
//! `POST /config` carries a rollout table (the
//! [`harness::deploy::RolloutTable::parse`] grammar). Before anything
//! touches the live plane, every arm is vetted **outside** the shared
//! program cache:
//!
//! 1. the DSL must parse (spanned [`TableParseError`] otherwise),
//! 2. `strata::analyze` must not prove the strategy statically futile,
//! 3. [`dplane::Program::compile`] must produce an abstract-
//!    interpretation proof (stack/emission bounds),
//! 4. the censor-product model checker must not return
//!    `ProvablyInert` against the censor governing the rule's prefix
//!    (per the geo table) — shipping a provably do-nothing strategy to
//!    the clients it was aimed at is a misconfiguration, not a rollout.
//!
//! Any refusal leaves the running table, the program cache, and every
//! metric byte-identical (asserted by proptest); the response still
//! carries the full per-arm verification report so the operator can
//! see exactly which arm failed and why. On success the pre-compiled
//! programs are seeded into the shared cache with the counter-neutral
//! [`dplane::ProgramCache::insert`], so post-reload flows hit without
//! skewing hit/miss parity against an offline run.

use dplane::Program;
use harness::deploy::{GeoTable, RolloutTable};
use std::sync::Arc;
use strata::censor_model::{CensorId, Verdict};
use strata::report::render_reload_json;

use crate::SvcShared;

/// The result of vetting (and possibly applying) a config body.
pub struct ReloadOutcome {
    /// Did the new table go live?
    pub applied: bool,
    /// HTTP status for the control plane (200 applied, 400 parse
    /// refusal, 422 verification refusal).
    pub status: u16,
    /// JSON body: `{"applied":…,"error":…,"strategies":[…]}`.
    pub body: String,
    /// On success, the vetted table and its compiled programs.
    pub table: Option<(RolloutTable, Vec<Arc<Program>>)>,
}

/// The censor-model identity for a geo-located country.
pub fn censor_id(country: censor::Country) -> CensorId {
    match country {
        censor::Country::China => CensorId::Gfw,
        censor::Country::India => CensorId::Airtel,
        censor::Country::Iran => CensorId::Iran,
        censor::Country::Kazakhstan => CensorId::Kazakhstan,
    }
}

/// Vet a config body without touching any live state.
pub fn vet_config(text: &str, geo: &GeoTable, protocol: appproto::AppProtocol) -> ReloadOutcome {
    let table = match RolloutTable::parse(text) {
        Ok(table) => table,
        Err(e) => {
            return ReloadOutcome {
                applied: false,
                status: 400,
                body: render_reload_json(false, &[], Some(&e.to_string())),
                table: None,
            }
        }
    };
    let mut entries = Vec::new();
    let mut programs = Vec::new();
    let mut refusal: Option<String> = None;
    for rule in table.rules() {
        // The censor this prefix's clients sit behind — only censors
        // that actually censor the serving protocol gate the rollout.
        let governing = geo
            .locate(rule.prefix)
            .filter(|c| c.censored_protocols().contains(&protocol))
            .map(censor_id);
        for (ai, arm) in rule.arms.iter().enumerate() {
            let label = format!(
                "{}.{}.{}.{}/{} arm{} ({}%)",
                rule.prefix[0],
                rule.prefix[1],
                rule.prefix[2],
                rule.prefix[3],
                rule.len,
                ai,
                arm.percent
            );
            let analysis = strata::analyze(&arm.strategy);
            let facts;
            let mut verdicts = Vec::new();
            match Program::compile(&arm.strategy) {
                Ok(program) => {
                    let (max_stack, max_emit) =
                        program.proof.map_or((0, 0), |p| (p.max_stack, p.max_emit));
                    facts = strata::ProgramFacts {
                        verified: true,
                        error: None,
                        max_stack,
                        max_emit,
                    };
                    verdicts.clone_from(&program.verdicts);
                    programs.push(Arc::new(program));
                }
                Err(e) => {
                    facts = strata::ProgramFacts {
                        verified: false,
                        error: Some(e.to_string()),
                        max_stack: 0,
                        max_emit: 0,
                    };
                    if refusal.is_none() {
                        refusal = Some(format!("{label}: absint refused: {e}"));
                    }
                }
            }
            if analysis.statically_futile && refusal.is_none() {
                refusal = Some(format!("{label}: strategy is statically futile"));
            }
            if let Some(id) = governing {
                let inert = verdicts
                    .iter()
                    .any(|&(v_id, v)| v_id == id && v == Verdict::ProvablyInert);
                if inert && refusal.is_none() {
                    refusal = Some(format!(
                        "{label}: provably inert against {} (the censor governing this prefix)",
                        id.name()
                    ));
                }
            }
            entries.push(strata::ReportEntry {
                label,
                source: arm.text.clone(),
                canonical: analysis.canonical.to_string(),
                key: analysis.key,
                statically_futile: analysis.statically_futile,
                diagnostics: analysis.diagnostics,
                verdicts,
                program: Some(facts),
            });
        }
    }
    match refusal {
        Some(msg) => ReloadOutcome {
            applied: false,
            status: 422,
            body: render_reload_json(false, &entries, Some(&msg)),
            table: None,
        },
        None => ReloadOutcome {
            applied: true,
            status: 200,
            body: render_reload_json(true, &entries, None),
            table: Some((table, programs)),
        },
    }
}

/// Vet a config body and, if it passes every gate, swap it live:
/// pre-seed the shared program cache (counter-neutral) and publish the
/// new rollout table for *new* flows. Existing flows keep the program
/// they classified to — rollouts never rewrite a flow mid-stream.
pub fn apply_config(shared: &SvcShared, text: &str) -> ReloadOutcome {
    let mut outcome = vet_config(text, &shared.geo, shared.protocol);
    match outcome.table.take() {
        Some((table, programs)) => {
            for program in programs {
                shared.cache.insert(program);
            }
            *shared.rollout.write().expect("rollout lock poisoned") = Arc::new(table);
            shared
                .reloads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            // Kick an idle data thread so the swap is visible in the
            // next published snapshot, not after the idle-wait timeout.
            shared.data_waker.wake();
        }
        None => {
            shared
                .reload_rejects
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
    outcome
}
