//! The operator control plane: a hand-rolled HTTP/1.1 listener.
//!
//! The workspace has no HTTP dependency (and takes none), so this is
//! the minimal correct subset an operator plane needs: one request per
//! connection (`Connection: close`), `Content-Length` bodies, no
//! chunked encoding, no keep-alive. Endpoints:
//!
//! | route             | meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `GET /ready`      | readiness probe; 503 once draining             |
//! | `GET /status`     | service-level counters (bridge, reloads, rate) |
//! | `GET /metrics`    | the data plane's [`dplane::MetricsReport`] JSON; `?format=prometheus` for text exposition |
//! | `POST /config`    | hot strategy reload through the proof gate     |
//! | `POST /shutdown`  | graceful drain (the SIGTERM stand-in)          |
//!
//! The listener is serial (one request at a time): an operator plane
//! sees curl-scale load, and serial handling keeps every response a
//! consistent point-in-time snapshot.

use crate::{control, SvcShared};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(target_os = "linux")]
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Cap on a request (line + headers + body) — config bodies are DSL
/// text, kilobytes at most.
const MAX_REQUEST: usize = 1 << 20;

/// A parsed request: method, path, query, body.
#[derive(Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET` / `POST` (anything else earns a 405).
    pub method: String,
    /// Path component of the target, without the query.
    pub path: String,
    /// Query string after `?`, or empty.
    pub query: String,
    /// Request body (per `Content-Length`).
    pub body: Vec<u8>,
}

/// Parse one HTTP/1.1 request from raw bytes. Returns `None` on
/// malformed input (the caller answers 400).
pub fn parse_request(raw: &[u8]) -> Option<Request> {
    let head_end = find_header_end(raw)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let mut request_line = lines.next()?.split_whitespace();
    let method = request_line.next()?.to_string();
    let target = request_line.next()?;
    let _version = request_line.next()?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let body_start = head_end + 4;
    let body = raw.get(body_start..body_start + content_length)?.to_vec();
    Some(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_header_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read a full request off a stream (bounded, with a read timeout so a
/// stalled client cannot wedge the control plane).
fn read_request(stream: &mut TcpStream) -> Option<Request> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // Complete yet? (Headers seen and the advertised body present.)
        if let Some(req) = parse_request(&raw) {
            return Some(req);
        }
        if raw.len() > MAX_REQUEST {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return parse_request(&raw),
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => return parse_request(&raw),
        }
    }
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "OK",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Serve the control plane until `shared.control_stop` is set.
///
/// Where epoll exists the loop blocks on {listener, stop-waker} with
/// no timeout — an idle control plane makes **zero timed wakeups**;
/// [`crate::Service::join`] fires `shared.control_waker` after setting
/// the stop flag. Elsewhere (or if epoll setup fails) it falls back to
/// nonblocking accepts with a 3ms stop-flag poll.
pub fn serve(listener: &TcpListener, shared: &SvcShared) {
    let _ = listener.set_nonblocking(true);
    #[cfg(target_os = "linux")]
    if serve_epoll(listener, shared).is_ok() {
        return;
    }
    serve_polling(listener, shared);
}

#[cfg(target_os = "linux")]
fn serve_epoll(listener: &TcpListener, shared: &SvcShared) -> std::io::Result<()> {
    use crate::sys;
    let wake_fd = shared.control_waker.fd().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::Unsupported, "no control waker fd")
    })?;
    let mut ep = sys::Epoll::new(sys::SyscallCounter::new())?;
    ep.add(listener.as_raw_fd(), 0, sys::EV_READ)?;
    ep.add(wake_fd, 1, sys::EV_READ)?;
    let mut events = Vec::with_capacity(4);
    loop {
        if shared.control_stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        events.clear();
        // Block until a connection or a waker kick — no timeout, so an
        // idle control plane never wakes.
        let _ = ep.wait(&mut events, -1);
        for ev in &events {
            if ev.token == 1 {
                shared.control_waker.drain();
            }
        }
        while let Ok((mut stream, _)) = listener.accept() {
            let _ = stream.set_nonblocking(false);
            handle(&mut stream, shared);
        }
    }
}

fn serve_polling(listener: &TcpListener, shared: &SvcShared) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                handle(&mut stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.control_stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(3));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(3)),
        }
    }
}

fn handle(stream: &mut TcpStream, shared: &SvcShared) {
    let Some(req) = read_request(stream) else {
        respond(
            stream,
            400,
            "application/json",
            "{\"error\":\"malformed request\"}\n",
        );
        return;
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/ready") => {
            let draining =
                shared.draining.load(Ordering::Relaxed) || shared.shutdown.load(Ordering::Relaxed);
            if draining {
                respond(
                    stream,
                    503,
                    "application/json",
                    "{\"ready\":false,\"draining\":true}\n",
                );
            } else {
                respond(stream, 200, "application/json", "{\"ready\":true}\n");
            }
        }
        ("GET", "/status") => {
            let body = status_json(shared);
            respond(stream, 200, "application/json", &body);
        }
        ("GET", "/metrics") => {
            let report = shared
                .snapshot
                .lock()
                .map(|r| r.clone())
                .unwrap_or_default();
            if req.query.split('&').any(|kv| kv == "format=prometheus") {
                let body = prometheus(shared, &report);
                respond(stream, 200, "text/plain; version=0.0.4", &body);
            } else {
                let mut body = report.to_json();
                body.push('\n');
                respond(stream, 200, "application/json", &body);
            }
        }
        ("POST", "/config") => match std::str::from_utf8(&req.body) {
            Ok(text) => {
                let outcome = control::apply_config(shared, text);
                respond(stream, outcome.status, "application/json", &outcome.body);
            }
            Err(_) => respond(
                stream,
                400,
                "application/json",
                "{\"error\":\"config body is not utf-8\"}\n",
            ),
        },
        ("POST", "/shutdown") => {
            shared.begin_shutdown();
            respond(stream, 200, "application/json", "{\"draining\":true}\n");
        }
        ("GET" | "POST", _) => {
            respond(
                stream,
                404,
                "application/json",
                "{\"error\":\"not found\"}\n",
            );
        }
        _ => respond(
            stream,
            405,
            "application/json",
            "{\"error\":\"method not allowed\"}\n",
        ),
    }
}

/// Service-level counters: what's around the data plane (the plane's
/// own counters live under `/metrics`). Additive, presence-based —
/// same compatibility rule as [`dplane::MetricsReport::to_json`].
fn status_json(shared: &SvcShared) -> String {
    let snapshot = shared
        .snapshot
        .lock()
        .map(|r| r.clone())
        .unwrap_or_default();
    let bridge = shared.bridge_stats.lock().map(|s| *s).unwrap_or_default();
    let uptime_ms = snapshot.uptime_ms.unwrap_or(0);
    let pps_milli = snapshot.ingest_pps_milli.unwrap_or(0);
    let fpb: Vec<String> = bridge.frames_per_batch.iter().map(u64::to_string).collect();
    format!(
        "{{\"service\":\"cay-serve\",\"uptime_ms\":{uptime_ms},\"draining\":{},\
         \"packets\":{},\"ingest_pps\":{}.{:03},\"flows_live\":{},\
         \"rollout_rules\":{},\"reloads\":{},\"reload_rejects\":{},\
         \"bridge\":{{\"backend\":\"{}\",\"frames_in\":{},\"frames_out\":{},\
         \"parse_errors\":{},\"unroutable\":{},\"tcp_accepted\":{},\
         \"syscalls\":{},\"recv_batches\":{},\"frames_per_batch\":[{}],\
         \"egress_backpressure_events\":{}}}}}\n",
        shared.draining.load(Ordering::Relaxed),
        shared.packets.load(Ordering::Relaxed),
        pps_milli / 1000,
        pps_milli % 1000,
        snapshot.flows_live,
        shared.rollout_rules(),
        shared.reloads.load(Ordering::Relaxed),
        shared.reload_rejects.load(Ordering::Relaxed),
        bridge.backend.name(),
        bridge.frames_in,
        bridge.frames_out,
        bridge.parse_errors,
        bridge.unroutable,
        bridge.tcp_accepted,
        bridge.syscalls,
        bridge.recv_batches,
        fpb.join(","),
        bridge.egress_backpressure_events,
    )
}

/// Prometheus text exposition (v0.0.4) of the same counters `/metrics`
/// serves as JSON, plus the service-level ones.
pub fn prometheus(shared: &SvcShared, report: &dplane::MetricsReport) -> String {
    let totals = report.totals();
    let mut out = String::with_capacity(1024);
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "cay_packets_total",
        "Packets processed by the data plane.",
        totals.packets,
    );
    counter(
        "cay_flows_created_total",
        "Flow-table entries created.",
        totals.flows_created,
    );
    counter(
        "cay_pass_through_total",
        "Packets forwarded without a strategy.",
        totals.pass_through,
    );
    counter(
        "cay_evicted_lru_total",
        "Flows evicted by the capacity LRU.",
        totals.evicted_lru,
    );
    counter(
        "cay_evicted_idle_total",
        "Flows evicted by the idle timeout.",
        totals.evicted_idle,
    );
    counter(
        "cay_program_cache_hits_total",
        "New flows that reused a compiled program.",
        report.cache_hits,
    );
    counter(
        "cay_program_cache_misses_total",
        "New flows that compiled a program.",
        report.cache_misses,
    );
    counter(
        "cay_verify_rejects_total",
        "Strategies refused by the proof gate.",
        report.verify_rejects,
    );
    counter(
        "cay_reloads_total",
        "Accepted config reloads.",
        shared.reloads.load(Ordering::Relaxed),
    );
    counter(
        "cay_reload_rejects_total",
        "Refused config reloads.",
        shared.reload_rejects.load(Ordering::Relaxed),
    );
    let bridge = shared.bridge_stats.lock().map(|s| *s).unwrap_or_default();
    counter(
        "cay_bridge_syscalls_total",
        "Syscalls made by the socket bridge.",
        bridge.syscalls,
    );
    counter(
        "cay_bridge_recv_batches_total",
        "Ingress batches that delivered at least one frame.",
        bridge.recv_batches,
    );
    counter(
        "cay_bridge_egress_backpressure_events_total",
        "Egress attempts deferred by a full socket buffer.",
        bridge.egress_backpressure_events,
    );
    out.push_str(
        "# HELP cay_bridge_frames_per_batch Ingress frames-per-batch histogram.\n\
         # TYPE cay_bridge_frames_per_batch histogram\n",
    );
    let mut cumulative = 0u64;
    for (edge, n) in crate::bridge::FPB_BUCKET_EDGES
        .iter()
        .zip(bridge.frames_per_batch.iter())
    {
        cumulative += n;
        out.push_str(&format!(
            "cay_bridge_frames_per_batch_bucket{{le=\"{edge}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "cay_bridge_frames_per_batch_bucket{{le=\"+Inf\"}} {cumulative}\n\
         cay_bridge_frames_per_batch_count {cumulative}\n"
    ));
    out.push_str(&format!(
        "# HELP cay_bridge_backend The socket backend in use.\n\
         # TYPE cay_bridge_backend gauge\n\
         cay_bridge_backend{{backend=\"{}\"}} 1\n",
        bridge.backend.name()
    ));
    out.push_str(&format!(
        "# HELP cay_flows_live Live flow-table entries.\n# TYPE cay_flows_live gauge\ncay_flows_live {}\n",
        report.flows_live
    ));
    if let Some(uptime) = report.uptime_ms {
        out.push_str(&format!(
            "# HELP cay_uptime_ms Milliseconds since service start.\n# TYPE cay_uptime_ms gauge\ncay_uptime_ms {uptime}\n"
        ));
    }
    if let Some(milli) = report.ingest_pps_milli {
        out.push_str(&format!(
            "# HELP cay_ingest_pps Lifetime-average ingest rate.\n# TYPE cay_ingest_pps gauge\ncay_ingest_pps {}.{:03}\n",
            milli / 1000,
            milli % 1000
        ));
    }
    out.push_str(
        "# HELP cay_strategy_applies_total Strategy applications by compiled-program key.\n\
         # TYPE cay_strategy_applies_total counter\n",
    );
    for (key, n) in &totals.applies {
        out.push_str(&format!(
            "cay_strategy_applies_total{{program=\"{key}\"}} {n}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)] // test code
    use super::*;

    #[test]
    fn parses_a_get_with_query() {
        let raw = b"GET /metrics?format=prometheus HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse_request(raw).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "format=prometheus");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let raw = b"POST /config HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_request(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/config");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn incomplete_body_is_not_a_request_yet() {
        let raw = b"POST /config HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel";
        assert!(parse_request(raw).is_none(), "must wait for the full body");
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_request(b"\r\n\r\n").is_none());
        assert!(parse_request(b"nonsense").is_none());
    }
}
