//! `WakeGate` — the portable half of [`crate::sys::Waker`]: a sticky
//! cross-thread wakeup built from a mutex + condvar.
//!
//! The Linux waker is a sticky eventfd: `signal` makes the fd
//! readable and it *stays* readable until drained, so a wake that
//! arrives before the loop blocks is never lost. This gate reproduces
//! exactly those semantics in portable safe code:
//!
//! * [`WakeGate::wake`] sets a pending flag **then** notifies — the
//!   flag is the stickiness; a waiter that shows up late still sees
//!   it.
//! * [`WakeGate::wait_timeout`] blocks until the flag is set (or the
//!   timeout lapses) and consumes it, like reading the eventfd.
//! * [`WakeGate::consume`] is the non-blocking drain.
//!
//! On non-Linux hosts (and when eventfd creation fails) the gate *is*
//! the waker, turning what used to be a fire-and-forget no-op into a
//! real interruptible wakeup: the bridge's poll fallback parks on the
//! gate instead of a blind `sleep`, so shutdown and hot-reload kicks
//! cut the idle wait short instead of racing it.
//!
//! The gate is built on the crate's sync facade, so
//! `cargo test -p svc --features weave` model-checks the
//! shutdown/drain handshake across **every** interleaving — the model
//! test in `tests/weave_drain.rs` proves a wake issued at any point
//! relative to the waiter's check-then-park is never lost.

use std::time::Duration;

use crate::sync_shim::{lock_unpoisoned, Condvar, Mutex};
use std::sync::Arc;

/// Runtime-toggleable seeded bug for weave's bug-injection self-test
/// (`--features weave,mutants`).
#[cfg(feature = "mutants")]
pub mod mutants {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// BUG(seeded): `wake` notifies without setting the pending flag —
    /// a non-sticky gate. A wake delivered while the waiter is between
    /// its emptiness check and its park is lost forever.
    pub static GATE_NON_STICKY: AtomicBool = AtomicBool::new(false);

    pub(crate) fn non_sticky() -> bool {
        GATE_NON_STICKY.load(Ordering::Relaxed)
    }
}

struct Inner {
    pending: Mutex<bool>,
    cv: Condvar,
}

/// A sticky, clonable cross-thread wakeup (see module docs).
#[derive(Clone)]
pub struct WakeGate {
    inner: Arc<Inner>,
}

impl WakeGate {
    /// A gate with no wake pending.
    pub fn new() -> WakeGate {
        WakeGate {
            inner: Arc::new(Inner {
                pending: Mutex::new(false),
                cv: Condvar::new(),
            }),
        }
    }

    /// Signal the gate. Sticky: the wake is remembered until consumed,
    /// so it cannot fall between a waiter's check and its park.
    pub fn wake(&self) {
        #[cfg(feature = "mutants")]
        if mutants::non_sticky() {
            self.inner.cv.notify_all();
            return;
        }
        *lock_unpoisoned(&self.inner.pending) = true;
        self.inner.cv.notify_all();
    }

    /// Consume a pending wake without blocking. Returns true when one
    /// was pending.
    pub fn consume(&self) -> bool {
        let mut pending = lock_unpoisoned(&self.inner.pending);
        std::mem::take(&mut *pending)
    }

    /// Park until a wake arrives or `timeout` lapses, consuming the
    /// wake. Returns true when woken, false on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut pending = lock_unpoisoned(&self.inner.pending);
        if !*pending {
            pending = self
                .inner
                .cv
                .wait_timeout(pending, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        std::mem::take(&mut *pending)
    }
}

impl Default for WakeGate {
    fn default() -> WakeGate {
        WakeGate::new()
    }
}

impl std::fmt::Debug for WakeGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakeGate").finish_non_exhaustive()
    }
}
