//! Cfg-gated sync facade: `std::sync` in production, `weave::sync`
//! under the `weave` feature so model tests can explore every
//! interleaving of the service's wakeup/drain machinery.
//!
//! Production builds never see weave — the aliases below *are*
//! `std::sync` types, zero cost. With `--features weave` the same
//! source compiles against the model-checker shims, which fall
//! through to std outside a `weave::explore` run.

#[cfg(feature = "weave")]
pub(crate) use weave::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(feature = "weave"))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

use std::sync::PoisonError;

/// Lock a mutex, recovering the guard if a previous holder panicked.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
