//! Event-driven I/O primitives for the bridge's batched backend.
//!
//! This module is the only place in `crates/svc` allowed to touch raw
//! syscalls: [`ffi`] holds the hand-declared bindings and every
//! `unsafe` block; everything exported from here is a safe RAII
//! wrapper. The rest of the crate sees four ideas:
//!
//! * [`SyscallCounter`] — a shared counter every wrapper bumps once
//!   per syscall, so `cay bench` can report *syscalls per packet*
//!   honestly for both backends (the readiness-poll fallback bumps it
//!   by hand around its `std::net` calls).
//! * [`Epoll`] / [`EventFd`] — level-triggered readiness and a
//!   cross-thread wakeup fd (Linux only; the fallback backend never
//!   constructs them).
//! * [`RecvArena`] / [`SendScratch`] — preallocated `recvmmsg` /
//!   `sendmmsg` vectors: buffers, sockaddrs, iovecs, and mmsghdrs are
//!   allocated once at bind time and recycled every batch, so the
//!   steady-state datagram path performs no per-packet allocation in
//!   the I/O layer.
//! * [`Waker`] — a portable wrapper over [`EventFd`]: on Linux it
//!   wakes a blocked epoll loop; elsewhere it is a no-op (the fallback
//!   loop uses short timed sleeps and needs no kick).

pub mod ffi;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(target_os = "linux")]
use std::io;
#[cfg(target_os = "linux")]
use std::net::{SocketAddr, SocketAddrV4};
#[cfg(target_os = "linux")]
use std::os::unix::io::RawFd;

/// True when the epoll backend can exist on this platform.
pub const EPOLL_SUPPORTED: bool = cfg!(target_os = "linux");

/// Readable-readiness bit in [`Event::events`].
pub const EV_READ: u32 = ffi::EPOLLIN;
/// Writable-readiness bit in [`Event::events`].
pub const EV_WRITE: u32 = ffi::EPOLLOUT;

/// A shared syscall tally. Cloning shares the underlying counter.
#[derive(Clone, Default)]
pub struct SyscallCounter {
    n: Arc<AtomicU64>,
}

impl SyscallCounter {
    pub fn new() -> SyscallCounter {
        SyscallCounter::default()
    }

    /// Record one syscall.
    pub fn bump(&self) {
        self.n.fetch_add(1, Ordering::Relaxed);
    }

    /// Total syscalls recorded so far.
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Raw readiness bits ([`EV_READ`] / [`EV_WRITE`] plus error/hup,
    /// which this module folds into "readable" so closed sockets get
    /// drained and retired by the normal read path).
    pub events: u32,
}

impl Event {
    pub fn readable(&self) -> bool {
        self.events & (ffi::EPOLLIN | ffi::EPOLLERR | ffi::EPOLLHUP) != 0
    }

    pub fn writable(&self) -> bool {
        self.events & ffi::EPOLLOUT != 0
    }
}

/// RAII wrapper over a level-triggered epoll instance.
#[cfg(target_os = "linux")]
pub struct Epoll {
    fd: RawFd,
    ctr: SyscallCounter,
    raw: Vec<ffi::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    pub fn new(ctr: SyscallCounter) -> io::Result<Epoll> {
        ctr.bump();
        let fd = ffi::epoll_create()?;
        Ok(Epoll {
            fd,
            ctr,
            raw: vec![
                ffi::EpollEvent {
                    events: 0,
                    token: 0
                };
                64
            ],
        })
    }

    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctr.bump();
        ffi::epoll_add(self.fd, fd, events, token)
    }

    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctr.bump();
        ffi::epoll_mod(self.fd, fd, events, token)
    }

    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctr.bump();
        ffi::epoll_del(self.fd, fd)
    }

    /// Wait up to `timeout_ms` (`<0` = forever, `0` = just poll) and
    /// append ready events to `out`. Returns how many arrived.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.ctr.bump();
        let n = match ffi::epoll_pwait(self.fd, &mut self.raw, timeout_ms) {
            Ok(n) => n,
            // A signal interrupting the wait is a spurious wakeup, not
            // an error.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.raw[..n] {
            out.push(Event {
                token: ev.token,
                events: ev.events,
            });
        }
        Ok(n)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        ffi::close_fd(self.fd);
    }
}

/// RAII wrapper over a nonblocking eventfd.
#[cfg(target_os = "linux")]
pub struct EventFd {
    fd: RawFd,
}

#[cfg(target_os = "linux")]
impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        Ok(EventFd {
            fd: ffi::eventfd_create()?,
        })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the fd readable (wakes any epoll watching it).
    pub fn signal(&self) {
        let _ = ffi::eventfd_signal(self.fd);
    }

    /// Reset to unsignalled (call after the wakeup was observed, or a
    /// level-triggered epoll would spin on it).
    pub fn drain(&self) {
        ffi::eventfd_drain(self.fd);
    }
}

#[cfg(target_os = "linux")]
impl Drop for EventFd {
    fn drop(&mut self) {
        ffi::close_fd(self.fd);
    }
}

/// A cross-thread wakeup handle: [`Waker::wake`] is callable from any
/// thread; on Linux the underlying eventfd can be registered on an
/// epoll loop via [`Waker::fd`]. On other platforms (and on eventfd
/// creation failure) it falls back to the portable sticky
/// [`crate::gate::WakeGate`], so poll-driven loops still get real,
/// interruptible wakeups instead of racing a blind sleep.
#[derive(Clone, Default)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    inner: Option<Arc<EventFd>>,
    /// Portable sticky fallback; always present (it also serves as
    /// the model-checked stand-in for the eventfd in weave tests).
    gate: crate::gate::WakeGate,
}

impl Waker {
    pub fn new() -> Waker {
        #[cfg(target_os = "linux")]
        {
            Waker {
                inner: EventFd::new().ok().map(Arc::new),
                gate: crate::gate::WakeGate::new(),
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            Waker {
                gate: crate::gate::WakeGate::new(),
            }
        }
    }

    /// Wake the loop watching this waker: signal the eventfd when one
    /// exists, and always set the portable gate (sticky on both
    /// paths, so a wake that lands before the loop blocks is kept).
    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        if let Some(efd) = &self.inner {
            efd.signal();
        }
        self.gate.wake();
    }

    /// The registrable fd, when one exists.
    #[cfg(target_os = "linux")]
    pub fn fd(&self) -> Option<RawFd> {
        self.inner.as_ref().map(|efd| efd.fd())
    }

    /// Reset after a wakeup was observed.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        if let Some(efd) = &self.inner {
            efd.drain();
        }
        self.gate.consume();
    }

    /// Park on the portable gate until a wake arrives or `timeout`
    /// lapses, consuming the wake. The blocking primitive for loops
    /// with no registrable fd (the bridge's poll fallback): a wake
    /// issued at any point — even before the park — cuts the wait
    /// short. Returns true when woken.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        self.gate.wait_timeout(timeout)
    }

    /// The portable sticky gate behind this waker.
    pub fn gate(&self) -> &crate::gate::WakeGate {
        &self.gate
    }
}

/// Preallocated `recvmmsg` state: `batch` buffers of `buf_size` bytes
/// plus the sockaddr/iovec/mmsghdr vectors describing them. One arena
/// serves every batch for the life of the socket — zero steady-state
/// allocation.
#[cfg(target_os = "linux")]
pub struct RecvArena {
    bufs: Vec<Vec<u8>>,
    addrs: Vec<ffi::SockAddrIn>,
    iovs: Vec<ffi::IoVec>,
    hdrs: Vec<ffi::MMsgHdr>,
    filled: usize,
}

#[cfg(target_os = "linux")]
impl RecvArena {
    pub fn new(batch: usize, buf_size: usize) -> RecvArena {
        let batch = batch.max(1);
        RecvArena {
            bufs: (0..batch).map(|_| vec![0u8; buf_size]).collect(),
            addrs: vec![ffi::SockAddrIn::zeroed(); batch],
            iovs: vec![
                ffi::IoVec {
                    base: std::ptr::null_mut(),
                    len: 0,
                };
                batch
            ],
            hdrs: vec![ffi::MMsgHdr::zeroed(); batch],
            filled: 0,
        }
    }

    /// Max datagrams per batch.
    pub fn batch(&self) -> usize {
        self.bufs.len()
    }

    /// The datagrams the last [`recv_batch`] filled, with their source
    /// addresses.
    pub fn frames(&self) -> impl Iterator<Item = (&[u8], SocketAddr)> {
        self.hdrs[..self.filled]
            .iter()
            .zip(&self.bufs)
            .zip(&self.addrs)
            .map(|((hdr, buf), addr)| (&buf[..hdr.len as usize], SocketAddr::V4(addr.to_v4())))
    }
}

/// Drain up to one batch of datagrams from `fd` into `arena`. Returns
/// 0 when the socket has nothing ready (`WouldBlock` is not an error).
#[cfg(target_os = "linux")]
pub fn recv_batch(fd: RawFd, arena: &mut RecvArena, ctr: &SyscallCounter) -> io::Result<usize> {
    // Rebuild the pointer vectors from fresh borrows each call: the
    // storage never moves (fixed-capacity Vecs allocated in `new`),
    // but re-deriving the pointers keeps the borrows honest.
    for i in 0..arena.bufs.len() {
        arena.iovs[i] = ffi::IoVec {
            base: arena.bufs[i].as_mut_ptr(),
            len: arena.bufs[i].len(),
        };
        arena.addrs[i] = ffi::SockAddrIn::zeroed();
        arena.hdrs[i] = ffi::MMsgHdr {
            hdr: ffi::MsgHdr {
                name: &mut arena.addrs[i],
                namelen: u32::try_from(std::mem::size_of::<ffi::SockAddrIn>()).unwrap_or(16),
                iov: &mut arena.iovs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        };
    }
    ctr.bump();
    arena.filled = 0;
    match ffi::recvmmsg_nb(fd, &mut arena.hdrs) {
        Ok(n) => {
            arena.filled = n;
            Ok(n)
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
        Err(e) => Err(e),
    }
}

/// Reusable `sendmmsg` pointer vectors (the payload bytes themselves
/// belong to the caller's egress queue).
#[cfg(target_os = "linux")]
#[derive(Default)]
pub struct SendScratch {
    addrs: Vec<ffi::SockAddrIn>,
    iovs: Vec<ffi::IoVec>,
    hdrs: Vec<ffi::MMsgHdr>,
}

#[cfg(target_os = "linux")]
impl SendScratch {
    pub fn new() -> SendScratch {
        SendScratch::default()
    }
}

/// Send up to one batch of `(destination, payload)` datagrams with a
/// single `sendmmsg`. Returns how many of the first `msgs.len()`
/// messages were sent; `Ok(0)` with a non-empty input means the socket
/// buffer is full (`WouldBlock` folded in, so callers treat it as
/// backpressure rather than an error).
#[cfg(target_os = "linux")]
pub fn send_batch(
    fd: RawFd,
    scratch: &mut SendScratch,
    msgs: &[(SocketAddrV4, &[u8])],
    ctr: &SyscallCounter,
) -> io::Result<usize> {
    if msgs.is_empty() {
        return Ok(0);
    }
    scratch.addrs.clear();
    scratch.iovs.clear();
    scratch.hdrs.clear();
    for (dst, payload) in msgs {
        scratch.addrs.push(ffi::SockAddrIn::from_v4(dst));
        scratch.iovs.push(ffi::IoVec {
            base: payload.as_ptr().cast_mut(),
            len: payload.len(),
        });
    }
    for i in 0..msgs.len() {
        scratch.hdrs.push(ffi::MMsgHdr {
            hdr: ffi::MsgHdr {
                name: &mut scratch.addrs[i],
                namelen: u32::try_from(std::mem::size_of::<ffi::SockAddrIn>()).unwrap_or(16),
                iov: &mut scratch.iovs[i],
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        });
    }
    ctr.bump();
    match ffi::sendmmsg_nb(fd, &mut scratch.hdrs) {
        Ok(n) => Ok(n),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(0),
        Err(e) => Err(e),
    }
}
